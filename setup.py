"""Setuptools entry point (kept for environments without PEP 517 build isolation)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Semantic acyclicity of conjunctive queries under tgd/egd constraints "
        "(reproduction of Barceló, Gottlob, Pieris, PODS 2016)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
)
