#!/usr/bin/env python
"""Repository-convention lint — rules a generic linter cannot know.

Five rules, each encoding a convention the codebase actually relies on:

1. **Operator faces** — every concrete operator node in
   ``src/repro/evaluation/operators.py`` implements both execution faces
   (``_materialize``/``materialize`` and ``iter_rows``) and ``label()``,
   so plans can always be materialised, streamed and rendered.
2. **No mutable default arguments** anywhere under ``src/`` — a default
   ``[]``/``{}``/``set()`` is shared across calls; the engines pass
   relations and bindings through deep call chains where that aliasing is
   a silent correctness bug.
3. **Benchmarks honour BENCH_SMOKE** — every ``benchmarks/bench_*.py``
   must consult the smoke-mode machinery (``scaled_sizes``/``smoke_mode``
   or the raw ``BENCH_SMOKE`` variable) so `make bench-smoke` and CI can
   run the whole suite in seconds.
4. **Batch face is verifier-covered** — every operator class that
   overrides the batch face (``iter_batches`` or ``_materialize_encoded``)
   must be registered in the ``_BATCH_WIDTHS`` table of
   ``src/repro/analysis/verify_plan.py``, so the static verifier's
   batch-face width check (PLAN013/PLAN014) can recompute its output
   width instead of warning it unchecked.
5. **Planner entry points accept ``backend=``** — every public planner
   in ``join_plans.py``/``planner_dp.py`` (a ``plan_*`` function taking
   a ``database``, or an entry point taking a ``planner``) must accept a
   ``backend`` keyword, so any planner can be dropped into any entry
   point regardless of which execution backend runs the plan.

Exit 0 when clean, 1 with one line per violation otherwise (run via
``make lint``).
"""

import ast
import pathlib
import sys
from typing import List

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
OPERATORS_FILE = REPO_ROOT / "src" / "repro" / "evaluation" / "operators.py"
VERIFIER_FILE = REPO_ROOT / "src" / "repro" / "analysis" / "verify_plan.py"
SOURCE_ROOT = REPO_ROOT / "src"
BENCH_ROOT = REPO_ROOT / "benchmarks"

MUTABLE_CALLS = {"list", "dict", "set"}


def relative(path: pathlib.Path) -> str:
    return str(path.relative_to(REPO_ROOT))


# ----------------------------------------------------------------------
# Rule 1: operator nodes implement both faces
# ----------------------------------------------------------------------
def check_operator_faces() -> List[str]:
    violations: List[str] = []
    tree = ast.parse(OPERATORS_FILE.read_text(encoding="utf-8"))
    class_methods = {
        node.name: {
            item.name for item in node.body if isinstance(item, ast.FunctionDef)
        }
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }
    # The streaming face of nodes that do not pipeline resolves through the
    # base default (materialise-and-iterate); if that default ever goes
    # away, every non-overriding node below becomes a violation.
    base_has_stream_default = "iter_rows" in class_methods.get("Operator", set())
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
        if "Operator" not in bases:
            continue
        methods = class_methods[node.name]
        if not methods & {"_materialize", "materialize"}:
            violations.append(
                f"{relative(OPERATORS_FILE)}:{node.lineno}: operator "
                f"{node.name} has no materialising face "
                "(_materialize or materialize)"
            )
        if "iter_rows" not in methods and not base_has_stream_default:
            violations.append(
                f"{relative(OPERATORS_FILE)}:{node.lineno}: operator "
                f"{node.name} has no streaming face (iter_rows)"
            )
        if "label" not in methods:
            violations.append(
                f"{relative(OPERATORS_FILE)}:{node.lineno}: operator "
                f"{node.name} cannot be rendered (label)"
            )
    return violations


# ----------------------------------------------------------------------
# Rule 2: no mutable default arguments under src/
# ----------------------------------------------------------------------
def _is_mutable_default(default: ast.expr) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in MUTABLE_CALLS
    )


def check_mutable_defaults() -> List[str]:
    violations: List[str] = []
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    violations.append(
                        f"{relative(path)}:{node.lineno}: function "
                        f"{node.name} has a mutable default argument"
                    )
    return violations


# ----------------------------------------------------------------------
# Rule 3: benchmarks honour BENCH_SMOKE
# ----------------------------------------------------------------------
def check_bench_smoke() -> List[str]:
    violations: List[str] = []
    markers = ("scaled_sizes", "smoke_mode", "BENCH_SMOKE")
    for path in sorted(BENCH_ROOT.glob("bench_*.py")):
        text = path.read_text(encoding="utf-8")
        if not any(marker in text for marker in markers):
            violations.append(
                f"{relative(path)}:1: benchmark never consults BENCH_SMOKE "
                "(use scaled_sizes()/smoke_mode() from benchmarks/conftest.py)"
            )
    return violations


# ----------------------------------------------------------------------
# Rule 4: batch-face operators are covered by the static verifier
# ----------------------------------------------------------------------
def _batch_width_registry_keys() -> List[str]:
    """The class names keyed in verify_plan's ``_BATCH_WIDTHS`` table."""
    tree = ast.parse(VERIFIER_FILE.read_text(encoding="utf-8"))
    for node in ast.walk(tree):
        if not isinstance(node, ast.Assign):
            continue
        targets = {
            target.id for target in node.targets if isinstance(target, ast.Name)
        }
        if "_BATCH_WIDTHS" in targets and isinstance(node.value, ast.Dict):
            return [
                key.id for key in node.value.keys if isinstance(key, ast.Name)
            ]
    return []


def check_batch_face_registry() -> List[str]:
    violations: List[str] = []
    registered = set(_batch_width_registry_keys())
    if not registered:
        violations.append(
            f"{relative(VERIFIER_FILE)}:1: _BATCH_WIDTHS registry not found "
            "(the batch-face width check has nothing to dispatch on)"
        )
        return violations
    tree = ast.parse(OPERATORS_FILE.read_text(encoding="utf-8"))
    batch_methods = {"iter_batches", "_materialize_encoded"}
    for node in tree.body:
        if not isinstance(node, ast.ClassDef):
            continue
        bases = {base.id for base in node.bases if isinstance(base, ast.Name)}
        if "Operator" not in bases:
            continue
        methods = {
            item.name for item in node.body if isinstance(item, ast.FunctionDef)
        }
        if methods & batch_methods and node.name not in registered:
            violations.append(
                f"{relative(OPERATORS_FILE)}:{node.lineno}: operator "
                f"{node.name} overrides the batch face but is not in "
                "verify_plan._BATCH_WIDTHS (PLAN013 would fire on every plan)"
            )
    return violations


# ----------------------------------------------------------------------
# Rule 5: planner entry points accept backend=
# ----------------------------------------------------------------------
PLANNER_FILES = (
    REPO_ROOT / "src" / "repro" / "evaluation" / "join_plans.py",
    REPO_ROOT / "src" / "repro" / "evaluation" / "planner_dp.py",
)


def check_planner_backend_parameter() -> List[str]:
    violations: List[str] = []
    for path in PLANNER_FILES:
        tree = ast.parse(path.read_text(encoding="utf-8"))
        for node in tree.body:
            if not isinstance(node, ast.FunctionDef) or node.name.startswith("_"):
                continue
            arguments = {
                argument.arg
                for argument in node.args.args + node.args.kwonlyargs
            }
            is_planner = node.name.startswith("plan_") and "database" in arguments
            is_entry_point = "planner" in arguments and "database" in arguments
            if (is_planner or is_entry_point) and "backend" not in arguments:
                violations.append(
                    f"{relative(path)}:{node.lineno}: planner entry point "
                    f"{node.name} does not accept backend= "
                    "(planners must be backend-agnostic drop-ins)"
                )
    return violations


def main() -> int:
    violations = (
        check_operator_faces()
        + check_mutable_defaults()
        + check_bench_smoke()
        + check_batch_face_registry()
        + check_planner_backend_parameter()
    )
    for violation in violations:
        print(violation)
    if violations:
        print(f"lint: {len(violations)} convention violation(s)")
        return 1
    print(
        "lint: conventions hold "
        "(operator faces, defaults, BENCH_SMOKE, batch-face registry, "
        "planner backend= parameter)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
