#!/usr/bin/env python
"""Run mypy over the strictly-typed packages (see mypy.ini).

The container images used for day-to-day development do not all ship mypy,
and the repository policy forbids ad-hoc installs — so this wrapper skips
with a notice (exit 0) when mypy is unavailable and defers the real gate to
CI, which installs mypy on the runner before calling it.
"""

import importlib.util
import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
STRICT_TARGETS = ["src/repro/datamodel", "src/repro/hypergraph"]


def main() -> int:
    if importlib.util.find_spec("mypy") is None:
        print("typecheck: mypy is not installed in this environment; skipping")
        print("typecheck: (CI installs mypy and runs this gate for real)")
        return 0
    command = [
        sys.executable,
        "-m",
        "mypy",
        "--config-file",
        str(REPO_ROOT / "mypy.ini"),
        *STRICT_TARGETS,
    ]
    print("typecheck:", " ".join(command[1:]))
    return subprocess.call(command, cwd=REPO_ROOT)


if __name__ == "__main__":
    sys.exit(main())
