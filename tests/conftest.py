"""Shared fixtures for the test suite."""

import os

import pytest

# Tier-1 runs with static plan verification switched on: every plan the
# engines emit anywhere in the suite is re-checked by repro.analysis
# (a test that needs it off can monkeypatch the variable).
os.environ.setdefault("REPRO_VERIFY", "1")

from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.parser import parse_query, parse_tgd


E = Predicate("E", 2)


@pytest.fixture
def triangle_query():
    """The Boolean triangle query over a single binary relation (cyclic core)."""
    return parse_query("E(x, y), E(y, z), E(z, x)", name="triangle")


@pytest.fixture
def path3_query():
    """A three-edge Boolean path query (acyclic)."""
    return parse_query("E(x, y), E(y, z), E(z, w)", name="path3")


@pytest.fixture
def small_edge_database():
    """A small directed graph: a 3-cycle plus a pendant edge."""
    database = Database()
    a, b, c, d = (Constant(x) for x in "abcd")
    for source, target in [(a, b), (b, c), (c, a), (c, d)]:
        database.add(Atom(E, (source, target)))
    return database


@pytest.fixture
def music_store():
    """Example 1: query, tgd and the paper's acyclic reformulation."""
    from repro.workloads.paper_examples import (
        example1_acyclic_reformulation,
        example1_query,
        example1_tgd,
    )

    return example1_query(), [example1_tgd()], example1_acyclic_reformulation()
