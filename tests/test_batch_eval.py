"""Batched evaluation: differential equality, scan-cache counting, routing.

The contract of :func:`repro.evaluation.evaluate_batch` is that sharing
phase-1 scans and partitions across a batch changes *nothing* about the
answers: for every query the batched result must equal the one-at-a-time
result of the matching single-query engine (``evaluate_acyclic`` for
acyclic queries, the plan executor for cyclic ones, the reformulation route
under tgds) and the generic homomorphism oracle.  The :class:`ScanCache`
is additionally pinned down by counting: each distinct (predicate,
constant-signature) is materialised at most once per cache.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    BatchEvaluator,
    Relation,
    ScanCache,
    atom_signature,
    evaluate_acyclic,
    evaluate_batch,
    evaluate_generic,
    evaluate_via_reformulation,
    evaluate_with_plan,
)
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import (
    random_acyclic_query,
    random_database,
    random_schema,
    shared_predicate_batch_workload,
)
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    guarded_triangle_example,
)
from repro.workloads import music_store_database


# ----------------------------------------------------------------------
# Randomized batches sharing predicates
# ----------------------------------------------------------------------
def _random_batch(seed: int):
    """A batch of 2–5 CQs (acyclic, constant-injected, plus sometimes a
    cyclic triangle) over one shared schema and database."""
    rng = random.Random(seed)
    schema = random_schema(
        seed=rng.random(), predicate_count=rng.randint(2, 4), max_arity=rng.randint(1, 3)
    )
    database = random_database(
        seed=rng.random(),
        schema=schema,
        facts_per_predicate=rng.randint(5, 20),
        domain_size=rng.randint(3, 8),
    )
    domain = sorted(database.constants(), key=str)

    queries = []
    for q_index in range(rng.randint(2, 5)):
        query = random_acyclic_query(
            seed=rng.random(), schema=schema, atom_count=rng.randint(1, 5)
        )
        body = []
        for atom in query.body:
            terms = list(atom.terms)
            for position in range(len(terms)):
                if domain and rng.random() < 0.2:
                    terms[position] = rng.choice(domain)
            body.append(Atom(atom.predicate, tuple(terms)))
        variables = sorted({v for atom in body for v in atom.variables()}, key=str)
        head = tuple(
            rng.choice(variables) for _ in range(rng.randint(0, min(2, len(variables))))
        ) if variables else ()
        queries.append(ConjunctiveQuery(head, body, name=f"b{seed}_{q_index}"))

    if rng.random() < 0.4:
        # A cyclic triangle over a schema predicate with arity 2, if any —
        # exercises the plan route inside the batch.
        binary = [p for p in schema.predicates() if p.arity == 2]
        if binary:
            x, y, z = Variable("tx"), Variable("ty"), Variable("tz")
            predicate = rng.choice(binary)
            queries.append(
                ConjunctiveQuery(
                    (),
                    [Atom(predicate, (x, y)), Atom(predicate, (y, z)), Atom(predicate, (z, x))],
                    name=f"b{seed}_cycle",
                )
            )
    return queries, database


def _assert_batch_matches_oracles(queries, database):
    batched = evaluate_batch(queries, database, engine="batch")
    sequential = evaluate_batch(queries, database, engine="sequential")
    assert batched == sequential
    for query, answers in zip(queries, batched):
        assert answers == evaluate_generic(query, database)
        if query.is_acyclic():
            assert answers == evaluate_acyclic(query, database)
        else:
            assert answers == evaluate_with_plan(query, database)


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_batch_matches_per_query_engines_on_random_batches(seed):
    queries, database = _random_batch(seed)
    _assert_batch_matches_oracles(queries, database)


@pytest.mark.parametrize("seed", range(20))
def test_batch_matches_per_query_engines_on_seeded_grid(seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    queries, database = _random_batch(seed * 5407)
    _assert_batch_matches_oracles(queries, database)


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_batch_matches_oracles_on_shared_predicate_workload(seed):
    queries, database = shared_predicate_batch_workload(12, size=240, seed=seed)
    _assert_batch_matches_oracles(queries, database)


# ----------------------------------------------------------------------
# Reformulation route (Proposition 24 inside a batch)
# ----------------------------------------------------------------------
def test_batch_reformulates_cyclic_queries_under_tgds():
    query = example1_query()
    tgd = example1_tgd()
    database = music_store_database(seed=3, customers=12, records=15, styles=4)

    assert not query.is_acyclic()
    batch = BatchEvaluator([query], tgds=[tgd])
    assert batch.routes() == ["reformulated"]

    [answers] = batch.evaluate(database)
    assert answers == evaluate_via_reformulation(query, [tgd], database)
    assert answers == evaluate_generic(query, database)


@pytest.mark.parametrize("seed", range(5))
def test_batch_reformulation_route_on_random_satisfying_databases(seed):
    """Mixed batch (cyclic-but-reformulable + acyclic) against the generic
    oracle on random databases satisfying the tgds."""
    from repro.chase import chase
    from repro.workloads.generators import random_database

    cyclic_query, tgds = guarded_triangle_example()
    acyclic_probe = ConjunctiveQuery(
        (),
        [Atom(cyclic_query.body[0].predicate, (Variable("px"), Variable("py")))],
        name="probe",
    )
    base = random_database(
        seed=seed,
        schema=cyclic_query.schema(),
        facts_per_predicate=8,
        domain_size=5,
    )
    result = chase(base, tgds, max_steps=10_000)
    assert result.terminated
    database = Database()
    database.add_all(result.instance)

    batch = BatchEvaluator([cyclic_query, acyclic_probe], tgds=tgds)
    assert batch.routes() == ["reformulated", "yannakakis"]
    answers = batch.evaluate(database)
    assert answers == batch.evaluate_sequential(database)
    assert answers == [
        evaluate_generic(cyclic_query, database),
        evaluate_generic(acyclic_probe, database),
    ]


def test_batch_without_tgds_routes_cyclic_to_decomposition():
    query = example1_query()
    batch = BatchEvaluator([query])
    assert batch.routes() == ["decomposition"]
    database = music_store_database(seed=5, customers=8, records=10, styles=3)
    assert batch.evaluate(database) == [evaluate_generic(query, database)]


# ----------------------------------------------------------------------
# ScanCache: each signature is materialised at most once
# ----------------------------------------------------------------------
class TestScanCache:
    E = Predicate("E", 2)
    F = Predicate("F", 2)

    def _database(self):
        database = Database()
        for i in range(12):
            database.add(Atom(self.E, (Constant(i % 4), Constant(i % 3))))
            database.add(Atom(self.F, (Constant(i % 3), Constant(i % 5))))
        return database

    def test_same_signature_is_built_once(self):
        database = self._database()
        cache = ScanCache(database)
        x, y, u, v = (Variable(n) for n in "xyuv")
        first = cache.scan(Atom(self.E, (x, y)))
        second = cache.scan(Atom(self.E, (u, v)))  # same signature, new names
        assert cache.served == 2
        assert cache.built == 1
        assert first.rows is second.rows  # one materialisation, two views
        assert first.schema == (x, y) and second.schema == (u, v)

    def test_distinct_signatures_are_distinct_builds(self):
        database = self._database()
        cache = ScanCache(database)
        x, y = Variable("x"), Variable("y")
        cache.scan(Atom(self.E, (x, y)))
        cache.scan(Atom(self.E, (Constant(1), y)))  # constant pattern differs
        cache.scan(Atom(self.E, (x, x)))  # repeated-variable pattern differs
        cache.scan(Atom(self.F, (x, y)))  # predicate differs
        assert cache.built == 4
        # Re-requesting each signature adds no builds.
        cache.scan(Atom(self.E, (y, x)))
        cache.scan(Atom(self.E, (Constant(1), x)))
        cache.scan(Atom(self.E, (y, y)))
        cache.scan(Atom(self.F, (y, x)))
        assert cache.built == 4
        assert cache.served == 8

    def test_constant_scans_reuse_one_base_partition(self):
        """Anchoring the same position at different constants costs one full
        pass (the base partition), then one bucket lookup per constant."""
        database = self._database()
        cache = ScanCache(database)
        y = Variable("y")
        for constant in range(4):
            cache.scan(Atom(self.E, (Constant(constant), y)))
        # One base build (for partitioning) + one derived build per constant.
        assert cache.base_scans == 1
        assert cache.built == 5

    def test_scan_agrees_with_from_atom(self):
        database = self._database()
        cache = ScanCache(database)
        x, y = Variable("x"), Variable("y")
        for atom in [
            Atom(self.E, (x, y)),
            Atom(self.E, (Constant(2), y)),
            Atom(self.E, (x, x)),
            Atom(self.E, (Constant(0), Constant(0))),
            Atom(self.F, (y, Constant(1))),
        ]:
            assert cache.scan(atom) == Relation.from_atom(atom, database)

    def test_cache_rejects_foreign_database(self):
        cache = ScanCache(self._database())
        other = self._database()
        with pytest.raises(ValueError):
            cache.scan(Atom(self.E, (Variable("x"), Variable("y"))), other)

    def test_cache_absorbs_mutated_database(self):
        """Mutating the database must be absorbed, not served stale."""
        database = self._database()
        cache = ScanCache(database)
        atom = Atom(self.E, (Variable("x"), Variable("y")))
        before = set(cache.scan(atom).rows)
        fresh = Atom(self.E, (Constant("fresh"), Constant("fresh")))
        database.add(fresh)
        after = set(cache.scan(atom).rows)
        assert after == before | {fresh.terms}
        assert cache.delta_merges == 1 and cache.full_rebuilds == 0

    def test_missing_predicate_scans_empty(self):
        cache = ScanCache(self._database())
        missing = Predicate("Missing", 1)
        assert cache.scan(Atom(missing, (Variable("x"),))).is_empty()


# ----------------------------------------------------------------------
# Signatures and partition sharing
# ----------------------------------------------------------------------
class TestAtomSignature:
    E = Predicate("E", 3)

    def test_signature_abstracts_variable_names(self):
        x, y, z, u, v, w = (Variable(n) for n in "xyzuvw")
        sig1, vars1 = atom_signature(Atom(self.E, (x, y, x)))
        sig2, vars2 = atom_signature(Atom(self.E, (u, v, u)))
        assert sig1 == sig2
        assert vars1 == (x, y) and vars2 == (u, v)

    def test_signature_distinguishes_constants_from_variables(self):
        x, y = Variable("x"), Variable("y")
        sig_var, _ = atom_signature(Atom(self.E, (x, y, y)))
        sig_const, _ = atom_signature(Atom(self.E, (Constant("x"), y, y)))
        assert sig_var != sig_const

    def test_signature_distinguishes_constant_values_and_types(self):
        y, z = Variable("y"), Variable("z")
        signatures = {
            atom_signature(Atom(self.E, (constant, y, z)))[0]
            for constant in [Constant(1), Constant("1"), Constant(2)]
        }
        assert len(signatures) == 3


class TestPartitionSharing:
    def test_views_share_partitions(self):
        a, b = Constant("a"), Constant("b")
        x, y, u, v = (Variable(n) for n in "xyuv")
        relation = Relation((x, y), [(a, b), (b, a), (a, a)])
        view = relation.with_schema((u, v))
        assert view.partition((u,)) is relation.partition((x,))
        assert view.rows is relation.rows

    def test_partition_is_cached_per_position_tuple(self):
        a, b = Constant("a"), Constant("b")
        x, y = Variable("x"), Variable("y")
        relation = Relation((x, y), [(a, b), (b, a)])
        assert relation.partition((x,)) is relation.partition((x,))
        assert relation.partition((x,)) is not relation.partition((y,))
        assert relation.partition((x, y)) is not relation.partition((y, x))

    def test_partition_contents(self):
        a, b = Constant("a"), Constant("b")
        x, y = Variable("x"), Variable("y")
        relation = Relation((x, y), [(a, b), (a, a), (b, a)])
        partition = relation.partition((x,))
        assert (a,) in partition and (b,) in partition
        assert list(partition.get((a,))) == [(a, b), (a, a)]
        assert list(partition.get(("missing",))) == []
        assert len(partition) == 2


# ----------------------------------------------------------------------
# Batch API corners
# ----------------------------------------------------------------------
def test_empty_batch():
    assert evaluate_batch([], Database()) == []


def test_unknown_engine_is_rejected():
    with pytest.raises(ValueError):
        evaluate_batch([], Database(), engine="warp")


def test_sequential_engine_rejects_a_scan_cache():
    """A supplied cache must never be silently dropped."""
    database = Database()
    with pytest.raises(ValueError):
        evaluate_batch([], database, engine="sequential", scans=ScanCache(database))


def test_explicit_cache_amortises_across_calls():
    queries, database = shared_predicate_batch_workload(6, size=120, seed=1)
    batch = BatchEvaluator(queries)
    cache = ScanCache(database)
    first = batch.evaluate(database, scans=cache)
    built_after_first = cache.built
    second = batch.evaluate(database, scans=cache)
    assert first == second
    assert cache.built == built_after_first  # second call: all cache hits


def test_boolean_and_ground_queries_in_batch():
    E = Predicate("E", 2)
    database = Database([Atom(E, (Constant("a"), Constant("b")))])
    x, y = Variable("x"), Variable("y")
    boolean_hit = ConjunctiveQuery((), [Atom(E, (x, y))], name="hit")
    boolean_miss = ConjunctiveQuery((), [Atom(E, (x, x))], name="miss")
    ground = ConjunctiveQuery((), [Atom(E, (Constant("a"), Constant("b")))], name="ground")
    results = evaluate_batch([boolean_hit, boolean_miss, ground], database)
    assert results == [{()}, set(), {()}]
