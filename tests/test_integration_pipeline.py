"""End-to-end integration tests: parse → classify → decide → reformulate → evaluate.

Each test walks one of the paper's scenarios through the whole stack, the way
a user of the library would: the constraints are classified, semantic
acyclicity is decided, the certified witness is evaluated with Yannakakis'
algorithm on a database satisfying the constraints, and the answers are
cross-checked against direct evaluation of the original query.
"""

import pytest

from repro import (
    decide_semantic_acyclicity,
    evaluate_acyclic,
    evaluate_generic,
    parse_query,
    parse_tgd,
)
from repro.chase import certify_termination, chase
from repro.containment import equivalent_under_egds, equivalent_under_tgds
from repro.core import acyclic_approximations, decide_semantic_acyclicity_egds
from repro.dependencies import DependencyClass, classify
from repro.evaluation import (
    SemAcEvaluation,
    evaluate_via_reformulation,
    evaluate_with_plan,
    membership_baseline,
    membership_via_cover_game_guarded,
)
from repro.rewriting import rewrite
from repro.workloads.generators import (
    database_satisfying,
    music_store_database,
    random_database,
)
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    guarded_triangle_example,
    guarded_triangle_reformulation,
    k2_collapse_example,
)


class TestExample1Pipeline:
    """Example 1: the music-store query under the compulsive-collector tgd."""

    def test_full_pipeline(self):
        query = example1_query()
        tgds = [example1_tgd()]

        # 1. The constraint set falls into decidable classes.
        classes = classify(tgds)
        assert DependencyClass.NON_RECURSIVE in classes
        assert certify_termination(tgds).guaranteed

        # 2. The query is cyclic but semantically acyclic under the tgd.
        assert not query.is_acyclic()
        decision = decide_semantic_acyclicity(query, tgds)
        assert decision.semantically_acyclic
        witness = decision.witness
        assert witness.is_acyclic()
        assert equivalent_under_tgds(query, witness, tgds)

        # 3. On databases satisfying the constraint the witness computes q(D).
        database = music_store_database(seed=11, customers=12, records=15)
        assert all(tgd.is_satisfied_by(database) for tgd in tgds)
        expected = evaluate_generic(query, database)
        assert expected  # the workload generator guarantees matches
        assert evaluate_acyclic(witness, database) == expected

        # 4. The packaged fpt evaluator and the planner agree too.
        assert evaluate_via_reformulation(query, tgds, database) == expected
        assert evaluate_with_plan(query, database) == expected

    def test_reusable_evaluator(self):
        query = example1_query()
        tgds = [example1_tgd()]
        decision = decide_semantic_acyclicity(query, tgds)
        evaluator = SemAcEvaluation.from_reformulation(query, decision.witness)
        for seed in (1, 2):
            database = music_store_database(seed=seed, customers=8, records=10)
            assert evaluator.evaluate(database) == evaluate_generic(query, database)


class TestGuardedTrianglePipeline:
    """A cyclic triangle query made semantically acyclic by linear tgds."""

    def test_full_pipeline(self):
        query, tgds = guarded_triangle_example()
        classes = classify(tgds)
        assert DependencyClass.GUARDED in classes
        assert DependencyClass.LINEAR in classes

        decision = decide_semantic_acyclicity(query, tgds)
        assert decision.semantically_acyclic
        witness = decision.witness
        assert witness.is_acyclic()
        assert equivalent_under_tgds(query, witness, tgds)
        # The paper-style reformulation is equivalent to the found witness.
        assert equivalent_under_tgds(
            witness, guarded_triangle_reformulation(), tgds
        )

        database = database_satisfying(tgds, seed=3, facts_per_predicate=10, domain_size=8)
        expected = evaluate_generic(query, database)
        assert evaluate_acyclic(witness, database) == expected

    def test_cover_game_membership_matches_baseline(self):
        query, tgds = guarded_triangle_example()
        database = database_satisfying(tgds, seed=5, facts_per_predicate=8, domain_size=6)
        assert membership_via_cover_game_guarded(query, database) == membership_baseline(
            query, database
        )


class TestK2Pipeline:
    """Keys over binary predicates (Theorem 23) end to end."""

    def test_full_pipeline(self):
        query, egds = k2_collapse_example()
        assert not query.is_acyclic()
        decision = decide_semantic_acyclicity_egds(query, egds)
        assert decision.semantically_acyclic
        witness = decision.witness
        assert witness.is_acyclic()
        assert equivalent_under_egds(query, witness, egds)

    def test_witness_evaluates_correctly_on_consistent_databases(self):
        query, egds = k2_collapse_example()
        decision = decide_semantic_acyclicity_egds(query, egds)
        witness = decision.witness

        # Build a database that satisfies the key by construction.
        from repro.datamodel import Atom, Constant, Database, Predicate

        a_pred, b_pred = Predicate("A", 2), Predicate("B", 2)
        database = Database()
        for i in range(6):
            database.add(Atom(a_pred, (Constant(f"l{i}"), Constant(f"r{i % 3}"))))
            database.add(Atom(b_pred, (Constant(f"r{i % 3}"), Constant(f"r{i % 3}"))))
        assert all(egd.is_satisfied_by(database) for egd in egds)
        assert evaluate_acyclic(witness, database) == evaluate_generic(query, database)


class TestOntologyPipeline:
    """A small non-recursive 'ontology' exercised through rewriting and approximation."""

    def setup_method(self):
        self.tgds = [
            parse_tgd("Employee(x, d) -> Member(x, d)", label="emp"),
            parse_tgd("Manager(x, d) -> Employee(x, d)", label="mgr"),
            parse_tgd("Member(x, d) -> Dept(d)", label="dept"),
        ]
        self.query = parse_query(
            "q(x) :- Member(x, d), Dept(d), Manager(x, d)", name="ontology_q"
        )

    def test_rewriting_contains_original_disjunct(self):
        rewriting = list(rewrite(self.query, self.tgds))
        assert any(set(d.body) == set(self.query.body) for d in rewriting)
        assert len(rewriting) >= 2

    def test_decision_and_evaluation(self):
        decision = decide_semantic_acyclicity(self.query, self.tgds)
        assert decision.semantically_acyclic
        witness = decision.witness
        database = database_satisfying(
            self.tgds, seed=7, facts_per_predicate=12, domain_size=9
        )
        assert evaluate_acyclic(witness, database) == evaluate_generic(
            self.query, database
        )

    def test_approximations_are_contained_in_the_query(self):
        from repro.containment import contained_under_tgds

        result = acyclic_approximations(self.query, self.tgds)
        assert result.approximations
        for approximation in result.approximations:
            assert approximation.is_acyclic()
            assert bool(contained_under_tgds(approximation, self.query, self.tgds))


class TestChaseThenEvaluatePipeline:
    """Chasing a database and evaluating before/after are consistent."""

    def test_chase_preserves_existing_answers(self):
        tgds = [
            parse_tgd("E(x, y) -> Reach(x, y)", label="base"),
            parse_tgd("Reach(x, y), E(y, z) -> Reach(x, z)", label="step"),
        ]
        database = random_database(seed=13, facts_per_predicate=10, domain_size=6)
        # Restrict to the E relation the tgds read.
        from repro.datamodel import Database, Predicate

        edges = Database(
            atom for atom in database if atom.predicate == Predicate("E", 2)
        )
        if not len(edges):
            from repro.workloads.generators import path_database

            edges = path_database(5)
        result = chase(edges, tgds, max_steps=5_000)
        assert result.terminated
        query = parse_query("q(x, y) :- Reach(x, y)")
        answers = evaluate_generic(query, result.instance)
        direct_edges = evaluate_generic(parse_query("q(x, y) :- E(x, y)"), edges)
        assert direct_edges <= answers
