"""The physical-operator IR: both execution faces, cost model, EXPLAIN.

Three layers of guarantees:

1. **Operator semantics** — every operator's ``materialize()`` and
   ``iter_rows()`` faces agree with the reference ``Relation`` algebra and
   with each other, and record their observed cardinalities.

2. **Engine ↔ IR differentials** — the plans the engines compile
   (Yannakakis' reducer + cursor/hash-join plans, the greedy left-deep
   chains) produce exactly the ground-truth answer sets of
   ``evaluate``/``evaluate_iter`` across all three routes, under hypothesis
   randomization including constants, repeated head variables and
   ``limit=`` semantics.

3. **Bounded work** — the streaming face of the plan route pipelines its
   whole chain: ``iter_with_plan`` with a small ``limit`` must cost bucket
   probes proportional to the answers pulled, not to the join prefix the
   pre-IR implementation used to materialise.  Asserted with the
   deterministic :class:`repro.evaluation.relation.Partition` probe
   counters, not wall clocks.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.workloads import randomized_acyclic_workload, randomized_cyclic_workload
from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    CostModel,
    Distinct,
    ExecutionContext,
    HashJoin,
    Project,
    Scan,
    ScanCache,
    Select,
    SemiJoin,
    Statistics,
    YannakakisEvaluator,
    compile_plan,
    evaluate_generic,
    evaluate_iter,
    evaluate_with_plan,
    explain,
    iter_with_plan,
    plan_greedy,
    render_plan,
)
from repro.evaluation.relation import Partition, Relation
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import yannakakis_scaling_workload


E = Predicate("E", 2)
F = Predicate("F", 2)
a, b, c, d = (Constant(name) for name in "abcd")
x, y, z = Variable("x"), Variable("y"), Variable("z")


def small_database():
    return Database(
        [
            Atom(E, (a, b)),
            Atom(E, (b, c)),
            Atom(E, (b, b)),
            Atom(F, (b, d)),
            Atom(F, (c, d)),
        ]
    )


def ctx(database=None):
    return ExecutionContext(database if database is not None else small_database())


def rows_of(op, context):
    return list(op.iter_rows(context))


# ----------------------------------------------------------------------
# Operator semantics: materialize() and iter_rows() agree
# ----------------------------------------------------------------------
class TestOperatorFaces:
    def test_scan_materializes_the_atom_relation(self):
        op = Scan(Atom(E, (x, y)))
        relation = op.materialize(ctx())
        assert set(relation.rows) == {(a, b), (b, c), (b, b)}
        assert op.observed_rows == 3
        assert op.schema == (x, y)

    def test_scan_applies_constants_and_repeats(self):
        constant_scan = Scan(Atom(E, (x, c)))
        assert set(constant_scan.materialize(ctx()).rows) == {(b,)}
        repeat_scan = Scan(Atom(E, (x, x)))
        assert set(repeat_scan.materialize(ctx()).rows) == {(b,)}
        assert repeat_scan.schema == (x,)

    def test_select_filters_both_faces(self):
        context = ctx()
        op = Select(Scan(Atom(E, (x, y))), {x: b})
        assert set(op.materialize(context).rows) == {(b, c), (b, b)}
        streamed = rows_of(Select(Scan(Atom(E, (x, y))), {x: b}), ctx())
        assert set(streamed) == {(b, c), (b, b)}

    def test_project_deduplicates_both_faces(self):
        context = ctx()
        op = Project(Scan(Atom(E, (x, y))), (x,))
        assert set(op.materialize(context).rows) == {(a,), (b,)}
        streamed = rows_of(Project(Scan(Atom(E, (x, y))), (x,)), ctx())
        assert sorted(streamed, key=str) == [(a,), (b,)]
        assert len(streamed) == len(set(streamed))

    def test_distinct_removes_duplicate_rows(self):
        context = ctx()
        # A projection done twice creates no duplicates, so feed Distinct
        # from a join that genuinely multiplies rows.
        join = HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z))))
        projected = Project(join, (z,))
        assert set(Distinct(projected).materialize(context).rows) == {(d,)}
        streamed = rows_of(Distinct(Project(HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z)))), (z,))), ctx())
        assert streamed == [(d,)]

    def test_semijoin_keeps_matching_left_rows(self):
        context = ctx()
        op = SemiJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z))))
        assert set(op.materialize(context).rows) == {(a, b), (b, c), (b, b)}
        narrowed = SemiJoin(Scan(Atom(F, (y, z))), Scan(Atom(E, (x, y))))
        assert set(narrowed.materialize(ctx()).rows) == {(b, d), (c, d)}
        assert set(rows_of(SemiJoin(Scan(Atom(F, (y, z))), Scan(Atom(E, (x, y)))), ctx())) == {
            (b, d),
            (c, d),
        }

    def test_hashjoin_matches_relation_join(self):
        context = ctx()
        op = HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z))))
        expected = Relation.from_atom(Atom(E, (x, y)), context.database).join(
            Relation.from_atom(Atom(F, (y, z)), context.database)
        )
        assert op.materialize(context) == expected
        assert set(rows_of(HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z)))), ctx())) == set(
            expected.rows
        )

    def test_hashjoin_cross_product_when_no_shared_variables(self):
        context = ctx()
        op = HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (Variable("u"), Variable("v")))))
        assert op.observed_rows is None
        assert len(op.materialize(context)) == 3 * 2
        assert op.observed_rows == 6

    def test_streaming_counts_rows_and_probes(self):
        op = HashJoin(Scan(Atom(E, (x, y))), Scan(Atom(F, (y, z))))
        streamed = rows_of(op, ctx())
        assert op.observed_rows == len(streamed) == 3
        assert op.observed_probes == 3  # one probe per left row

    def test_materialized_results_are_cached_per_node(self):
        context = ctx()
        op = Scan(Atom(E, (x, y)))
        assert op.materialize(context) is op.materialize(context)

    def test_empty_left_input_short_circuits_binary_operators(self):
        context = ctx()
        empty = Scan(Atom(Predicate("Missing", 1), (x,)))
        join = HashJoin(empty, Scan(Atom(E, (x, y))))
        assert join.materialize(context).is_empty()
        assert join.schema == (x, y)
        semi = SemiJoin(Scan(Atom(Predicate("Missing", 1), (x,))), Scan(Atom(E, (x, y))))
        assert semi.materialize(ctx()).is_empty()


# ----------------------------------------------------------------------
# Cost model
# ----------------------------------------------------------------------
class TestCostModel:
    def test_scan_estimate_is_the_relation_size(self):
        model = CostModel(Statistics(small_database()))
        assert model.scan_estimate(Atom(E, (x, y))).rows == 3

    def test_constant_selectivity_uses_the_bucket_histogram(self):
        # Column 1 of E partitions into buckets a→1, b→2; the
        # probe-weighted expected bucket size is Σ size²/rows = (1+4)/3 —
        # read from the real value distribution, not the blind 1/10 of the
        # legacy heuristic.
        model = CostModel(Statistics(small_database()))
        estimate = model.scan_estimate(Atom(E, (a, y)))
        assert estimate.rows == pytest.approx(5 / 3)

    def test_join_estimate_divides_by_the_larger_distinct_count(self):
        model = CostModel(Statistics(small_database()))
        left = model.scan_estimate(Atom(E, (x, y)))
        right = model.scan_estimate(Atom(F, (y, z)))
        # d_E(y) = |{b, c, b}| = 2, d_F(y) = 2 → 3·2/2 = 3.
        assert model.join_estimate(left, right).rows == pytest.approx(3.0)

    def test_annotate_fills_every_node_of_a_dag(self):
        scan = Scan(Atom(E, (x, y)))
        plan = HashJoin(SemiJoin(scan, Scan(Atom(F, (y, z)))), scan)
        CostModel(Statistics(small_database())).annotate(plan)
        seen = set()

        def walk(op):
            if id(op) in seen:
                return
            seen.add(id(op))
            assert op.estimated_rows is not None
            for child in op.children:
                walk(child)

        walk(plan)

    def test_repeated_variable_atom_over_an_empty_predicate(self):
        # Regression: scan_estimate used to skip computing the column
        # statistics of empty base relations but still index them for the
        # repeated-variable selectivity — an IndexError reachable from
        # every planner entry point.
        database = small_database()
        missing = Atom(Predicate("Nowhere", 2), (x, x))
        model = CostModel(Statistics(database))
        assert model.scan_estimate(missing).rows == 0
        query = ConjunctiveQuery((x,), [missing, Atom(E, (x, y))])
        assert list(evaluate_iter(query, database, engine="plan")) == []

    def test_scan_estimates_are_memoised_per_atom(self):
        model = CostModel(Statistics(small_database()))
        atom = Atom(E, (a, y))
        assert model.scan_estimate(atom) is model.scan_estimate(atom)

    def test_statistics_reuse_an_injected_scan_cache(self):
        database = small_database()
        cache = ScanCache(database)
        statistics = Statistics(database, cache)
        statistics.base_relation(E)
        statistics.base_relation(E)
        assert cache.base_scans == 1


# ----------------------------------------------------------------------
# EXPLAIN rendering
# ----------------------------------------------------------------------
class TestExplain:
    def test_render_marks_estimates_observations_and_sharing(self):
        context = ctx()
        scan = Scan(Atom(E, (x, y)))
        plan = HashJoin(SemiJoin(scan, Scan(Atom(F, (y, z)))), scan)
        CostModel(Statistics(context.database)).annotate(plan)
        plan.materialize(context)
        rendered = render_plan(plan)
        assert "est=" in rendered and "obs=" in rendered
        assert "(shared, shown above)" in rendered  # the scan appears twice

    def test_explain_reports_every_route(self):
        database = small_database()
        acyclic = ConjunctiveQuery((x, z), [Atom(E, (x, y)), Atom(F, (y, z))])
        report = explain(acyclic, database)
        assert "route: yannakakis" in report
        assert "Scan[E(x, y)]" in report

        triangle = ConjunctiveQuery(
            (x,), [Atom(E, (x, y)), Atom(E, (y, z)), Atom(E, (z, x))]
        )
        report = explain(triangle, database)
        assert "route: decomposition" in report
        assert "decomposition: width" in report

        report = explain(triangle, database, engine="plan")
        assert "route: plan" in report
        assert "HashJoin" in report

    def test_explain_observed_matches_true_answer_count(self):
        query, database = yannakakis_scaling_workload(150, seed=1)
        report = explain(query, database)
        answers = len(evaluate_generic(query, database))
        # The plan root is the first operator line (index shifts by one when
        # a `backend:` line is present, and the batch face appends a marker).
        root = next(line for line in report.splitlines() if "est=" in line)
        assert f"obs={answers}" in root

    def test_explain_estimates_only_without_execution(self):
        query, database = yannakakis_scaling_workload(150, seed=1)
        report = explain(query, database, execute=False)
        assert "obs=?" in report


# ----------------------------------------------------------------------
# Engine ↔ IR differentials (all three routes)
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_yannakakis_plans_agree_with_ground_truth(seed):
    query, database = randomized_acyclic_workload(seed)
    try:
        evaluator = YannakakisEvaluator(query)
    except AcyclicityRequired:
        return  # constant injection made the variable hypergraph cyclic
    expected = evaluate_generic(query, database)
    # Materialising face: reducers + hash joins + projections.
    answer_plan = evaluator.compile_answer_plan()
    relation = answer_plan.materialize(ExecutionContext(database))
    assert relation.answer_tuples(query.head) == expected
    # Streaming face: reducers + cursor enumeration, via the public API.
    streamed = list(evaluator.iter_answers(database))
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == expected
    # limit= yields exactly min(k, |answers|) distinct answers.
    k = seed % 4
    limited = list(evaluate_iter(query, database, limit=k))
    assert len(limited) == min(k, len(expected))
    assert set(limited) <= expected


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_compiled_plan_chains_agree_with_ground_truth(seed):
    query, database = randomized_cyclic_workload(seed)
    expected = evaluate_generic(query, database)
    plan = plan_greedy(query, database)
    ops = compile_plan(plan)
    assert len(ops) == len(plan)
    # Materialising face.
    assert evaluate_with_plan(query, database) == expected
    # Streaming face (pipelined chain), with limit semantics.
    streamed = list(iter_with_plan(query, database))
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == expected
    k = seed % 4
    limited = list(iter_with_plan(query, database, limit=k))
    assert len(limited) == min(k, len(expected))
    assert set(limited) <= expected


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_explain_execution_agrees_with_evaluate_iter(seed):
    """explain() runs the same plans the engines run: its root observation
    equals the streamed answer count, on whichever route auto picks."""
    query, database = randomized_acyclic_workload(seed)
    streamed = set(evaluate_iter(query, database))
    report = explain(query, database)
    root_line = next(line for line in report.splitlines() if "est=" in line)
    distinct_root = len(
        {tuple(answer[i] for i in _first_occurrence_positions(query)) for answer in streamed}
    )
    assert f"obs={distinct_root}," in root_line or f"obs={distinct_root})" in root_line


def _first_occurrence_positions(query):
    seen = []
    for variable in query.head:
        if variable not in seen:
            seen.append(variable)
    return [query.head.index(v) for v in seen]


def test_reformulation_route_explains_and_streams_identically():
    from repro.workloads.paper_examples import example1_query, example1_tgd
    from repro.workloads import music_store_database

    query, tgd = example1_query(), example1_tgd()
    database = music_store_database(seed=11, customers=10, records=12, styles=4)
    expected = set(evaluate_iter(query, database, tgds=[tgd], engine="reformulation"))
    assert expected == evaluate_generic(query, database)
    report = explain(query, database, tgds=[tgd], engine="reformulation")
    assert "route: reformulated" in report
    assert "reformulation:" in report
    root = next(line for line in report.splitlines() if "est=" in line)
    assert f"obs={len(expected)}," in root or f"obs={len(expected)})" in root


# ----------------------------------------------------------------------
# Bounded work: the plan route's streaming face pipelines its prefix
# ----------------------------------------------------------------------
def _probes(run):
    before = Partition.total_probes
    result = run()
    return result, Partition.total_probes - before


def test_iter_with_plan_no_longer_materialises_its_join_prefix():
    """Pre-IR, ``iter_with_plan`` executed every prefix step as a
    materialised hash join — the probes before the first answer grew with
    the prefix's intermediate sizes.  The pipelined chain must reach the
    first answers after O(chain · limit) bucket probes instead."""
    query, database = yannakakis_scaling_workload(600, seed=2)
    plan = plan_greedy(query, database)
    # Per-tuple pipelining is a property of the tuple face; the columnar
    # face streams in BATCH_ROWS chunks and has its own per-batch bound
    # (tests/test_columnar_backend.py).
    _, probes_limited = _probes(
        lambda: list(iter_with_plan(query, database, limit=3, backend="tuple"))
    )
    _, probes_full = _probes(
        lambda: list(iter_with_plan(query, database, backend="tuple"))
    )
    # The limited run touches a handful of buckets (≈ limit · chain depth),
    # nowhere near the full pipeline, and far below the prefix sizes the
    # old implementation had to pay before the first answer.
    assert probes_limited <= 4 * len(plan)
    assert probes_limited * 10 <= probes_full


def test_iter_with_plan_first_answer_is_cheap_across_sizes():
    """Probes before the first answer stay flat as |D| doubles (the old
    prefix materialisation grew linearly)."""
    first_probes = []
    for size in (300, 1200):
        query, database = yannakakis_scaling_workload(size, seed=1)
        stream = iter_with_plan(query, database, backend="tuple")
        _, probes = _probes(lambda: next(stream))
        first_probes.append(probes)
    assert first_probes[0] == first_probes[1]
