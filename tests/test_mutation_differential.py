"""Differential: cached evaluation under mutation vs a fresh-cache oracle.

Hypothesis drives random interleavings of ``insert`` / ``delete`` /
``evaluate`` against one long-lived :class:`QueryService` (cache reused
across the whole interleaving, mutations absorbed incrementally) and
checks every evaluation against a fresh-scan-per-call oracle — on both the
tuple and the columnar backend.  This is the repo's established
differential-oracle pattern applied to the mutation axis: any divergence
means a cached partition, statistic, or encoding survived a write it
should not have.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import YannakakisEvaluator, evaluate_iter
from repro.queries.cq import ConjunctiveQuery
from repro.service import QueryService

E = Predicate("E", 2)
F = Predicate("F", 1)
x, y, z = Variable("x"), Variable("y"), Variable("z")

#: Acyclic and cyclic-free shapes that exercise joins, semijoins, and
#: constant-anchored scans over the mutated predicates.
QUERIES = [
    ConjunctiveQuery((x, z), [Atom(E, (x, y)), Atom(E, (y, z))], name="path"),
    ConjunctiveQuery((x,), [Atom(E, (x, y)), Atom(F, (y,))], name="filtered"),
    ConjunctiveQuery((y,), [Atom(E, (Constant(0), y))], name="anchored"),
]

#: One interleaving step: insert/delete an E or F fact, or evaluate one of
#: the query shapes.  The tiny term domain forces heavy key collisions —
#: exactly where stale buckets would show.
_STEPS = st.lists(
    st.one_of(
        st.tuples(
            st.sampled_from(["+", "-"]),
            st.sampled_from(["E", "F"]),
            st.integers(min_value=0, max_value=4),
            st.integers(min_value=0, max_value=4),
        ),
        st.tuples(st.just("?"), st.integers(min_value=0, max_value=len(QUERIES) - 1)),
    ),
    min_size=1,
    max_size=25,
)


def _fact(predicate_name, a, b):
    if predicate_name == "E":
        return Atom(E, (Constant(a), Constant(b)))
    return Atom(F, (Constant(a),))


def _run_interleaving(steps, backend):
    database = Database()
    service = QueryService(database)
    oracles = {query.name: YannakakisEvaluator(query) for query in QUERIES}
    evaluated = 0
    for step in steps:
        if step[0] == "?":
            query = QUERIES[step[1]]
            got = service.submit(query, backend=backend)
            want = oracles[query.name].evaluate(database)  # fresh scans
            assert got == want, (
                f"{query.name} diverged after {service.writes} writes "
                f"(backend={backend})"
            )
            evaluated += 1
        elif step[0] == "+":
            service.insert(_fact(step[1], step[2], step[3]))
        else:
            service.delete(_fact(step[1], step[2], step[3]))
    # Final sweep: every shape must agree on the terminal state.
    for query in QUERIES:
        assert service.submit(query, backend=backend) == oracles[
            query.name
        ].evaluate(database)
    return evaluated


@pytest.mark.parametrize("backend", ["tuple", "columnar"])
@settings(max_examples=40, deadline=None)
@given(steps=_STEPS)
def test_interleavings_match_fresh_cache_oracle(backend, steps):
    _run_interleaving(steps, backend)


@pytest.mark.parametrize("backend", ["tuple", "columnar"])
def test_seeded_long_interleaving(backend):
    """A fixed, long interleaving (fast deterministic CI signal)."""
    import random

    rng = random.Random(42)
    steps = []
    for _ in range(300):
        if rng.random() < 0.3:
            steps.append(("?", rng.randrange(len(QUERIES))))
        else:
            steps.append(
                (
                    rng.choice(["+", "-"]),
                    rng.choice(["E", "F"]),
                    rng.randrange(5),
                    rng.randrange(5),
                )
            )
    assert _run_interleaving(steps, backend) > 10


def test_open_plain_generator_survives_mutation(monkeypatch):
    """Without the service guard, an open stream must not crash on writes.

    The plain (non-service) ``evaluate_iter`` generators snapshot their
    scans lazily; a mutation mid-stream may or may not be visible in the
    remaining answers, but pulling the generator to exhaustion must stay
    well-defined (no exception, distinct tuples).  The seam is pinned off:
    under ``REPRO_SERVICE=1`` this stream would instead be guarded and
    fail loudly (covered by the service tests).
    """
    monkeypatch.setenv("REPRO_SERVICE", "0")
    database = Database()
    for a, b in [(1, 2), (2, 3), (3, 4), (4, 5)]:
        database.add(Atom(E, (Constant(a), Constant(b))))
    query = QUERIES[0]
    stream = evaluate_iter(query, database)
    first = next(stream)
    database.add(Atom(E, (Constant(9), Constant(10))))
    rest = list(stream)
    answers = [first, *rest]
    assert len(answers) == len(set(answers))
    assert all(len(answer) == 2 for answer in answers)
