"""Unit tests for the morsel-driven parallel execution layer (ISSUE 10).

Covers the seams the differential suite (``test_parallel_differential.py``)
does not: ``resolve_parallel`` precedence and error behaviour, the
``REPRO_BATCH_ROWS`` knob, encoder thread-safety under a hammering pool,
EXPLAIN's ``workers=P shards=…`` rendering, the verifier's PLAN017 layout
audit, shard-count observability, probe accounting parity, and the
committed ``BENCH_parallel_scaling.json`` speedup record.
"""

import json
import threading
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path

import pytest

from repro.analysis import verify_plan
from repro.datamodel import Constant, Variable
from repro.evaluation import (
    ExecutionContext,
    EncodedRelation,
    PARALLEL_ENV,
    ScanCache,
    TermEncoder,
    YannakakisEvaluator,
    render_plan,
    resolve_parallel,
    shard_counts,
)
from repro.evaluation import parallel as parallel_module
from repro.evaluation.operators import (
    BATCH_ROWS_ENV,
    DEFAULT_BATCH_ROWS,
    _resolve_batch_rows,
)
from repro.evaluation.relation import Partition
from repro.workloads.generators import yannakakis_scaling_workload

REPO_ROOT = Path(__file__).resolve().parents[1]


# ----------------------------------------------------------------------
# resolve_parallel: explicit > environment > serial, loud on junk
# ----------------------------------------------------------------------
def test_resolve_parallel_explicit_wins_over_environment(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "8")
    assert resolve_parallel(2) == 2
    assert resolve_parallel(0) == 0  # explicit serial beats the env too


def test_resolve_parallel_reads_environment(monkeypatch):
    monkeypatch.setenv(PARALLEL_ENV, "3")
    assert resolve_parallel() == 3
    monkeypatch.delenv(PARALLEL_ENV)
    assert resolve_parallel() == 0  # unset → serial


def test_resolve_parallel_auto_uses_cpu_count(monkeypatch):
    import os

    monkeypatch.setenv(PARALLEL_ENV, "auto")
    assert resolve_parallel() == (os.cpu_count() or 1)
    assert resolve_parallel("auto") == (os.cpu_count() or 1)


@pytest.mark.parametrize("junk", ["many", "-1", -1, True, "4.5"])
def test_resolve_parallel_rejects_junk_loudly(junk):
    with pytest.raises(ValueError):
        resolve_parallel(junk)


# ----------------------------------------------------------------------
# Satellite 1: TermEncoder under a hammering thread pool
# ----------------------------------------------------------------------
def test_term_encoder_concurrent_encoding_stays_bijective():
    """Many threads encoding overlapping term sets must build one bijection.

    Before the lock, two threads could both miss the dict and append the
    same term twice (or interleave appends and hand out the same code for
    different terms).  Overlapping work maximises that window.
    """
    encoder = TermEncoder()
    terms = [Constant(value) for value in range(400)]
    barrier = threading.Barrier(8)

    def hammer(offset):
        barrier.wait()  # release all threads into encode() together
        return [encoder.encode(terms[(offset * 13 + i) % len(terms)]) for i in range(2000)]

    with ThreadPoolExecutor(max_workers=8) as pool:
        results = [f.result() for f in [pool.submit(hammer, n) for n in range(8)]]

    # One code per distinct term, every handed-out code decodes back.
    assert len(encoder) == len(terms)
    assert sorted(encoder.codes.values()) == list(range(len(terms)))
    for codes in results:
        for code in codes:
            assert encoder.encode(encoder.decode(code)) == code


# ----------------------------------------------------------------------
# Satellite 2: REPRO_BATCH_ROWS validation
# ----------------------------------------------------------------------
def test_batch_rows_env_overrides(monkeypatch):
    monkeypatch.setenv(BATCH_ROWS_ENV, "4096")
    assert _resolve_batch_rows() == 4096
    monkeypatch.delenv(BATCH_ROWS_ENV)
    assert _resolve_batch_rows() == DEFAULT_BATCH_ROWS


@pytest.mark.parametrize("junk", ["0", "-5", "lots", "3.5"])
def test_batch_rows_junk_warns_and_defaults(monkeypatch, junk):
    monkeypatch.setenv(BATCH_ROWS_ENV, junk)
    with pytest.warns(RuntimeWarning, match=BATCH_ROWS_ENV):
        assert _resolve_batch_rows() == DEFAULT_BATCH_ROWS


# ----------------------------------------------------------------------
# Executed-plan seams: EXPLAIN rendering, PLAN017, probe accounting
# ----------------------------------------------------------------------
def _executed_parallel_plan(monkeypatch, size=400, workers=4):
    """A materialised answer plan whose kernels ran with ``workers``."""
    monkeypatch.setattr(parallel_module, "PARALLEL_MIN_ROWS", 0)
    query, database = yannakakis_scaling_workload(size, seed=3)
    scans = ScanCache(database)
    evaluator = YannakakisEvaluator(query, scans)
    plan = evaluator.compile_answer_plan()
    context = ExecutionContext(database, scans, backend="columnar", parallel=workers)
    plan.materialize_encoded(context)
    return plan


def _parallel_nodes(root):
    nodes, stack, seen = [], [root], set()
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        if node._parallel_meta is not None:
            nodes.append(node)
        stack.extend(node.children)
    return nodes


def test_explain_renders_worker_and_shard_counts(monkeypatch):
    plan = _executed_parallel_plan(monkeypatch)
    rendering = render_plan(plan)
    assert "workers=4 shards=" in rendering
    assert "morsels=" in rendering
    assert _parallel_nodes(plan), "no kernel ran parallel despite a zero gate"


def test_parallel_meta_distinguishes_shards_from_morsels():
    """``shards`` counts the build-side hash shards, ``morsels`` the probe
    morsels — EXPLAIN must not label one as the other when they differ."""
    meta = parallel_module.ParallelMeta("join", 4, (10, 20, 30), (15,) * 4, 60, 60)
    assert meta.shards == 3
    assert meta.morsels == 4
    assert meta.describe() == "workers=4 shards=3 morsels=4"
    unary = parallel_module.ParallelMeta("select", 4, (), (8, 8), 16, 0)
    assert unary.shards == 0
    assert unary.describe() == "workers=4 morsels=2"


def test_verifier_passes_clean_parallel_plan(monkeypatch):
    plan = _executed_parallel_plan(monkeypatch)
    assert verify_plan(plan) == []


def test_plan017_flags_corrupted_morsel_layout(monkeypatch):
    plan = _executed_parallel_plan(monkeypatch)
    node = _parallel_nodes(plan)[0]
    # Corrupting the probe-row total desynchronises both the morsel tiling
    # and the cross-check against the child's cached batch result.
    node._parallel_meta.probe_rows += 1
    findings = verify_plan(plan)
    assert [f.code for f in findings] == ["PLAN017"] * 2


def test_plan017_flags_corrupted_shard_layout(monkeypatch):
    plan = _executed_parallel_plan(monkeypatch)
    binary = [
        n for n in _parallel_nodes(plan)
        if n._parallel_meta.kernel in ("join", "semijoin")
    ]
    assert binary, "plan executed no parallel binary kernel"
    node = binary[0]
    node._parallel_meta.build_rows += 1
    findings = verify_plan(plan)
    assert [f.code for f in findings] == ["PLAN017"] * 2


def test_plan017_rejects_serial_layout_and_unknown_kernel(monkeypatch):
    plan = _executed_parallel_plan(monkeypatch)
    nodes = _parallel_nodes(plan)
    nodes[0]._parallel_meta.workers = 1
    findings = verify_plan(plan)
    assert any("serial" in f.message for f in findings)
    nodes[0]._parallel_meta.workers = 4  # restore
    nodes[0]._parallel_meta.kernel = "mystery"
    findings = verify_plan(plan)
    assert len(findings) == 1 and "mystery" in findings[0].message


def test_probe_accounting_matches_serial(monkeypatch):
    """``Partition.total_probes`` must advance identically per worker count.

    The coordinator aggregates probe counts once per operator, so the
    bounded-work assertions (probes ≤ O(|D| + |answers|)) hold under
    parallel execution exactly as under serial.
    """
    monkeypatch.setattr(parallel_module, "PARALLEL_MIN_ROWS", 0)
    query, database = yannakakis_scaling_workload(400, seed=3)

    def probes(workers):
        evaluator = YannakakisEvaluator(query)
        before = Partition.total_probes
        answers = evaluator.evaluate(database, backend="columnar", parallel=workers)
        return answers, Partition.total_probes - before

    serial_answers, serial_probes = probes(0)
    for workers in (2, 4):
        answers, counted = probes(workers)
        assert answers == serial_answers
        assert counted == serial_probes, (
            f"probe accounting diverged at workers={workers}: "
            f"{counted} vs serial {serial_probes}"
        )


def test_multi_column_packed_keys_track_encoder_growth(monkeypatch):
    """A warm packed-key cache must repack after the shared encoder grows.

    One join side can sit warm in a scan cache — its multi-column keys
    packed at the encoder size of an earlier query — while the other side
    is a fresh store packed at the current, larger size (new query
    constants, absorbed inserts).  The mixed-radix base must therefore be
    sampled once per kernel call and be part of the cache key; otherwise
    the two sides compare incompatible encodings and shard routing
    silently diverges.
    """
    pytest.importorskip("numpy")
    monkeypatch.setenv("REPRO_NUMPY", "1")
    monkeypatch.setattr(parallel_module, "PARALLEL_MIN_ROWS", 0)
    encoder = TermEncoder()
    schema = (Variable("x"), Variable("y"))
    rows = [(Constant(i), Constant((i * 7) % 40)) for i in range(48)]
    encoded_rows = [encoder.encode_row(row) for row in rows]
    left = EncodedRelation.from_rows(schema, encoded_rows, encoder)

    def parallel_rows(build):
        result = parallel_module.parallel_join(
            left, build, (0, 1), (0, 1), (), schema, 4
        )
        assert result is not None, "parallel kernel unexpectedly declined"
        return result[0]._key_column((0, 1))

    warm = EncodedRelation.from_rows(schema, encoded_rows[:24], encoder)
    assert parallel_rows(warm) == left.join(warm)._key_column((0, 1))
    # ``left``'s packed keys are now cached.  Grow the shared encoder, then
    # join against a fresh store whose keys pack at the larger base.
    for value in range(1000, 1400):
        encoder.encode(Constant(value))
    fresh = EncodedRelation.from_rows(schema, encoded_rows[8:], encoder)
    assert parallel_rows(fresh) == left.join(fresh)._key_column((0, 1))


# ----------------------------------------------------------------------
# Probe accounting under concurrent scheduling
# ----------------------------------------------------------------------
def test_probe_counters_are_exact_under_concurrency():
    """Concurrent probes must not lose process-wide updates, and each
    thread's tally (what operators diff for ``observed_probes``) counts
    exactly its own probes."""
    partition = Partition((0,), [(value,) for value in range(4)])
    barrier = threading.Barrier(8)

    def hammer():
        barrier.wait()
        before = Partition.thread_probes()
        for _ in range(5000):
            partition.get((1,))
        return Partition.thread_probes() - before

    start = Partition.total_probes
    with ThreadPoolExecutor(max_workers=8) as pool:
        deltas = [f.result() for f in [pool.submit(hammer) for _ in range(8)]]
    assert deltas == [5000] * 8
    assert Partition.total_probes - start == 8 * 5000


def test_hash_join_observed_probes_ignore_other_threads():
    """EXPLAIN's per-operator probe counts diff the thread-local counter,
    so probes from concurrently scheduled queries never inflate them."""
    query, database = yannakakis_scaling_workload(600, seed=3)

    def observed(noisy):
        scans = ScanCache(database)
        evaluator = YannakakisEvaluator(query, scans)
        plan = evaluator.compile_answer_plan()
        context = ExecutionContext(database, scans)
        if not noisy:
            plan.materialize(context)
        else:
            stop = threading.Event()
            partition = Partition((0,), [(value,) for value in range(8)])

            def hammer():
                while not stop.is_set():
                    partition.get((3,))

            thread = threading.Thread(target=hammer)
            thread.start()
            try:
                plan.materialize(context)
            finally:
                stop.set()
                thread.join()
        return [node.observed_probes for node in plan.walk()]

    assert observed(noisy=False) == observed(noisy=True)


# ----------------------------------------------------------------------
# shard_counts observability
# ----------------------------------------------------------------------
def test_shard_counts_tile_the_relation():
    query, database = yannakakis_scaling_workload(300, seed=3)
    scans = ScanCache(database)
    encoder = TermEncoder()
    atom = query.body[0]
    encoded = EncodedRelation.from_relation(scans.scan(atom), encoder)
    counts = shard_counts(encoded, [atom.terms[-1]], 4)
    assert len(counts) == 4
    assert sum(counts) == len(encoded)
    with pytest.raises(ValueError):
        shard_counts(encoded, [atom.terms[-1]], 0)


# ----------------------------------------------------------------------
# Acceptance record: the committed benchmark snapshot
# ----------------------------------------------------------------------
def test_committed_parallel_snapshot_records_acceptance_speedup():
    """ISSUE 10 acceptance: ≥2× at 4 workers vs 1, numpy columnar, largest size.

    Pins the *committed* ``BENCH_parallel_scaling.json`` (regenerated by
    ``make bench-parallel``), so a perf regression has to show up in the
    recorded artefact before it can be committed — no re-timing in CI.
    """
    snapshot = json.loads((REPO_ROOT / "BENCH_parallel_scaling.json").read_text())
    assert snapshot["numpy_speedup_at_4"] >= 2.0
    assert snapshot["numpy_e2e_speedup_at_4"] >= 2.0
    sweeps = snapshot["sweeps"]
    assert any(row["storage"] == "python" for row in sweeps)
    largest = max(
        (row for row in sweeps if row["storage"] == "numpy"),
        key=lambda row: row["size"],
    )
    assert largest["speedups"]["4"] == snapshot["numpy_speedup_at_4"]
