"""Tests for containment under constraints and for the UCQ rewriting engine."""

import pytest

from repro.containment import (
    ContainmentConfig,
    ContainmentOutcome,
    contained_under_egds,
    contained_under_tgds,
    cq_contained_in,
    cq_contained_in_ucq,
    cq_equivalent,
    equivalent_under_egds,
    equivalent_under_tgds,
    ucq_contained_in_ucq,
    ucq_contained_under_tgds,
    ucq_equivalent_under_tgds,
)
from repro.datamodel import Constant, Predicate, Variable
from repro.parser import parse_egd, parse_query, parse_tgd, parse_ucq
from repro.queries import UnionOfConjunctiveQueries
from repro.rewriting import (
    RewritingBudgetExceeded,
    RewritingConfig,
    rewrite,
    rewrite_step,
    rewriting_contained_under_tgds,
    small_query_bound_guarded,
    small_query_bound_ucq_rewritable,
    ucq_rewritable_height_bound,
)
from repro.workloads.paper_examples import (
    example1_acyclic_reformulation,
    example1_query,
    example1_tgd,
    example3_query,
    example3_tgds,
)


class TestContainmentUnderTgds:
    def test_example1_equivalence(self, music_store):
        query, tgds, reformulation = music_store
        assert equivalent_under_tgds(query, reformulation, tgds) is ContainmentOutcome.TRUE
        # Without the constraint the reformulation is strictly weaker.
        assert cq_contained_in(query, reformulation)
        assert not cq_contained_in(reformulation, query)

    def test_containment_uses_the_chase(self):
        tgds = [parse_tgd("R(x, y) -> R(y, x)")]
        forward = parse_query("R(x, y)")
        backward = parse_query("R(y, x)")
        assert contained_under_tgds(forward, backward, tgds) is ContainmentOutcome.TRUE
        assert contained_under_tgds(forward, backward, []) is ContainmentOutcome.TRUE  # same up to renaming
        longer = parse_query("R(x, y), R(y, z), R(z, x)")
        assert contained_under_tgds(forward, longer, tgds) is ContainmentOutcome.FALSE

    def test_head_arity_mismatch(self):
        unary = parse_query("q(x) :- R(x, y)")
        boolean = parse_query("R(x, y)")
        assert contained_under_tgds(unary, boolean, []) is ContainmentOutcome.FALSE

    def test_unknown_outcome_on_truncated_chase(self):
        tgds = [parse_tgd("R(x, y) -> R(y, z)")]
        left = parse_query("R(x, y)")
        right = parse_query("R(x, y), R(y, z), R(z, w), S(w, u)")
        config = ContainmentConfig(max_steps=2)
        outcome = contained_under_tgds(left, right, tgds, config)
        assert outcome is ContainmentOutcome.UNKNOWN
        assert not outcome.is_definite
        assert not bool(outcome)

    def test_equivalence_three_valued_logic(self):
        tgds = [parse_tgd("R(x, y) -> R(y, z)")]
        left = parse_query("R(x, y)")
        right = parse_query("R(x, y), R(y, z)")
        assert equivalent_under_tgds(left, right, tgds) is ContainmentOutcome.TRUE
        third = parse_query("S(x, y)")
        assert equivalent_under_tgds(left, third, tgds) is ContainmentOutcome.FALSE

    def test_cq_in_ucq_under_tgds(self):
        tgds = [parse_tgd("A(x) -> B(x)")]
        left = parse_query("A(x)")
        ucq = parse_ucq("B(x) ; C(x)")
        assert (
            ucq_contained_under_tgds(UnionOfConjunctiveQueries([left]), ucq, tgds)
            is ContainmentOutcome.TRUE
        )

    def test_ucq_equivalence_under_tgds(self):
        tgds = [parse_tgd("A(x) -> B(x)"), parse_tgd("B(x) -> A(x)")]
        left = parse_ucq("A(x)")
        right = parse_ucq("B(x)")
        assert ucq_equivalent_under_tgds(left, right, tgds) is ContainmentOutcome.TRUE


class TestContainmentUnderEgds:
    def test_key_makes_queries_equivalent(self):
        egds = [parse_egd("R(x, y), R(x, z) -> y = z")]
        doubled = parse_query("R(x, y), R(x, z), S(y, z, w)")
        single = parse_query("R(x, y), S(y, y, w)")
        assert contained_under_egds(doubled, single, egds)
        assert contained_under_egds(single, doubled, egds)
        assert equivalent_under_egds(doubled, single, egds)
        # Without the key the containment fails in one direction.
        assert not cq_contained_in(doubled, single)

    def test_failing_chase_means_vacuous_containment(self):
        egds = [parse_egd("R(x, y), R(x, z) -> y = z")]
        contradictory = parse_query("R(x, 'a'), R(x, 'b')")
        anything = parse_query("S(u, v, w)")
        assert contained_under_egds(contradictory, anything, egds)

    def test_unconstrained_fallback(self):
        left = parse_query("R(x, y), R(y, z)")
        right = parse_query("R(x, y)")
        assert contained_under_egds(left, right, [])
        assert not contained_under_egds(right, left, [])


class TestClassicalContainment:
    def test_equivalence_by_folding(self):
        left = parse_query("R(x, y), R(x, z)")
        right = parse_query("R(x, y)")
        assert cq_equivalent(left, right)

    def test_ucq_containment(self):
        small = parse_ucq("R(x, x)")
        big = parse_ucq("R(x, y) ; S(x)")
        assert ucq_contained_in_ucq(small, big)
        assert not ucq_contained_in_ucq(big, small)

    def test_cq_in_ucq(self):
        query = parse_query("R(x, x)")
        ucq = parse_ucq("R(x, y) ; S(x)")
        assert cq_contained_in_ucq(query, ucq)
        assert not cq_contained_in_ucq(parse_query("S(y)"), parse_ucq("R(x, y)"))


class TestRewriting:
    def test_example1_rewriting_contains_the_reformulation_direction(self):
        query = example1_query()
        tgds = [example1_tgd()]
        rewriting = rewrite(query, tgds)
        assert len(rewriting) >= 2
        # The rewriting decides containment: the paper's acyclic reformulation
        # is contained in q under Σ.
        reformulation = example1_acyclic_reformulation()
        assert rewriting_contained_under_tgds(reformulation, query, tgds, rewriting=rewriting)
        # And a completely unrelated query is not.
        unrelated = parse_query("p(x, y) :- Owns(x, y)")
        assert not rewriting_contained_under_tgds(unrelated, query, tgds, rewriting=rewriting)

    def test_rewriting_agrees_with_chase_containment_on_nr_sets(self):
        tgds = [parse_tgd("A(x, y) -> B(x, y)"), parse_tgd("B(x, y) -> C(x)")]
        target = parse_query("C(x)")
        rewriting = rewrite(target, tgds)
        for text in ["A(u, v)", "B(u, v)", "C(u)", "D(u)"]:
            left = parse_query(text)
            via_rewriting = rewriting_contained_under_tgds(left, target, tgds, rewriting=rewriting)
            via_chase = contained_under_tgds(left, target, tgds)
            assert via_rewriting == bool(via_chase)

    def test_rewrite_step_respects_existential_restrictions(self):
        # S(x, y) with y existential cannot be rewritten when y is shared
        # with an atom outside the piece.
        tgd = parse_tgd("A(x) -> S(x, y)")
        blocked = parse_query("S(u, v), T(v)")
        assert rewrite_step(blocked, tgd) == []
        allowed = parse_query("S(u, v)")
        results = rewrite_step(allowed, tgd)
        assert len(results) == 1
        assert results[0].predicates() == {Predicate("A", 1)}

    def test_rewrite_step_blocks_answer_variables_on_existentials(self):
        tgd = parse_tgd("A(x) -> S(x, y)")
        query = parse_query("q(v) :- S(u, v)")
        assert rewrite_step(query, tgd) == []

    def test_rewrite_step_factorisation(self):
        # Two atoms of the query unify with the same head atom (factorisation).
        tgd = parse_tgd("A(x) -> S(x, y)")
        query = parse_query("S(u, v), S(u, w)")
        results = rewrite_step(query, tgd)
        assert any(
            result.predicates() == {Predicate("A", 1)} and len(result) == 1
            for result in results
        )

    def test_rewriting_height_bound(self):
        query = example3_query(2)
        tgds = example3_tgds(2)
        bound = ucq_rewritable_height_bound(query, tgds)
        rewriting = rewrite(query, tgds)
        assert rewriting.height() <= bound

    def test_example3_rewriting_has_exponential_disjunct(self):
        n = 3
        query = example3_query(n)
        tgds = example3_tgds(n)
        rewriting = rewrite(query, tgds, RewritingConfig(max_disjuncts=5000, max_rounds=50))
        last_predicate = Predicate(f"P{n}", n + 2)
        sizes = [
            len(disjunct)
            for disjunct in rewriting
            if disjunct.predicates() == {last_predicate}
        ]
        assert sizes, "expected a disjunct over the deepest predicate"
        assert max(sizes) == 2 ** n

    def test_rewriting_budget_is_enforced(self):
        # Transitivity is not UCQ rewritable: rewriting a ground edge keeps
        # producing longer and longer unsubsumed paths, so the budget must trip.
        tgds = [parse_tgd("R(x, y), R(y, z) -> R(x, z)")]
        query = parse_query("R('s', 't')")
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(query, tgds, RewritingConfig(max_disjuncts=10, max_rounds=3))

    def test_size_bounds(self):
        query = example1_query()
        tgds = [example1_tgd()]
        assert small_query_bound_guarded(query) == 2 * len(query)
        assert small_query_bound_ucq_rewritable(query, tgds) == 2 * ucq_rewritable_height_bound(
            query, tgds
        )
        assert ucq_rewritable_height_bound(query, tgds) >= len(query)
