"""Epoch-aware caches under in-place mutation: the stale-answer bugfix.

The seed's ``ScanCache`` guarded staleness with an O(1) *size snapshot*, so
any size-preserving mutation (delete one fact, insert another) silently
served pre-mutation partitions and answers.  These tests pin the fix:

* ``Instance`` mutation epochs, the bounded journal, and content tokens;
* the regression itself — a same-size delete+insert must be answered from
  post-mutation facts (this test fails on the seed);
* incremental maintenance — cached rows/partitions/encodings are patched by
  :meth:`Relation.apply_delta` (``delta_merges``), not rebuilt, and every
  pre-mutation ``with_schema`` view observes the merge (the aliasing audit);
* the distinct :class:`CacheBindingError` for foreign databases, with
  fact-identical copies accepted;
* epoch-aware :class:`Statistics` and the PLAN016 verifier check.
"""

import pytest

from repro.analysis import Severity, verify_plan
from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.evaluation import (
    CacheBindingError,
    ExecutionContext,
    Relation,
    Scan,
    ScanCache,
    Statistics,
    YannakakisEvaluator,
)
from repro.queries.cq import ConjunctiveQuery

E = Predicate("E", 2)
F = Predicate("F", 1)
x, y, z = Variable("x"), Variable("y"), Variable("z")


def _edge(a, b):
    return Atom(E, (Constant(a), Constant(b)))


def _chain_db(*pairs):
    database = Database()
    for a, b in pairs:
        database.add(_edge(a, b))
    return database


# ----------------------------------------------------------------------
# Instance: epochs, journal, content tokens
# ----------------------------------------------------------------------
class TestInstanceEpochs:
    def test_epoch_counts_effective_mutations_only(self):
        database = Database()
        assert database.mutation_epoch == 0
        assert database.add(_edge(1, 2))
        assert database.mutation_epoch == 1
        assert not database.add(_edge(1, 2))  # already present: no epoch
        assert database.mutation_epoch == 1
        assert database.discard(_edge(1, 2))
        assert database.mutation_epoch == 2
        assert not database.discard(_edge(1, 2))  # absent: no epoch
        assert database.mutation_epoch == 2

    def test_journal_since_replays_effective_mutations(self):
        database = _chain_db((1, 2))
        epoch = database.mutation_epoch
        database.add(_edge(2, 3))
        database.discard(_edge(1, 2))
        journal = database.journal_since(epoch)
        assert journal == [(True, _edge(2, 3)), (False, _edge(1, 2))]
        assert database.journal_since(database.mutation_epoch) == []

    def test_journal_since_is_none_beyond_the_window(self):
        database = Database()
        assert database.journal_since(database.mutation_epoch + 1) is None

    def test_journal_trims_in_chunks(self, monkeypatch):
        monkeypatch.setattr(Instance, "JOURNAL_LIMIT", 4)
        database = Database()
        for i in range(2 * 4 + 1):  # one past the 2*limit trim trigger
            database.add(Atom(F, (Constant(i),)))
        assert database.journal_since(0) is None  # oldest entries dropped
        recent = database.journal_since(database.mutation_epoch - 2)
        assert recent is not None and len(recent) == 2

    def test_copy_shares_content_token_until_either_mutates(self):
        database = _chain_db((1, 2))
        clone = database.copy()
        assert database.content_token() is clone.content_token()
        assert clone.mutation_epoch == database.mutation_epoch
        clone.add(_edge(9, 9))
        assert database.content_token() is not clone.content_token()
        other = database.copy()
        database.add(_edge(8, 8))
        assert database.content_token() is not other.content_token()


# ----------------------------------------------------------------------
# The regression: same-size mutation must not be served stale
# ----------------------------------------------------------------------
class TestStaleAnswerRegression:
    def test_same_size_delete_insert_serves_fresh_rows(self):
        """The seed's size snapshot cannot see this mutation; epochs can."""
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        atom = Atom(E, (x, y))
        assert set(cache.scan(atom).rows) == {
            (Constant(1), Constant(2)),
            (Constant(2), Constant(3)),
        }
        database.discard(_edge(1, 2))
        database.add(_edge(7, 8))  # |D| unchanged
        assert set(cache.scan(atom).rows) == {
            (Constant(2), Constant(3)),
            (Constant(7), Constant(8)),
        }
        assert cache.delta_merges == 1
        assert cache.full_rebuilds == 0

    def test_same_size_mutation_end_to_end_through_an_evaluator(self):
        """Whole-query answers over a shared cache follow the mutation."""
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        query = ConjunctiveQuery((x, z), [Atom(E, (x, y)), Atom(E, (y, z))])
        evaluator = YannakakisEvaluator(query)
        assert evaluator.evaluate(database, scans=cache) == {
            (Constant(1), Constant(3))
        }
        database.discard(_edge(1, 2))
        database.add(_edge(3, 4))  # |D| unchanged, answers entirely different
        assert evaluator.evaluate(database, scans=cache) == {
            (Constant(2), Constant(4))
        }

    def test_constant_anchored_signatures_absorb_their_delta(self):
        database = _chain_db((1, 2), (1, 3), (2, 4))
        cache = ScanCache(database)
        anchored = Atom(E, (Constant(1), y))
        assert len(cache.scan(anchored)) == 2
        database.add(_edge(1, 9))
        database.add(_edge(5, 6))  # does not match the anchored signature
        scanned = cache.scan(anchored)
        assert set(scanned.rows) == {(Constant(2),), (Constant(3),), (Constant(9),)}

    def test_journal_overflow_falls_back_to_full_rebuild(self, monkeypatch):
        monkeypatch.setattr(Instance, "JOURNAL_LIMIT", 2)
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        atom = Atom(E, (x, y))
        cache.scan(atom)
        for i in range(10, 16):  # blow past the retained journal window
            database.add(_edge(i, i + 1))
        assert len(cache.scan(atom)) == 7
        assert cache.full_rebuilds == 1


# ----------------------------------------------------------------------
# Incremental maintenance: partitions, views, encodings
# ----------------------------------------------------------------------
class TestDeltaMerge:
    def test_cached_partitions_are_patched_in_place(self):
        database = _chain_db((1, 2), (1, 3), (2, 4))
        cache = ScanCache(database)
        relation = cache.scan(Atom(E, (x, y)))
        partition = relation.partition((x,))
        database.discard(_edge(1, 2))
        database.add(_edge(2, 5))
        merged = cache.scan(Atom(E, (x, y)))
        # Same partition object, post-mutation buckets.
        assert merged.partition((x,)) is partition
        assert set(partition.get((Constant(1),))) == {(Constant(1), Constant(3))}
        assert set(partition.get((Constant(2),))) == {
            (Constant(2), Constant(4)),
            (Constant(2), Constant(5)),
        }

    def test_pre_mutation_view_observes_the_merge(self):
        """The aliasing audit: old views must not pin pre-mutation buckets."""
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        old_view = cache.scan(Atom(E, (x, y)))
        old_partition = old_view.partition((x,))
        database.discard(_edge(1, 2))
        database.add(_edge(4, 5))
        new_view = cache.scan(Atom(E, (z, y)))  # triggers the delta merge
        assert set(old_view.rows) == set(new_view.rows)
        assert (Constant(1),) not in old_partition.buckets
        assert set(old_partition.get((Constant(4),))) == {(Constant(4), Constant(5))}
        assert old_view.stamped_epoch() == new_view.stamped_epoch()

    def test_stats_and_encoded_store_are_refreshed_after_merge(self):
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        relation = cache.scan(Atom(E, (x, y)))
        assert relation.column_distinct_counts() == (2, 2)
        stale_store = relation.encoded(cache.encoder)
        database.add(_edge(3, 1))
        merged = cache.scan(Atom(E, (x, y)))
        assert merged.column_distinct_counts() == (3, 3)
        fresh_store = merged.encoded(cache.encoder)
        assert len(fresh_store) == 3
        assert len(stale_store.store.columns[0]) == 2  # old store untouched

    def test_apply_delta_noop_keeps_caches(self):
        relation = Relation((x, y), [(Constant(1), Constant(2))])
        partition = relation.partition((x,))
        relation.apply_delta([], [])
        assert relation.partition((x,)) is partition
        assert relation.rows == [(Constant(1), Constant(2))]


# ----------------------------------------------------------------------
# Cache binding: copies accepted, foreign databases rejected distinctly
# ----------------------------------------------------------------------
class TestCacheBinding:
    def test_fact_identical_copy_is_accepted(self):
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        copy = database.copy()
        scanned = cache.scan(Atom(E, (x, y)), database=copy)
        assert len(scanned) == 2

    def test_mutated_copy_is_rejected(self):
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        copy = database.copy()
        copy.add(_edge(9, 9))
        with pytest.raises(CacheBindingError):
            cache.scan(Atom(E, (x, y)), database=copy)

    def test_mutated_original_rejects_an_old_copy(self):
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        copy = database.copy()
        database.add(_edge(9, 9))
        with pytest.raises(CacheBindingError):
            cache.scan(Atom(E, (x, y)), database=copy)

    def test_independent_equal_database_is_rejected(self):
        cache = ScanCache(_chain_db((1, 2)))
        other = _chain_db((1, 2))  # equal facts, unrelated instance
        with pytest.raises(CacheBindingError):
            cache.scan(Atom(E, (x, y)), database=other)

    def test_binding_error_is_a_value_error(self):
        # Pre-fix callers caught ValueError; the distinct type must not
        # break them.
        assert issubclass(CacheBindingError, ValueError)


# ----------------------------------------------------------------------
# Epoch-aware statistics, encoder audit, verifier integration
# ----------------------------------------------------------------------
class TestEpochSeams:
    def test_statistics_refresh_after_mutation(self):
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        statistics = Statistics(database, cache)
        assert len(statistics.base_relation(E)) == 1
        database.add(_edge(2, 3))
        assert len(statistics.base_relation(E)) == 2

    def test_dead_code_audit_counts_stranded_terms(self):
        database = _chain_db((1, 2), (2, 3))
        cache = ScanCache(database)
        cache.scan(Atom(E, (x, y))).encoded(cache.encoder)
        assert cache.dead_codes() == 0
        database.discard(_edge(1, 2))  # Constant(1) leaves the active domain
        cache.scan(Atom(E, (x, y)))
        assert cache.dead_codes() == 1
        assert cache.dead_code_sweeps == 2

    def test_verify_epochs_is_clean_and_catches_corruption(self):
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        relation = cache.scan(Atom(E, (x, y)))
        assert cache.verify_epochs() == []
        relation.stamp_epoch(relation.stamped_epoch() + 5)  # corrupt
        issues = cache.verify_epochs()
        assert len(issues) == 1
        signature, stamp, expected = issues[0]
        assert signature[0] == E and stamp == expected + 5

    def test_plan016_flags_a_stale_cached_scan(self):
        database = _chain_db((1, 2))
        cache = ScanCache(database)
        node = Scan(Atom(E, (x, y)))
        node.materialize(ExecutionContext(database, cache))
        assert verify_plan(node, expected_epoch=database.mutation_epoch) == []
        database.add(_edge(2, 3))
        diagnostics = verify_plan(node, expected_epoch=database.mutation_epoch)
        assert [d.code for d in diagnostics] == ["PLAN016"]
        assert diagnostics[0].severity is Severity.ERROR
