"""Tests for join-order planning and plan execution (repro.evaluation.join_plans)."""

import random

import pytest

from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.evaluation import (
    boolean_with_plan,
    estimate_cardinality,
    evaluate_generic,
    evaluate_with_plan,
    execute_plan,
    plan_by_cardinality,
    plan_greedy,
    plan_in_query_order,
)
from repro.parser import parse_query
from repro.workloads.generators import (
    music_store_database,
    path_database,
    random_acyclic_query,
    random_database,
    random_schema,
)


E = Predicate("E", 2)
SMALL = Predicate("Small", 1)
BIG = Predicate("Big", 2)


def skewed_database(small_facts=2, big_facts=50):
    """A database where Small is tiny and Big is large (for ordering tests)."""
    database = Database()
    for i in range(small_facts):
        database.add(Atom(SMALL, (Constant(f"s{i}"),)))
    for i in range(big_facts):
        database.add(Atom(BIG, (Constant(f"s{i % small_facts}"), Constant(f"b{i}"))))
    return database


class TestCardinalityEstimates:
    def test_estimate_is_relation_size_for_plain_atoms(self):
        database = skewed_database()
        atom = Atom(BIG, (Variable("x"), Variable("y")))
        assert estimate_cardinality(atom, database) == 50

    def test_constants_reduce_the_estimate(self):
        database = skewed_database()
        plain = Atom(BIG, (Variable("x"), Variable("y")))
        constrained = Atom(BIG, (Constant("s0"), Variable("y")))
        assert estimate_cardinality(constrained, database) < estimate_cardinality(
            plain, database
        )

    def test_repeated_variables_reduce_the_estimate(self):
        database = skewed_database()
        plain = Atom(BIG, (Variable("x"), Variable("y")))
        repeated = Atom(BIG, (Variable("x"), Variable("x")))
        assert estimate_cardinality(repeated, database) < estimate_cardinality(
            plain, database
        )

    def test_empty_relation_estimates_zero(self):
        database = Database()
        atom = Atom(E, (Variable("x"), Variable("y")))
        assert estimate_cardinality(atom, database) == 0


class TestPlanners:
    def test_plan_in_query_order_preserves_order(self):
        database = skewed_database()
        query = parse_query("Big(x, y), Small(x)")
        plan = plan_in_query_order(query, database)
        assert plan.atoms() == list(query.body)

    def test_plan_by_cardinality_puts_small_relation_first(self):
        database = skewed_database()
        query = parse_query("Big(x, y), Small(x)")
        plan = plan_by_cardinality(query, database)
        assert plan.atoms()[0].predicate.name == "Small"

    def test_greedy_plan_starts_with_cheapest_atom(self):
        database = skewed_database()
        query = parse_query("Big(x, y), Small(x)")
        plan = plan_greedy(query, database)
        assert plan.atoms()[0].predicate.name == "Small"

    def test_greedy_plan_avoids_cross_products_when_possible(self):
        database = skewed_database()
        # Small(x) and Small(z) are both cheap, but after Small(x) the greedy
        # planner must pick the connected Big(x, y) before the disconnected
        # Small(z).
        query = parse_query("Small(x), Big(x, y), Small(z), Big(z, w)")
        plan = plan_greedy(query, database)
        # Only one cross product is unavoidable (switching components).
        cross_products = sum(
            1 for step in plan.steps[1:] if not step.shares_variables_with_prefix
        )
        assert cross_products == 1

    def test_plans_cover_every_atom_exactly_once(self):
        database = random_database(seed=1)
        query = random_acyclic_query(seed=2, atom_count=6)
        for planner in (plan_in_query_order, plan_by_cardinality, plan_greedy):
            plan = planner(query, database)
            assert sorted(map(str, plan.atoms())) == sorted(map(str, query.body))

    def test_plan_rendering_mentions_every_step(self):
        database = skewed_database()
        query = parse_query("Big(x, y), Small(x)")
        rendered = str(plan_greedy(query, database))
        assert "Small" in rendered and "Big" in rendered

    def test_empty_body_plan(self):
        database = skewed_database()
        query = parse_query("Small(x)").subquery([])
        plan = plan_greedy(query, database)
        assert len(plan) == 0


class TestExecution:
    def test_plan_answers_match_generic_evaluation(self):
        database = music_store_database(seed=3, customers=10, records=12)
        query = parse_query("q(x, y) :- Interest(x, z), Class(y, z), Owns(x, y)")
        expected = evaluate_generic(query, database)
        for planner in (plan_in_query_order, plan_by_cardinality, plan_greedy):
            assert evaluate_with_plan(query, database, planner=planner) == expected

    def test_plan_answers_match_on_random_workloads(self):
        rng = random.Random(7)
        for seed in range(5):
            schema = random_schema(seed=seed, predicate_count=3, max_arity=2)
            database = random_database(
                seed=seed, schema=schema, facts_per_predicate=15, domain_size=8
            )
            query = random_acyclic_query(
                seed=seed + 100, schema=schema, atom_count=4, free_variables=1
            )
            expected = evaluate_generic(query, database)
            actual = evaluate_with_plan(query, database)
            assert actual == expected

    def test_boolean_with_plan(self):
        database = path_database(4)
        query = parse_query("E(x, y), E(y, z)")
        assert boolean_with_plan(query, database)
        impossible = parse_query("E(x, x)")
        assert not boolean_with_plan(impossible, database)

    def test_execution_reports_intermediate_sizes(self):
        database = skewed_database()
        query = parse_query("q(x, y) :- Small(x), Big(x, y)")
        execution = execute_plan(plan_greedy(query, database), database)
        assert len(execution.intermediate_sizes) == 2
        assert execution.max_intermediate_size >= max(execution.intermediate_sizes)
        assert execution.total_intermediate_tuples == sum(execution.intermediate_sizes)

    def test_good_ordering_shrinks_intermediate_results(self):
        database = skewed_database(small_facts=2, big_facts=80)
        query = parse_query("q(y) :- Big(x, y), Small(x)")
        naive = execute_plan(plan_in_query_order(query, database), database)
        planned = execute_plan(plan_greedy(query, database), database)
        assert planned.answers == naive.answers
        assert planned.intermediate_sizes[0] <= naive.intermediate_sizes[0]

    def test_execution_short_circuits_on_empty_relations(self):
        database = skewed_database()
        query = parse_query("Small(x), E(x, y)")
        execution = execute_plan(plan_in_query_order(query, database), database)
        assert execution.answers == set()
        assert 0 in execution.intermediate_sizes

    def test_constants_in_queries_are_respected(self):
        database = path_database(3)
        query = parse_query("q(y) :- E('n0', y)")
        answers = evaluate_with_plan(query, database)
        assert answers == {(Constant("n1"),)}

    def test_repeated_variables_are_respected(self):
        database = Database(
            [
                Atom(E, (Constant("a"), Constant("a"))),
                Atom(E, (Constant("a"), Constant("b"))),
            ]
        )
        query = parse_query("q(x) :- E(x, x)")
        assert evaluate_with_plan(query, database) == {(Constant("a"),)}
