"""Differential: morsel-parallel execution must equal serial, everywhere.

The parallel layer (:mod:`repro.evaluation.parallel`) promises *bit-identical*
answers to the serial kernels — hash shards preserve bucket order, morsels
merge in probe order, dedup reproduces global first occurrence.  This suite
pins that promise with the repo's differential-oracle pattern on every route
that accepts ``parallel=``:

* the one-shot evaluator (``YannakakisEvaluator.evaluate``) and the plan
  executor (``evaluate_with_plan``) on randomized acyclic workloads — with
  :data:`~repro.evaluation.parallel.PARALLEL_MIN_ROWS` forced to 0 so the
  sharded kernels actually run on the small random inputs (constants,
  repeated head variables, labelled nulls — the historical corner-cutters);
* streaming (``iter_answers`` under ``limit=``);
* the batch face (``BatchEvaluator.evaluate`` over a shared scan cache);
* the standing service (``QueryService.submit``/``submit_batch``) under
  insert/delete interleavings, where parallel reads must still see every
  absorbed write;

each on *both* columnar storage paths (numpy and pure-python ``array('q')``).
"""

import os
import random
from contextlib import contextmanager

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    BatchEvaluator,
    YannakakisEvaluator,
    evaluate_with_plan,
)
from repro.evaluation import parallel as parallel_module
from repro.evaluation.encoding import NUMPY_ENV
from repro.queries.cq import ConjunctiveQuery
from repro.service import QueryService
from helpers.workloads import randomized_acyclic_workload

STORAGE_PARAMS = pytest.mark.parametrize(
    "storage", ["0", "1"], ids=["python", "numpy"]
)


@contextmanager
def _forced_storage(storage):
    """One columnar storage path with the parallel kernels forced on.

    A plain context manager (not a fixture) so the hypothesis-driven tests
    can enter it per generated input — function-scoped fixtures don't reset
    between hypothesis examples.  Small differential inputs sit far below
    the production row gate; forcing ``PARALLEL_MIN_ROWS`` to 0 makes the
    shard/merge machinery the thing under test.
    """
    if storage == "1":
        pytest.importorskip("numpy")
    previous_env = os.environ.get(NUMPY_ENV)
    previous_gate = parallel_module.PARALLEL_MIN_ROWS
    os.environ[NUMPY_ENV] = storage
    parallel_module.PARALLEL_MIN_ROWS = 0
    try:
        yield
    finally:
        parallel_module.PARALLEL_MIN_ROWS = previous_gate
        if previous_env is None:
            del os.environ[NUMPY_ENV]
        else:
            os.environ[NUMPY_ENV] = previous_env


def _assert_parallel_matches_serial(query, database):
    try:
        evaluator = YannakakisEvaluator(query)
    except AcyclicityRequired:
        return  # constant injection made the hypergraph cyclic; out of domain
    serial = evaluator.evaluate(database, backend="columnar", parallel=0)
    for workers in (2, 3, 4):
        assert (
            evaluator.evaluate(database, backend="columnar", parallel=workers)
            == serial
        ), f"evaluator diverged at workers={workers}"
    assert (
        evaluate_with_plan(query, database, backend="columnar", parallel=4)
        == serial
    )
    # Streaming under a limit: the first k answers of the parallel route
    # must be drawn from the same answer set (order is not part of the
    # set-semantics contract, membership is).
    limit = max(1, len(serial) // 2)
    streamed = list(
        evaluator.iter_answers(database, limit=limit, backend="columnar", parallel=4)
    )
    assert len(streamed) == min(limit, len(serial))
    assert set(streamed) <= serial


@STORAGE_PARAMS
@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_parallel_agrees_on_randomized_workloads(storage, seed):
    with _forced_storage(storage):
        query, database = randomized_acyclic_workload(seed)
        _assert_parallel_matches_serial(query, database)


@STORAGE_PARAMS
@pytest.mark.parametrize("seed", range(10))
def test_parallel_agrees_on_seeded_grid(storage, seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    with _forced_storage(storage):
        query, database = randomized_acyclic_workload(seed * 7919)
        _assert_parallel_matches_serial(query, database)


@STORAGE_PARAMS
def test_batch_evaluator_parallel_matches_sequential(storage):
    with _forced_storage(storage):
        _check_batch_evaluator()


def _check_batch_evaluator():
    queries = []
    databases = []
    for seed in range(6):
        query, database = randomized_acyclic_workload(seed * 613)
        try:
            YannakakisEvaluator(query)
        except AcyclicityRequired:
            continue
        queries.append(query)
        databases.append(database)
    assert queries, "seed grid produced no acyclic queries"
    # One shared database: merge the per-seed instances into one.
    merged = Database()
    for database in databases:
        for atom in database.atoms():
            merged.add(atom)
    evaluator = BatchEvaluator(queries)
    serial = evaluator.evaluate(merged, backend="columnar", parallel=0)
    assert evaluator.evaluate(merged, backend="columnar", parallel=4) == serial
    assert evaluator.evaluate_sequential(merged, backend="columnar", parallel=4) == serial


E = Predicate("E", 2)
F = Predicate("F", 1)
x, y, z = Variable("x"), Variable("y"), Variable("z")

SERVICE_QUERIES = [
    ConjunctiveQuery((x, z), [Atom(E, (x, y)), Atom(E, (y, z))], name="path"),
    ConjunctiveQuery((x,), [Atom(E, (x, y)), Atom(F, (y,))], name="filtered"),
    ConjunctiveQuery((y,), [Atom(E, (Constant(0), y))], name="anchored"),
]


@STORAGE_PARAMS
def test_service_parallel_submits_survive_mutation_interleaving(storage):
    """Parallel submits against a long-lived service, interleaved with writes.

    Every read — single and batched, parallel workers on — must equal a
    fresh-cache serial oracle on the current database state; a divergence
    means a shard or packed-key cache survived a write it should not have.
    """
    with _forced_storage(storage):
        _check_service_interleaving()


def _check_service_interleaving():
    rng = random.Random(99)
    database = Database()
    service = QueryService(database)
    oracles = {q.name: YannakakisEvaluator(q) for q in SERVICE_QUERIES}
    evaluated = 0
    for _ in range(120):
        roll = rng.random()
        if roll < 0.25:
            query = SERVICE_QUERIES[rng.randrange(len(SERVICE_QUERIES))]
            got = service.submit(query, backend="columnar", parallel=4)
            want = oracles[query.name].evaluate(database)  # fresh scans, serial
            assert got == want, f"{query.name} diverged after {service.writes} writes"
            evaluated += 1
        elif roll < 0.35:
            got = service.submit_batch(
                SERVICE_QUERIES, backend="columnar", parallel=4
            )
            want = [oracles[q.name].evaluate(database) for q in SERVICE_QUERIES]
            assert got == want, "batched submits diverged from serial oracle"
            evaluated += len(SERVICE_QUERIES)
        elif roll < 0.7:
            a, b = rng.randrange(5), rng.randrange(5)
            fact = (
                Atom(E, (Constant(a), Constant(b)))
                if rng.random() < 0.7
                else Atom(F, (Constant(a),))
            )
            service.insert(fact)
        else:
            a, b = rng.randrange(5), rng.randrange(5)
            fact = (
                Atom(E, (Constant(a), Constant(b)))
                if rng.random() < 0.7
                else Atom(F, (Constant(a),))
            )
            service.delete(fact)
    assert evaluated > 10
