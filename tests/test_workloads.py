"""Tests for the workload generators and the remaining paper examples."""

import pytest

from repro.chase import chase, egd_chase_query
from repro.datamodel import Predicate
from repro.dependencies import classify, DependencyClass, is_guarded_set, is_k2_set
from repro.hypergraph import is_acyclic_instance
from repro.queries import treewidth_upper_bound, gaifman_graph_of_instance, max_clique_lower_bound
from repro.workloads import (
    binary_keys,
    chain_non_recursive_tgds,
    cover_game_scaling_workload,
    cycle_query,
    database_satisfying,
    grid_database,
    layered_decoy_database,
    music_store_database,
    path_database,
    path_query,
    random_acyclic_query,
    random_database,
    random_guarded_tgds,
    random_inclusion_dependencies,
    random_schema,
    star_query,
)
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    example2_query,
    example2_tgd,
    example3_query,
    example3_tgds,
    example4_query,
    example4_scaled_query,
    example4_key,
    example5_keys,
    example5_ring_query,
)


class TestGenerators:
    def test_random_schema_is_deterministic(self):
        assert random_schema(seed=3).predicates() == random_schema(seed=3).predicates()

    def test_random_acyclic_queries_are_acyclic(self):
        for seed in range(10):
            query = random_acyclic_query(seed=seed, atom_count=6)
            assert query.is_acyclic()

    def test_random_acyclic_query_free_variables(self):
        query = random_acyclic_query(seed=1, atom_count=4, free_variables=2)
        assert len(query.head) == 2

    def test_structured_queries(self):
        assert not cycle_query(5).is_acyclic()
        assert path_query(5).is_acyclic()
        assert star_query(5).is_acyclic()
        with pytest.raises(ValueError):
            cycle_query(1)

    def test_random_guarded_and_inclusion_sets(self):
        assert is_guarded_set(random_guarded_tgds(seed=2, count=5))
        inclusions = random_inclusion_dependencies(seed=2, count=5)
        assert all(tgd.is_inclusion_dependency() for tgd in inclusions)

    def test_chain_non_recursive(self):
        tgds = chain_non_recursive_tgds(4)
        assert DependencyClass.NON_RECURSIVE in classify(tgds)

    def test_binary_keys_are_k2(self):
        schema = random_schema(seed=5, predicate_count=4, max_arity=2)
        egds = binary_keys(schema)
        assert egds
        assert all(egd.max_arity() == 2 for egd in egds)

    def test_random_database_sizes(self):
        database = random_database(seed=1, facts_per_predicate=10, domain_size=5)
        assert len(database) > 0
        assert database.is_database()

    def test_database_satisfying_closes_under_the_tgds(self):
        tgds = chain_non_recursive_tgds(2)
        schema = random_schema(seed=4, predicate_count=2, max_arity=2).union(
            __import__("repro").Schema([Predicate("L0", 2)])
        )
        database = database_satisfying(tgds, seed=4, schema=schema, facts_per_predicate=5)
        assert all(tgd.is_satisfied_by(database) for tgd in tgds)

    def test_path_and_grid_databases(self):
        assert len(path_database(10)) == 10
        grid = grid_database(3, 4)
        assert len(grid) == 3 * 3 + 2 * 4  # horizontal + vertical edges

    def test_music_store_database_satisfies_example1_tgd(self):
        database = music_store_database(seed=2, customers=6, records=8, styles=3)
        assert example1_tgd().is_satisfied_by(database)
        assert example1_query().holds_in(database)

    def test_layered_decoy_database_has_dead_ending_decoy_chains(self):
        layers, width = 4, 6
        database = layered_decoy_database(layers, width, fanout=2)
        # Real part plus one decoy edge per intermediate layer per unit
        # width (random real edges may collide with the spine, so the count
        # is an upper bound; the spine and decoy chains are exact).
        expected = layers * width * 2 + (layers - 1) * width
        assert 0.8 * expected <= len(database) <= expected
        # Final-layer decoys are dead ends: no S4 fact leaves a decoy node.
        last = Predicate(f"S{layers}", 2)
        assert not any(
            str(fact.terms[0]).startswith("D")
            for fact in database.atoms_with_predicate(last)
        )
        # Intermediate decoy chains do extend (D1_k -> D2_k in S2).
        assert any(
            str(fact.terms[0]).startswith("D1_")
            for fact in database.atoms_with_predicate(Predicate("S2", 2))
        )
        with pytest.raises(ValueError):
            layered_decoy_database(1, width)

    def test_cover_game_scaling_workload_sizes_track_the_target(self):
        query, database = cover_game_scaling_workload(400)
        assert query.head == ()  # Boolean chain query
        assert len(query.body) == 4
        assert 0.8 * 400 <= len(database) <= 1.2 * 400
        # Doubling the target ≈ doubles the database.
        _, doubled = cover_game_scaling_workload(800)
        assert 1.6 <= len(doubled) / len(database) <= 2.4


class TestPaperExampleFamilies:
    def test_example2_clique_growth(self):
        query = example2_query(5)
        result = chase(query.canonical_database(), [example2_tgd()])
        graph = gaifman_graph_of_instance(result.instance)
        assert max_clique_lower_bound(graph) >= 5
        assert treewidth_upper_bound(graph) >= 4

    def test_example3_families_scale(self):
        for n in (1, 2, 3):
            tgds = example3_tgds(n)
            assert len(tgds) == n
            assert example3_query(n).predicates() == {Predicate("P0", n + 2)}

    def test_example4_scaled_queries(self):
        for n in (3, 5):
            query = example4_scaled_query(n)
            assert query.is_acyclic()
            result, _ = egd_chase_query(query, [example4_key()])
            assert not is_acyclic_instance(result.instance)

    def test_example5_ring_growth(self):
        for n in (3, 6):
            query = example5_ring_query(n)
            assert query.is_acyclic()
            result, _ = egd_chase_query(query, example5_keys())
            assert not is_acyclic_instance(result.instance)

    def test_example4_key_is_not_k2_schema_compatible(self):
        # The Example 4/5 constructions need a predicate of arity ≥ 3, in
        # contrast with the K2 positive result.
        assert example4_query().schema().max_arity == 3
        assert example5_ring_query(3).schema().max_arity == 4
