"""Streaming answer enumeration: differential equality and bounded work.

The streaming entry points (:func:`repro.evaluation.evaluate_iter`,
:meth:`YannakakisEvaluator.iter_answers`, :func:`iter_with_plan`,
:meth:`BatchEvaluator.evaluate_iter`) promise two things:

1. **Same answers** — for every route (Yannakakis / reformulation-under-tgds
   / plan) the set of streamed tuples equals the materialising evaluation,
   no tuple is yielded twice, and ``limit=k`` yields exactly
   ``min(k, |q(D)|)`` distinct answers.  Checked here with hypothesis over
   randomized workloads including constants and repeated head variables.

2. **Bounded work** — the first answer is produced without touching all
   buckets, and ``boolean()`` on a satisfiable query stops after one
   answer.  Checked with the deterministic bucket-probe counters of
   :class:`repro.evaluation.relation.Partition` (``.get`` probes), not with
   wall clocks.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.workloads import randomized_acyclic_workload, randomized_cyclic_workload
from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    BatchEvaluator,
    NotSemanticallyAcyclic,
    ScanCache,
    SemAcEvaluation,
    YannakakisEvaluator,
    evaluate_generic,
    evaluate_iter,
    evaluate_via_reformulation,
    evaluate_with_plan,
    iter_with_plan,
)
from repro.evaluation.relation import Partition
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import (
    shared_predicate_batch_workload,
    wide_output_workload,
)
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    guarded_triangle_example,
)
from repro.workloads import music_store_database


# ----------------------------------------------------------------------
# Differential: Yannakakis route
# ----------------------------------------------------------------------
def _assert_streams_like_sets(query, database, seed: int) -> None:
    try:
        evaluator = YannakakisEvaluator(query)
    except AcyclicityRequired:
        # Constant injection can, in rare corners, make the variable
        # hypergraph cyclic; the Yannakakis differential only covers the
        # acyclic domain (the plan route is tested separately).
        return
    expected = evaluate_generic(query, database)
    streamed = list(evaluator.iter_answers(database))
    assert len(streamed) == len(set(streamed)), "a tuple was yielded twice"
    assert set(streamed) == expected
    # evaluate_iter routes acyclic queries to the same streaming phase 4.
    assert set(evaluate_iter(query, database)) == expected
    # The unreduced mode (dead ends possible, memoised) agrees too.
    assert set(evaluator.iter_answers(database, reduce=False)) == expected
    # Boolean short-circuit is consistent with the answer set.
    assert evaluator.boolean(database) == bool(expected)
    # limit= yields exactly min(k, |answers|) distinct answers.
    k = random.Random(seed).randint(0, 4)
    limited = list(evaluator.iter_answers(database, limit=k))
    assert len(limited) == min(k, len(expected))
    assert len(set(limited)) == len(limited)
    assert set(limited) <= expected


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_streaming_agrees_on_randomized_acyclic_workloads(seed):
    query, database = randomized_acyclic_workload(seed)
    _assert_streams_like_sets(query, database, seed)


@pytest.mark.parametrize("seed", range(25))
def test_streaming_agrees_on_seeded_grid(seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    query, database = randomized_acyclic_workload(seed * 4507)
    _assert_streams_like_sets(query, database, seed)


# ----------------------------------------------------------------------
# Differential: plan route (cyclic queries)
# ----------------------------------------------------------------------
def _assert_plan_route_streams(query, database, seed: int) -> None:
    expected = evaluate_with_plan(query, database)
    assert expected == evaluate_generic(query, database)
    streamed = list(evaluate_iter(query, database, engine="plan"))
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == expected
    # Cyclic queries fall back to the plan route under engine="auto" too.
    assert set(evaluate_iter(query, database)) == expected
    k = random.Random(seed).randint(0, 4)
    limited = list(evaluate_iter(query, database, engine="plan", limit=k))
    assert len(limited) == min(k, len(expected))
    assert set(limited) <= expected


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_streaming_agrees_on_randomized_cyclic_workloads(seed):
    query, database = randomized_cyclic_workload(seed)
    _assert_plan_route_streams(query, database, seed)


@pytest.mark.parametrize("seed", range(15))
def test_plan_streaming_agrees_on_seeded_grid(seed):
    query, database = randomized_cyclic_workload(seed * 7211)
    _assert_plan_route_streams(query, database, seed)


# ----------------------------------------------------------------------
# Differential: reformulation route (Proposition 24)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", range(4))
def test_reformulation_streaming_on_satisfying_databases(seed):
    """engine="reformulation" streams q'(D) = q(D) on databases ⊨ Σ."""
    from repro.chase import chase
    from repro.workloads.generators import random_database

    query, tgds = guarded_triangle_example()
    assert not query.is_acyclic()
    base = random_database(
        seed=seed, schema=query.schema(), facts_per_predicate=8, domain_size=5
    )
    result = chase(base, tgds, max_steps=10_000)
    assert result.terminated
    database = Database()
    database.add_all(result.instance)

    expected = evaluate_generic(query, database)
    streamed = list(evaluate_iter(query, database, tgds=tgds, engine="reformulation"))
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == expected
    # auto routes through the reformulation as well (the query is cyclic).
    assert set(evaluate_iter(query, database, tgds=tgds)) == expected
    for k in (0, 1, 3):
        limited = list(
            evaluate_iter(query, database, tgds=tgds, engine="reformulation", limit=k)
        )
        assert len(limited) == min(k, len(expected))
        assert set(limited) <= expected


def test_semac_evaluation_iter_answers_matches_evaluate():
    query = example1_query()
    tgd = example1_tgd()
    database = music_store_database(seed=11, customers=10, records=12, styles=4)
    answers = evaluate_via_reformulation(query, [tgd], database)

    from repro.core.semantic_acyclicity import find_acyclic_reformulation_tgds

    reformulation = find_acyclic_reformulation_tgds(query, [tgd])
    evaluation = SemAcEvaluation.from_reformulation(query, reformulation)
    streamed = list(evaluation.iter_answers(database))
    assert len(streamed) == len(set(streamed))
    assert set(streamed) == answers
    assert len(list(evaluation.iter_answers(database, limit=2))) == min(2, len(answers))


# ----------------------------------------------------------------------
# Routing and API corners
# ----------------------------------------------------------------------
def test_unknown_streaming_engine_is_rejected():
    with pytest.raises(ValueError):
        evaluate_iter(ConjunctiveQuery((), []), Database(), engine="warp")


def test_yannakakis_engine_refuses_cyclic_queries():
    query, database = randomized_cyclic_workload(0)
    with pytest.raises(AcyclicityRequired):
        evaluate_iter(query, database, engine="yannakakis")


def test_reformulation_engine_requires_a_reformulation():
    query = example1_query()  # cyclic; no tgds supplied
    with pytest.raises(NotSemanticallyAcyclic):
        evaluate_iter(query, music_store_database(seed=1), engine="reformulation")


def test_nullary_query_streams_one_empty_answer():
    empty_body = ConjunctiveQuery((), [], name="nullary")
    assert list(evaluate_iter(empty_body, Database(), engine="plan")) == [()]
    assert list(iter_with_plan(empty_body, Database())) == [()]


def test_streaming_empty_results():
    E = Predicate("E", 2)
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery((x,), [Atom(E, (x, y))])
    assert list(evaluate_iter(query, Database())) == []
    assert list(evaluate_iter(query, Database(), engine="plan")) == []


def test_streaming_preserves_repeated_head_variables():
    E = Predicate("E", 2)
    database = Database([Atom(E, (Constant("a"), Constant("b")))])
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery((x, x, y), [Atom(E, (x, y))])
    expected = {(Constant("a"), Constant("a"), Constant("b"))}
    assert set(evaluate_iter(query, database)) == expected
    assert set(evaluate_iter(query, database, engine="plan")) == expected


def test_limit_zero_and_negative_yield_nothing():
    query, database = wide_output_workload(2, width=4)
    assert list(evaluate_iter(query, database, limit=0)) == []
    assert list(evaluate_iter(query, database, limit=-3)) == []


# ----------------------------------------------------------------------
# Batch streaming: per-query generators over one shared cache
# ----------------------------------------------------------------------
def test_batch_evaluate_iter_matches_evaluate():
    queries, database = shared_predicate_batch_workload(10, size=200, seed=3)
    batch = BatchEvaluator(queries)
    expected = batch.evaluate(database)
    cache = ScanCache(database)
    results = [list(stream) for stream in batch.evaluate_iter(database, scans=cache)]
    for streamed, answers in zip(results, expected):
        assert len(streamed) == len(set(streamed))
        assert set(streamed) == answers
    # All generators drew their phase-1 scans from the one shared cache
    # (at most one derived + one base build per distinct signature, vs one
    # serve per query atom).
    assert cache.served >= len(queries)
    assert cache.built <= cache.served + 6


def test_batch_evaluate_iter_mixed_routes_and_limit():
    """One batch exercising all three routes through the streaming face."""
    cyclic_query, tgds = guarded_triangle_example()
    acyclic_probe = ConjunctiveQuery(
        (Variable("px"),),
        [Atom(cyclic_query.body[0].predicate, (Variable("px"), Variable("py")))],
        name="probe",
    )
    # A triangle over a predicate the tgds never mention: no reformulation
    # exists, so the batch must fall back to the (block-streamed) plan.
    T = Predicate("StreamT", 2)
    triangle = ConjunctiveQuery(
        (Variable("a"),),
        [
            Atom(T, (Variable("a"), Variable("b"))),
            Atom(T, (Variable("b"), Variable("c"))),
            Atom(T, (Variable("c"), Variable("a"))),
        ],
        name="triangle",
    )
    from repro.chase import chase
    from repro.workloads.generators import random_database

    base = random_database(
        seed=5, schema=cyclic_query.schema(), facts_per_predicate=8, domain_size=5
    )
    result = chase(base, tgds, max_steps=10_000)
    assert result.terminated
    database = Database()
    database.add_all(result.instance)
    rng = random.Random(5)
    nodes = [Constant(f"t{i}") for i in range(5)]
    for _ in range(18):
        database.add(Atom(T, (rng.choice(nodes), rng.choice(nodes))))

    batch = BatchEvaluator([cyclic_query, acyclic_probe, triangle], tgds=tgds)
    assert batch.routes() == ["reformulated", "yannakakis", "decomposition"]
    expected = batch.evaluate(database)
    results = [list(stream) for stream in batch.evaluate_iter(database)]
    assert [set(streamed) for streamed in results] == expected

    limited = [list(stream) for stream in batch.evaluate_iter(database, limit=2)]
    for streamed, answers in zip(limited, expected):
        assert len(streamed) == min(2, len(answers))
        assert set(streamed) <= answers


def test_batch_evaluate_iter_generators_interleave():
    queries, database = shared_predicate_batch_workload(6, size=150, seed=7)
    batch = BatchEvaluator(queries)
    expected = batch.evaluate(database)
    streams = batch.evaluate_iter(database)
    collected = [[] for _ in streams]
    # Round-robin consumption: one answer from each live generator per turn.
    live = list(range(len(streams)))
    while live:
        for index in list(live):
            try:
                collected[index].append(next(streams[index]))
            except StopIteration:
                live.remove(index)
    for streamed, answers in zip(collected, expected):
        assert set(streamed) == answers
        assert len(streamed) == len(answers)


# ----------------------------------------------------------------------
# Bounded work: counter-instrumented bucket probes
# ----------------------------------------------------------------------
def _probes(run):
    before = Partition.total_probes
    result = run()
    return result, Partition.total_probes - before


def test_first_answer_is_produced_without_touching_all_buckets():
    """The probes before the first streamed answer are O(join-tree) —
    identical across widths — while the materialising phase 4 probes grow
    with the data."""
    first_probes = []
    for width in (20, 80):
        query, database = wide_output_workload(3, width=width, seed=1)
        evaluator = YannakakisEvaluator(query)
        answer, probes = _probes(lambda: next(evaluator.iter_answers(database)))
        assert answer in evaluator.evaluate(database)
        assert probes <= 6, f"first answer touched {probes} buckets"
        first_probes.append(probes)
        _, materialise_probes = _probes(lambda: evaluator.evaluate(database))
        assert materialise_probes >= width
    assert first_probes[0] == first_probes[1], "first-answer work grew with width"


def test_limited_enumeration_probes_scale_with_limit_not_output():
    """On the layered chain the probe keys differ per answer (no memo
    sharing), so the probe count is a faithful work meter: a limited run
    must probe far fewer buckets than a full enumeration."""
    from repro.workloads.generators import yannakakis_scaling_workload

    query, database = yannakakis_scaling_workload(600, seed=2)
    evaluator = YannakakisEvaluator(query)
    answers = evaluator.evaluate(database)
    assert len(answers) > 40
    _, probes_5 = _probes(lambda: list(evaluator.iter_answers(database, limit=5)))
    _, probes_all = _probes(lambda: list(evaluator.iter_answers(database)))
    assert probes_5 * 4 <= probes_all


def test_boolean_stops_after_one_answer():
    """On a satisfiable query boolean() must not run the semi-join passes to
    completion: with decoy-free data its probe count is the witness path —
    constant in the width — and far below one full enumeration."""
    boolean_probes = []
    for width in (20, 80):
        query, database = wide_output_workload(3, width=width, decoys=0, seed=0)
        evaluator = YannakakisEvaluator(query)
        satisfied, probes = _probes(lambda: evaluator.boolean(database))
        assert satisfied is True
        assert probes <= 6, f"boolean touched {probes} buckets"
        boolean_probes.append(probes)
        # The materialising path, by contrast, probes per joined row.
        _, materialise_probes = _probes(lambda: evaluator.evaluate(database))
        assert probes * 4 <= materialise_probes
    assert boolean_probes[0] == boolean_probes[1], "boolean work grew with width"


def test_boolean_is_still_correct_on_unsatisfiable_queries():
    E = Predicate("E", 2)
    database = Database(
        [Atom(E, (Constant("a"), Constant("b"))), Atom(E, (Constant("b"), Constant("c")))]
    )
    x = Variable("x")
    loop = ConjunctiveQuery((), [Atom(E, (x, x))], name="loop")
    assert YannakakisEvaluator(loop).boolean(database) is False
    y, z = Variable("y"), Variable("z")
    path3 = ConjunctiveQuery(
        (), [Atom(E, (x, y)), Atom(E, (y, z)), Atom(E, (z, Variable("w")))]
    )
    assert YannakakisEvaluator(path3).boolean(database) is False
