"""Failure-injection tests: budgets, unsatisfiable inputs and error paths.

The library is explicit about resource budgets (chase steps, rewriting size,
candidate counts) and about invalid inputs; these tests pin down the error
contracts so that callers can rely on them.
"""

import pytest

from repro.chase import ChaseBudgetExceeded, EGDChaseFailure, chase, egd_chase
from repro.containment import (
    ContainmentConfig,
    ContainmentOutcome,
    contained_under_tgds,
)
from repro.core import SemAcConfig, decide_semantic_acyclicity_tgds
from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.dependencies import TGD
from repro.dependencies.fd import FunctionalDependency, key
from repro.evaluation import AcyclicityRequired, YannakakisEvaluator
from repro.evaluation.semacyclic_eval import NotSemanticallyAcyclic, evaluate_via_reformulation
from repro.hypergraph import JoinTreeError, build_join_tree, treewidth_exact
from repro.parser import ParseError, parse_atom, parse_egd, parse_query, parse_tgd
from repro.rewriting import RewritingBudgetExceeded, RewritingConfig, rewrite


E = Predicate("E", 2)


def diverging_tgds():
    return [parse_tgd("E(x, y) -> E(y, z)", label="diverge")]


def seed_database():
    return Database([Atom(E, (Constant("a"), Constant("b")))])


class TestChaseBudgets:
    def test_budget_exhaustion_returns_truncated_result_by_default(self):
        result = chase(seed_database(), diverging_tgds(), max_steps=3)
        assert not result.terminated
        assert result.budget_exhausted
        assert len(result.instance) == 1 + 3

    def test_budget_exhaustion_can_raise(self):
        with pytest.raises(ChaseBudgetExceeded):
            chase(seed_database(), diverging_tgds(), max_steps=3, on_budget="raise")

    def test_depth_budget_marks_result_incomplete(self):
        result = chase(seed_database(), diverging_tgds(), max_depth=2)
        assert result.budget_exhausted
        assert not result.terminated
        assert result.max_depth() <= 2

    def test_unknown_chase_variant_is_rejected(self):
        with pytest.raises(ValueError):
            chase(seed_database(), diverging_tgds(), variant="lazy")

    def test_truncated_chase_is_still_a_sound_underapproximation(self):
        truncated = chase(seed_database(), diverging_tgds(), max_steps=4)
        longer = chase(seed_database(), diverging_tgds(), max_steps=8)
        # Atom counts grow monotonically with the budget.
        assert len(truncated.instance) <= len(longer.instance)


class TestEgdChaseFailures:
    def test_constant_clash_raises_by_default(self):
        database = Database(
            [
                Atom(E, (Constant("a"), Constant("b"))),
                Atom(E, (Constant("a"), Constant("c"))),
            ]
        )
        egd = parse_egd("E(x, y), E(x, z) -> y = z")
        with pytest.raises(EGDChaseFailure):
            egd_chase(database, [egd])

    def test_constant_clash_can_be_returned(self):
        database = Database(
            [
                Atom(E, (Constant("a"), Constant("b"))),
                Atom(E, (Constant("a"), Constant("c"))),
            ]
        )
        egd = parse_egd("E(x, y), E(x, z) -> y = z")
        result = egd_chase(database, [egd], on_failure="return")
        assert result.failed


class TestContainmentBudgets:
    def test_unknown_outcome_when_budget_too_small(self):
        left = parse_query("E(x, y)")
        right = parse_query("E(x, y), S(y, z)")
        outcome = contained_under_tgds(
            left, right, diverging_tgds(), ContainmentConfig(max_steps=3)
        )
        assert outcome is ContainmentOutcome.UNKNOWN

    def test_positive_containment_found_on_a_prefix(self):
        # The witness appears after two chase steps, far below the budget, so
        # the incremental check answers TRUE without chasing to the budget.
        left = parse_query("E(x, y)")
        right = parse_query("E(x, y), E(y, z), E(z, w)")
        outcome = contained_under_tgds(
            left, right, diverging_tgds(), ContainmentConfig(max_steps=10_000)
        )
        assert outcome is ContainmentOutcome.TRUE

    def test_semac_notes_report_inconclusive_containments(self):
        query = parse_query("E(x, y), E(y, z), E(z, x)")
        config = SemAcConfig(chase_max_steps=3)
        decision = decide_semantic_acyclicity_tgds(query, diverging_tgds(), config)
        assert not decision.semantically_acyclic
        assert not decision.exhaustive
        assert decision.notes


class TestRewritingBudgets:
    def test_rewriting_budget_exceeded(self):
        tgds = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("B(x, y) -> C(x, y)", label="bc"),
            parse_tgd("C(x, y) -> D(x, y)", label="cd"),
        ]
        query = parse_query("D(x, y), D(y, z), D(z, w)")
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(query, tgds, RewritingConfig(max_disjuncts=2))

    def test_round_budget(self):
        tgds = [parse_tgd("A(x, y) -> B(x, y)", label="ab")]
        query = parse_query("B(x, y)")
        with pytest.raises(RewritingBudgetExceeded):
            rewrite(query, tgds, RewritingConfig(max_rounds=0))


class TestEvaluatorErrors:
    def test_yannakakis_requires_acyclicity(self, triangle_query):
        with pytest.raises(AcyclicityRequired):
            YannakakisEvaluator(triangle_query)

    def test_join_tree_requires_acyclicity(self, triangle_query):
        with pytest.raises(JoinTreeError):
            build_join_tree(triangle_query.body)

    def test_reformulation_evaluator_rejects_non_semacyclic_queries(self, triangle_query):
        database = Database([Atom(E, (Constant("a"), Constant("a")))])
        with pytest.raises(NotSemanticallyAcyclic):
            evaluate_via_reformulation(triangle_query, [], database)

    def test_exact_treewidth_guard(self):
        graph = {i: {j for j in range(20) if j != i} for i in range(20)}
        with pytest.raises(ValueError):
            treewidth_exact(graph, max_vertices=12)


class TestInvalidInputs:
    def test_parser_rejects_malformed_atoms(self):
        for text in ("R(x", "R x, y)", "R(x,)", "1R(x)"):
            with pytest.raises(ParseError):
                parse_atom(text)

    def test_parser_rejects_malformed_dependencies(self):
        with pytest.raises(ParseError):
            parse_tgd("A(x) B(x)")
        with pytest.raises(ParseError):
            parse_egd("A(x, y) -> x")
        with pytest.raises(ParseError):
            parse_egd("A(x, y) -> x = 'c'")

    def test_query_head_must_be_safe(self):
        with pytest.raises(ValueError):
            parse_query("q(z) :- E(x, y)")

    def test_atoms_validate_arity(self):
        with pytest.raises(ValueError):
            Atom(E, (Variable("x"),))

    def test_predicates_validate_arity(self):
        with pytest.raises(ValueError):
            Predicate("R", -1)

    def test_instances_reject_non_ground_atoms(self):
        with pytest.raises(ValueError):
            Instance([Atom(E, (Variable("x"), Constant("a")))])

    def test_tgds_need_body_and_head(self):
        with pytest.raises(ValueError):
            TGD([], [Atom(E, (Variable("x"), Variable("y")))])
        with pytest.raises(ValueError):
            TGD([Atom(E, (Variable("x"), Variable("y")))], [])

    def test_fd_positions_validated(self):
        with pytest.raises(ValueError):
            FunctionalDependency.of(E, {1}, {5})
        with pytest.raises(ValueError):
            FunctionalDependency.of(E, set(), {2})
        with pytest.raises(ValueError):
            key(E, {1, 2})
