"""Tests for hypergraphs, GYO reduction, join trees and the Lemma 9 construction."""

import pytest

from repro.datamodel import Atom, Constant, Instance, Null, Predicate, Variable, freeze_variable
from repro.hypergraph import (
    JoinTreeError,
    build_join_tree,
    compact_acyclic_query,
    gyo_reduction,
    hypergraph_of_instance,
    hypergraph_of_query_atoms,
    instance_connectors,
    is_acyclic_atoms,
    is_acyclic_instance,
    is_valid_join_tree,
    join_tree_of_instance,
    join_tree_of_query_atoms,
    query_connectors,
)
from repro.parser import parse_query
from repro.queries import contained_in


E = Predicate("E", 2)
S = Predicate("S", 3)


class TestConnectorPolicies:
    def test_query_connectors(self):
        assert query_connectors(Variable("x"))
        assert query_connectors(Null("n"))
        assert not query_connectors(Constant("a"))

    def test_instance_connectors(self):
        assert instance_connectors(Null("n"))
        assert instance_connectors(freeze_variable(Variable("x")))
        assert not instance_connectors(Constant("a"))

    def test_hypergraph_edges_mirror_atoms(self):
        query = parse_query("E(x, y), S(x, y, z)")
        hypergraph = hypergraph_of_query_atoms(query.body)
        assert len(hypergraph) == 2
        assert hypergraph.vertices() == {Variable("x"), Variable("y"), Variable("z")}


class TestGYO:
    def test_path_is_acyclic(self):
        query = parse_query("E(x, y), E(y, z), E(z, w)")
        assert is_acyclic_atoms(query.body)

    def test_triangle_is_cyclic(self, triangle_query):
        assert not is_acyclic_atoms(triangle_query.body)

    def test_covered_triangle_is_acyclic(self):
        query = parse_query("E(x, y), E(y, z), E(z, x), S(x, y, z)")
        assert is_acyclic_atoms(query.body)

    def test_star_is_acyclic(self):
        query = parse_query("E(c, a), E(c, b), E(c, d)")
        assert is_acyclic_atoms(query.body)

    def test_square_is_cyclic(self):
        query = parse_query("E(a, b), E(b, c), E(c, d), E(d, a)")
        assert not is_acyclic_atoms(query.body)

    def test_disconnected_acyclic_components(self):
        query = parse_query("E(x, y), E(u, v)")
        assert is_acyclic_atoms(query.body)

    def test_constants_do_not_create_cycles(self):
        # A "triangle" through a constant is not a cycle of the query hypergraph.
        query = parse_query("E(x, 'c'), E('c', y), E(y, x)")
        assert is_acyclic_atoms(query.body)

    def test_instance_acyclicity_uses_nulls(self):
        cyclic = Instance(
            [
                Atom(E, (Null("a"), Null("b"))),
                Atom(E, (Null("b"), Null("c"))),
                Atom(E, (Null("c"), Null("a"))),
            ]
        )
        acyclic_with_constants = Instance(
            [
                Atom(E, (Constant("a"), Constant("b"))),
                Atom(E, (Constant("b"), Constant("c"))),
                Atom(E, (Constant("c"), Constant("a"))),
            ]
        )
        assert not is_acyclic_instance(cyclic)
        assert is_acyclic_instance(acyclic_with_constants)

    def test_gyo_reports_parents_for_acyclic_inputs(self):
        query = parse_query("E(x, y), E(y, z)")
        result = gyo_reduction(hypergraph_of_query_atoms(query.body))
        assert result.acyclic
        assert len(result.roots) == 1
        assert len(result.parents) == 1


class TestJoinTrees:
    def test_join_tree_of_acyclic_query(self, path3_query):
        tree = join_tree_of_query_atoms(path3_query.body)
        assert len(tree) == 3
        assert is_valid_join_tree(tree, path3_query.body, query_connectors)

    def test_join_tree_rejects_cyclic_query(self, triangle_query):
        with pytest.raises(JoinTreeError):
            join_tree_of_query_atoms(triangle_query.body)

    def test_join_tree_of_star(self):
        query = parse_query("E(c, a), E(c, b), E(c, d), E(c, e)")
        tree = join_tree_of_query_atoms(query.body)
        assert is_valid_join_tree(tree, query.body, query_connectors)

    def test_join_tree_of_disconnected_query(self):
        query = parse_query("E(x, y), E(u, v), E(v, w)")
        tree = join_tree_of_query_atoms(query.body)
        assert len(tree) == 3
        assert is_valid_join_tree(tree, query.body, query_connectors)

    def test_join_tree_navigation(self):
        query = parse_query("E(x, y), E(y, z), E(z, w), E(z, u)")
        tree = join_tree_of_query_atoms(query.body)
        root = tree.root
        assert tree.parent(root) is None
        bottom_up = tree.bottom_up_order()
        assert bottom_up[-1] == root
        for identifier in tree.node_ids():
            for child in tree.children(identifier):
                assert tree.parent(child) == identifier
        leaves = tree.leaves()
        assert leaves
        # The path between two leaves passes through their common ancestor.
        if len(leaves) >= 2:
            path = tree.path(leaves[0], leaves[1])
            assert path[0] == leaves[0] and path[-1] == leaves[1]

    def test_join_tree_of_instance_with_frozen_constants(self):
        query = parse_query("E(x, y), E(y, z)")
        database = query.canonical_database()
        tree = join_tree_of_instance(database)
        assert is_valid_join_tree(tree, database, instance_connectors)

    def test_empty_input_rejected(self):
        with pytest.raises(JoinTreeError):
            build_join_tree([])


class TestCompactAcyclicQuery:
    def test_lemma9_on_a_long_path(self):
        # q asks for a single edge; the instance is a long frozen path.  The
        # compact query must contain the image, be acyclic, small, and
        # contained in q.
        query = parse_query("E(x, y)")
        path = parse_query("E(a, b), E(b, c), E(c, d), E(d, e), E(e, f)")
        instance = path.canonical_database()
        compact = compact_acyclic_query(query, instance)
        assert compact is not None
        assert compact.is_acyclic()
        assert len(compact) <= 2 * len(query)
        assert contained_in(compact, query)

    def test_lemma9_respects_answers(self):
        query = parse_query("q(x) :- E(x, y), E(y, z)")
        path = parse_query("E(a, b), E(b, c), E(c, d)")
        instance = path.canonical_database()
        answer = (freeze_variable(Variable("a")),)
        compact = compact_acyclic_query(query, instance, answer=answer)
        assert compact is not None
        assert len(compact.head) == 1
        assert contained_in(compact, query)

    def test_lemma9_returns_none_when_query_does_not_hold(self):
        query = parse_query("E(x, x)")
        path = parse_query("E(a, b), E(b, c)")
        compact = compact_acyclic_query(query, path.canonical_database())
        assert compact is None

    def test_lemma9_size_bound_on_branching_instances(self):
        # A star instance with many rays: the compact query stays within 2|q|.
        query = parse_query("E(x, y), E(x, z)")
        star = parse_query(
            "E(c, a1), E(c, a2), E(c, a3), E(c, a4), E(c, a5), E(c, a6)"
        )
        compact = compact_acyclic_query(query, star.canonical_database())
        assert compact is not None
        assert len(compact) <= 2 * len(query)
        assert contained_in(compact, query)
