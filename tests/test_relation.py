"""Unit tests for the hash-based relation engine (repro.evaluation.relation)."""

import pytest

from repro.datamodel import Atom, Constant, Database, Null, Predicate, Variable
from repro.evaluation import Relation, SchemaError


E = Predicate("E", 2)
T = Predicate("T", 3)
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b, c, d = Constant("a"), Constant("b"), Constant("c"), Constant("d")


def edge_db(*edges):
    database = Database()
    for source, target in edges:
        database.add(Atom(E, (Constant(source), Constant(target))))
    return database


class TestConstruction:
    def test_schema_must_be_duplicate_free(self):
        with pytest.raises(SchemaError):
            Relation((x, x), [])

    def test_unit_is_the_join_identity(self):
        unit = Relation.unit()
        other = Relation((x,), [(a,), (b,)])
        assert unit.join(other) == other
        assert other.join(unit) == other

    def test_empty_relation_is_falsy(self):
        assert not Relation.empty((x,))
        assert Relation.empty((x,)).is_empty()
        assert Relation((x,), [(a,)])

    def test_from_atom_materialises_matching_facts(self):
        relation = Relation.from_atom(Atom(E, (x, y)), edge_db(("a", "b"), ("c", "d")))
        assert relation.schema == (x, y)
        assert set(relation.rows) == {(a, b), (c, d)}

    def test_from_atom_applies_constant_selections(self):
        relation = Relation.from_atom(Atom(E, (x, b)), edge_db(("a", "b"), ("c", "d")))
        assert relation.schema == (x,)
        assert set(relation.rows) == {(a,)}

    def test_from_atom_applies_repeated_variable_selections(self):
        relation = Relation.from_atom(Atom(E, (x, x)), edge_db(("a", "a"), ("a", "b")))
        assert relation.schema == (x,)
        assert set(relation.rows) == {(a,)}

    def test_from_atom_on_ternary_atom_with_mixed_terms(self):
        database = Database(
            [
                Atom(T, (a, b, a)),
                Atom(T, (a, b, c)),
                Atom(T, (b, b, b)),
            ]
        )
        relation = Relation.from_atom(Atom(T, (x, b, x)), database)
        assert relation.schema == (x,)
        assert set(relation.rows) == {(a,), (b,)}

    def test_from_atom_with_all_constants(self):
        database = edge_db(("a", "b"))
        assert len(Relation.from_atom(Atom(E, (a, b)), database)) == 1
        assert Relation.from_atom(Atom(E, (a, c)), database).is_empty()


class TestOperators:
    def test_semijoin_keeps_matching_rows_only(self):
        left = Relation((x, y), [(a, b), (b, c), (c, d)])
        right = Relation((y, z), [(b, a), (d, a)])
        result = left.semijoin(right)
        assert result.schema == (x, y)
        assert set(result.rows) == {(a, b), (c, d)}

    def test_semijoin_without_shared_variables_is_all_or_nothing(self):
        left = Relation((x,), [(a,), (b,)])
        assert left.semijoin(Relation((z,), [(c,)])) == left
        assert left.semijoin(Relation.empty((z,))).is_empty()

    def test_semijoin_alignment_is_by_name_not_position(self):
        left = Relation((x, y), [(a, b)])
        right = Relation((z, y, x), [(c, b, a), (c, a, b)])
        assert set(left.semijoin(right).rows) == {(a, b)}

    def test_join_combines_on_shared_variables(self):
        left = Relation((x, y), [(a, b), (b, c)])
        right = Relation((y, z), [(b, d), (b, a), (c, d)])
        result = left.join(right)
        assert result.schema == (x, y, z)
        assert set(result.rows) == {(a, b, d), (a, b, a), (b, c, d)}

    def test_join_without_shared_variables_is_cross_product(self):
        left = Relation((x,), [(a,), (b,)])
        right = Relation((y,), [(c,)])
        assert set(left.join(right).rows) == {(a, c), (b, c)}

    def test_join_with_identical_schema_is_intersection(self):
        left = Relation((x, y), [(a, b), (b, c)])
        right = Relation((x, y), [(a, b), (c, d)])
        assert set(left.join(right).rows) == {(a, b)}

    def test_project_deduplicates(self):
        relation = Relation((x, y), [(a, b), (a, c), (b, c)])
        result = relation.project((x,))
        assert result.schema == (x,)
        assert sorted(result.rows) == [(a,), (b,)]

    def test_project_reorders_columns(self):
        relation = Relation((x, y), [(a, b)])
        assert Relation((y, x), [(b, a)]) == relation.project((y, x))

    def test_project_rejects_unknown_variables(self):
        with pytest.raises(SchemaError):
            Relation((x,), [(a,)]).project((y,))

    def test_select_filters_on_bindings(self):
        relation = Relation((x, y), [(a, b), (a, c), (b, c)])
        assert set(relation.select({x: a}).rows) == {(a, b), (a, c)}
        assert set(relation.select({x: a, y: c}).rows) == {(a, c)}
        # Variables outside the schema cannot disagree.
        assert relation.select({z: d}) == relation

    def test_select_equal_compares_columns(self):
        relation = Relation((x, y), [(a, a), (a, b)])
        assert set(relation.select_equal(x, y).rows) == {(a, a)}

    def test_rename_changes_schema_only(self):
        relation = Relation((x, y), [(a, b)])
        renamed = relation.rename({x: z})
        assert renamed.schema == (z, y)
        assert renamed.rows == relation.rows

    def test_distinct_removes_duplicate_rows(self):
        relation = Relation((x,), [(a,), (a,), (b,)])
        assert sorted(relation.distinct().rows) == [(a,), (b,)]


class TestNoAliasing:
    """Operator outputs never share a ``rows`` list with their operands —
    mutating a result must not corrupt an input (regression for the
    degenerate ``semijoin``/``select`` paths that returned ``self``)."""

    def test_degenerate_semijoin_returns_a_fresh_relation(self):
        left = Relation((x,), [(a,), (b,)])
        right = Relation((z,), [(c,)])  # no shared variables, non-empty
        result = left.semijoin(right)
        assert result == left
        assert result is not left
        assert result.rows is not left.rows
        result.rows.append((d,))
        assert left.rows == [(a,), (b,)]

    def test_degenerate_semijoin_against_empty_is_a_fresh_empty_relation(self):
        left = Relation((x,), [(a,)])
        result = left.semijoin(Relation.empty((z,)))
        assert result.is_empty()
        result.rows.append((b,))
        assert left.rows == [(a,)]

    def test_select_with_no_applicable_checks_returns_a_fresh_relation(self):
        relation = Relation((x, y), [(a, b)])
        for binding in ({}, {z: c}):  # empty, and entirely outside the schema
            result = relation.select(binding)
            assert result == relation
            assert result is not relation
            assert result.rows is not relation.rows
            result.rows.clear()
            assert relation.rows == [(a, b)]


class TestAnswers:
    def test_answer_tuples_supports_repeated_head_variables(self):
        relation = Relation((x, y), [(a, b)])
        assert relation.answer_tuples((x, x, y)) == {(a, a, b)}

    def test_answer_tuples_of_nullary_relation(self):
        assert Relation.unit().answer_tuples(()) == {()}
        assert Relation.empty().answer_tuples(()) == set()

    def test_assignments_round_trip(self):
        relation = Relation((x, y), [(a, b)])
        assert list(relation.assignments()) == [{x: a, y: b}]


class TestTermIdentity:
    def test_constants_and_nulls_with_equal_strings_stay_distinct(self):
        """str(Constant(1)) == str(Constant("1")) — hashing must not conflate them."""
        one_int, one_str = Constant(1), Constant("1")
        relation = Relation((x,), [(one_int,), (one_str,), (Null("1"),)])
        assert len(relation.project((x,))) == 3
        other = Relation((x, y), [(one_int, a)])
        assert set(relation.semijoin(other).rows) == {(one_int,)}
