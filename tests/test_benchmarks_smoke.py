"""Smoke-run the benchmark suite at tiny sizes from the tier-1 test run.

The files under ``benchmarks/`` are not collected by plain ``pytest`` (they
are named ``bench_*.py``), so an import error or a stale API use in a
benchmark would only surface at the next explicit benchmark run.  This
module imports every benchmark with ``BENCH_SMOKE=1`` (see
``benchmarks/conftest.py``) and executes the scaling benchmark's measurement
loop at toy sizes, keeping the whole check well under a second.
"""

import importlib.util
import os
import sys
from pathlib import Path

import pytest


BENCHMARKS_DIR = Path(__file__).resolve().parent.parent / "benchmarks"
BENCHMARK_FILES = sorted(p.name for p in BENCHMARKS_DIR.glob("bench_*.py"))


def _load_module(path: Path, name: str):
    spec = importlib.util.spec_from_file_location(name, path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    try:
        spec.loader.exec_module(module)
    except BaseException:
        # Never leave a half-initialised module registered (later imports
        # of e.g. "conftest" would pick up the broken one).
        sys.modules.pop(name, None)
        raise
    return module


@pytest.fixture
def smoke_benchmarks(monkeypatch):
    """Import machinery for the benchmark modules, in smoke mode.

    The benchmark modules do ``from conftest import ...`` expecting
    *their* conftest; pytest may already hold a different module under that
    name, so the benchmarks' conftest is loaded explicitly and temporarily
    installed as ``conftest``.
    """
    monkeypatch.setenv("BENCH_SMOKE", "1")
    monkeypatch.syspath_prepend(str(BENCHMARKS_DIR))
    saved = sys.modules.get("conftest")
    _load_module(BENCHMARKS_DIR / "conftest.py", "conftest")

    loaded = []

    def load(filename: str):
        name = f"_bench_smoke_{filename[:-3]}"
        module = _load_module(BENCHMARKS_DIR / filename, name)
        loaded.append(name)
        return module

    try:
        yield load
    finally:
        for name in loaded:
            sys.modules.pop(name, None)
        if saved is not None:
            sys.modules["conftest"] = saved
        else:
            sys.modules.pop("conftest", None)


def test_benchmark_directory_is_nonempty():
    assert "bench_yannakakis_scaling.py" in BENCHMARK_FILES


@pytest.mark.parametrize("filename", BENCHMARK_FILES)
def test_benchmark_module_imports(filename, smoke_benchmarks):
    """Every benchmark module must import cleanly (smoke sizes applied)."""
    module = smoke_benchmarks(filename)
    assert module is not None


def test_scaling_benchmark_runs_at_smoke_sizes(smoke_benchmarks):
    """Execute the scaling measurement loop end to end on toy inputs."""
    module = smoke_benchmarks("bench_yannakakis_scaling.py")
    assert module.SIZES == module.SMOKE_SIZES
    rows = module.run_scaling(sizes=[20, 40], repeats=1)
    assert [row["size"] for row in rows] == sorted(row["size"] for row in rows)
    for row in rows:
        # run_scaling cross-checks hash vs dict answers internally; here we
        # only sanity-check the measurement record.
        assert row["answers"] > 0
        assert row["hash_time"] > 0 and row["dict_time"] > 0


def test_scaling_assertions_are_skipped_in_smoke_mode(smoke_benchmarks):
    """The timing assertions must not fire on noise-dominated tiny inputs."""
    module = smoke_benchmarks("bench_yannakakis_scaling.py")
    module.test_hash_engine_linear_dict_engine_quadratic()


def test_cover_game_scaling_runs_at_smoke_sizes(smoke_benchmarks):
    """Execute the cover-game scaling measurement loop end to end on toys."""
    module = smoke_benchmarks("bench_cover_game_scaling.py")
    assert module.SIZES == module.SMOKE_SIZES
    rows = module.run_scaling(sizes=[30, 60], repeats=1)
    assert [row["size"] for row in rows] == sorted(row["size"] for row in rows)
    for row in rows:
        # The spine guarantees the duplicator wins, and run_scaling
        # cross-checks the probe panel (worklist vs naive vs, at the
        # smallest size, the generic homomorphism oracle) internally.
        assert row["wins"] is True
        assert row["answers_agree"]
        assert row["worklist_time"] > 0 and row["naive_time"] > 0


def test_batch_eval_runs_at_smoke_sizes(smoke_benchmarks):
    """Execute the batched-vs-sequential measurement loop on toy inputs."""
    module = smoke_benchmarks("bench_batch_eval.py")
    assert module.BATCHES == module.SMOKE_BATCHES
    rows = module.run_batches(batch_sizes=[2, 4], size=60, repeats=1)
    assert [row["batch"] for row in rows] == [2, 4]
    for row in rows:
        # run_batches cross-checks batched vs sequential answers internally;
        # here we only sanity-check the measurement record.
        assert row["batched_time"] > 0 and row["sequential_time"] > 0
        assert row["scans_served"] >= row["batch"]
    # The cache never materialises more than one relation per distinct
    # signature plus one base relation per predicate (6 in this workload).
    assert rows[-1]["scans_built"] <= rows[-1]["scans_served"] + 6


def test_batch_eval_assertions_are_skipped_in_smoke_mode(smoke_benchmarks):
    """The timing assertions must not fire on noise-dominated tiny inputs."""
    module = smoke_benchmarks("bench_batch_eval.py")
    module.test_batched_evaluation_amortises_scans()


def test_enumeration_runs_at_smoke_sizes(smoke_benchmarks):
    """Execute the streaming-vs-materialising measurement loop on toys."""
    module = smoke_benchmarks("bench_enumeration.py")
    assert module.RAYS == module.SMOKE_RAYS
    rows = module.run_enumeration(rays_list=[2, 3], width=3, repeats=1)
    assert [row["rays"] for row in rows] == [2, 3]
    for row in rows:
        # run_enumeration cross-checks streamed vs materialised answers and
        # limit= semantics internally; here we sanity-check the record.
        assert row["answers"] == 3 ** row["rays"]
        assert row["materialise_time"] > 0 and row["first_time"] > 0
        assert row["first_probes"] <= 4 * row["rays"]


def test_enumeration_assertions_hold_in_smoke_mode(smoke_benchmarks):
    """Timing assertions are skipped on tiny inputs, but the deterministic
    bucket-probe assertions (first answer touches O(join-tree) buckets)
    still must hold."""
    module = smoke_benchmarks("bench_enumeration.py")
    module.test_streaming_first_answer_flat_materialising_grows()


def test_cover_game_assertions_are_skipped_in_smoke_mode(smoke_benchmarks):
    """The growth-factor assertions must not fire on tiny inputs — but the
    engine-agreement assertions still must."""
    module = smoke_benchmarks("bench_cover_game_scaling.py")
    module.test_worklist_engine_outgrows_naive_engine()
