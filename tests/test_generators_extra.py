"""Tests for the extended workload generators (full / non-recursive / sticky / FDs)."""

import pytest

from repro.datamodel import Predicate, Schema
from repro.dependencies import (
    is_full_set,
    is_k2_set,
    is_non_recursive_set,
    is_sticky_set,
)
from repro.dependencies.fd import all_keys, all_unary, fds_to_egds
from repro.workloads.generators import (
    random_full_tgds,
    random_functional_dependencies,
    random_keys,
    random_non_recursive_tgds,
    random_schema,
    random_sticky_tgds,
)


class TestFullTgdGenerator:
    def test_generated_sets_are_full(self):
        for seed in range(5):
            tgds = random_full_tgds(seed=seed, count=4)
            assert len(tgds) == 4
            assert is_full_set(tgds)

    def test_generation_is_reproducible(self):
        first = random_full_tgds(seed=9, count=3)
        second = random_full_tgds(seed=9, count=3)
        assert [str(t) for t in first] == [str(t) for t in second]

    def test_respects_body_size_cap(self):
        tgds = random_full_tgds(seed=0, count=6, max_body_atoms=1)
        assert all(len(t.body) == 1 for t in tgds)


class TestNonRecursiveGenerator:
    def test_generated_sets_are_non_recursive(self):
        for seed in range(5):
            tgds = random_non_recursive_tgds(seed=seed, count=5)
            assert is_non_recursive_set(tgds)

    def test_rejects_single_predicate_schemas(self):
        schema = Schema([Predicate("Only", 2)])
        with pytest.raises(ValueError):
            random_non_recursive_tgds(seed=0, schema=schema)

    def test_reproducible(self):
        assert [str(t) for t in random_non_recursive_tgds(seed=4)] == [
            str(t) for t in random_non_recursive_tgds(seed=4)
        ]


class TestStickyGenerator:
    def test_generated_sets_are_sticky(self):
        for seed in range(6):
            tgds = random_sticky_tgds(seed=seed, count=3)
            assert len(tgds) == 3
            assert is_sticky_set(tgds)

    def test_fallback_path_still_sticky(self):
        # Even with zero rejection attempts allowed, the fallback linear set
        # must be sticky.
        tgds = random_sticky_tgds(seed=1, count=3, max_attempts=0)
        assert is_sticky_set(tgds)


class TestFdAndKeyGenerators:
    def test_random_fds_are_well_formed(self):
        fds = random_functional_dependencies(seed=2, count=5)
        assert len(fds) == 5
        assert fds_to_egds(fds)  # compiles without error

    def test_unary_only_mode(self):
        fds = random_functional_dependencies(seed=3, count=5, unary_only=True)
        assert all_unary(fds)

    def test_random_fds_need_a_binary_predicate(self):
        schema = Schema([Predicate("U", 1)])
        with pytest.raises(ValueError):
            random_functional_dependencies(seed=0, schema=schema)

    def test_random_keys_are_keys(self):
        keys = random_keys(seed=1)
        assert keys
        assert all_keys(keys)

    def test_random_keys_with_arity_cap_form_a_k2_set(self):
        schema = Schema(
            [Predicate("A", 1), Predicate("B", 2), Predicate("C", 2), Predicate("D", 3)]
        )
        keys = random_keys(seed=5, schema=schema, max_arity=2)
        assert keys
        assert is_k2_set(keys)
        assert all(fd.predicate.arity <= 2 for fd in keys)

    def test_reproducibility(self):
        assert [str(f) for f in random_keys(seed=8)] == [str(f) for f in random_keys(seed=8)]
