"""Execute the fenced ``python`` blocks of README.md so the docs can't rot.

Every block must be self-contained (its own imports, no state from earlier
blocks) and fast — the blocks run inside the tier-1 suite on every push, and
``make docs-check`` runs exactly this module.  A README example that stops
working fails CI instead of silently misleading readers.
"""

import re
from pathlib import Path

import pytest


REPO_ROOT = Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"

_FENCED_PYTHON = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path):
    """The fenced ``python`` code blocks of a markdown file, in order."""
    return _FENCED_PYTHON.findall(path.read_text(encoding="utf-8"))


BLOCKS = python_blocks(README)


def test_readme_exists_and_has_python_examples():
    assert README.is_file()
    assert len(BLOCKS) >= 2, "README.md should demonstrate the library in code"


def test_readme_names_the_tier1_command():
    text = README.read_text(encoding="utf-8")
    assert "python -m pytest -x -q" in text
    assert "BENCH_SMOKE=1" in text


@pytest.mark.parametrize("index", range(len(BLOCKS)))
def test_readme_python_block_runs(index):
    block = BLOCKS[index]
    code = compile(block, f"README.md[python block {index}]", "exec")
    namespace = {"__name__": f"__readme_block_{index}__"}
    exec(code, namespace)  # noqa: S102 — executing our own documentation
