"""The long-lived :class:`repro.service.QueryService`.

Covers the three service contracts on top of the epoch machinery:

* the plan cache keyed by core-isomorphism class — canonicalisation via
  :func:`repro.service.canonical_form` over the query core, so renamed
  variants (and core-reducible supersets) of one query share a single
  cached route;
* the read/write surface — ``submit``/``stream`` (with ``limit=``
  backpressure and the :class:`ConcurrentMutationError` stream guard),
  ``insert``/``delete``, drift-triggered re-planning, ``verify()`` with
  the SVC001/SVC002 diagnostics;
* the ``REPRO_SERVICE`` seam and the ``repro serve`` CLI.
"""

import io

import pytest

from repro import cli
from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import evaluate_batch, evaluate_iter
from repro.queries.cq import ConjunctiveQuery
from repro.service import (
    ConcurrentMutationError,
    QueryService,
    canonical_form,
    shared_service,
)

E = Predicate("E", 2)
x, y, z, u, v, w = (Variable(n) for n in "xyzuvw")


def _edge(a, b):
    return Atom(E, (Constant(a), Constant(b)))


def _db(*pairs):
    database = Database()
    for a, b in pairs:
        database.add(_edge(a, b))
    return database


def _path_query(a, b, c, name="q"):
    return ConjunctiveQuery((a, c), [Atom(E, (a, b)), Atom(E, (b, c))], name=name)


# ----------------------------------------------------------------------
# Canonicalisation
# ----------------------------------------------------------------------
class TestCanonicalForm:
    def test_renamed_variants_share_one_canonical_form(self):
        assert canonical_form(_path_query(x, y, z)) == canonical_form(
            _path_query(u, v, w)
        )

    def test_head_positions_are_preserved(self):
        canonical = canonical_form(_path_query(x, y, z))
        assert canonical.head == (Variable("_h0"), Variable("_h1"))
        # _h0 is the source of the path, _h1 the target: positional
        # answer-tuple semantics survive canonicalisation.
        first_atom_vars = {
            variable
            for atom in canonical.body
            for variable in atom.terms
            if variable == Variable("_h0")
        }
        assert first_atom_vars == {Variable("_h0")}

    def test_different_shapes_stay_distinct(self):
        path = _path_query(x, y, z)
        loop = ConjunctiveQuery((x,), [Atom(E, (x, x))])
        assert canonical_form(path) != canonical_form(loop)

    def test_existing_underscore_names_do_not_collide(self):
        clash = ConjunctiveQuery(
            (Variable("_e0"),),
            [Atom(E, (Variable("_e0"), Variable("_h0")))],
        )
        canonical = canonical_form(clash)
        assert len(canonical.variables()) == 2

    def test_beyond_permutation_limit_is_deterministic(self):
        chain = [Atom(E, (Variable(f"c{i}"), Variable(f"c{i+1}"))) for i in range(9)]
        query = ConjunctiveQuery((Variable("c0"),), chain)
        assert canonical_form(query) == canonical_form(query)


# ----------------------------------------------------------------------
# The plan cache
# ----------------------------------------------------------------------
class TestPlanCache:
    def test_isomorphic_variants_hit_one_cached_plan(self):
        """The acceptance bar: >= 90% of 64 renamed variants are hits."""
        service = QueryService(_db((1, 2), (2, 3), (3, 4)))
        names = [f"n{i}" for i in range(20)]
        expected = service.submit(_path_query(x, y, z))
        for i in range(63):
            a, b, c = (Variable(f"{names[i % 20]}{j}_{i}") for j in range(3))
            assert service.submit(_path_query(a, b, c, name=f"v{i}")) == expected
        assert service.plan_misses == 1
        assert service.plan_hits == 63
        assert service.plan_hits / 64 >= 0.9

    def test_core_reducible_query_shares_the_minimal_plan(self):
        service = QueryService(_db((1, 2), (2, 3)))
        minimal = _path_query(x, y, z)
        redundant = ConjunctiveQuery(
            (x, z),
            # u duplicates y's role: the core folds it away.
            [Atom(E, (x, y)), Atom(E, (y, z)), Atom(E, (x, u))],
        )
        first = service.submit(minimal)
        assert service.submit(redundant) == first
        assert service.plan_misses == 1 and service.plan_hits == 1

    def test_repeat_submission_skips_canonicalisation(self):
        service = QueryService(_db((1, 2)))
        query = _path_query(x, y, z)
        service.submit(query)
        service.submit(query)  # memoised raw-request key
        assert (query, (), "auto") in service._keys

    def test_drift_triggers_a_replan(self):
        database = _db((1, 2), (2, 3))
        service = QueryService(database, replan_drift=0.5)
        query = _path_query(x, y, z)
        service.submit(query)
        for i in range(10, 16):  # grow |D| past 50%
            service.insert(_edge(i, i + 1))
        service.submit(query)
        assert service.replans == 1
        assert service.plan_misses == 2


# ----------------------------------------------------------------------
# Read/write surface
# ----------------------------------------------------------------------
class TestReadWrite:
    def test_submit_reflects_every_write(self):
        service = QueryService(_db((1, 2), (2, 3)))
        query = _path_query(x, y, z)
        assert service.submit(query) == {(Constant(1), Constant(3))}
        assert service.delete(_edge(1, 2))
        assert service.insert(_edge(3, 4))
        assert service.submit(query) == {(Constant(2), Constant(4))}
        assert service.writes == 2
        assert not service.insert(_edge(3, 4))  # ineffective: not counted
        assert service.writes == 2

    def test_stream_limit_backpressure(self):
        service = QueryService(_db((1, 2), (2, 3), (3, 4), (4, 5)))
        answers = list(service.stream(_path_query(x, y, z), limit=2))
        assert len(answers) == 2

    def test_stream_raises_on_concurrent_mutation(self):
        service = QueryService(_db((1, 2), (2, 3), (3, 4)))
        stream = service.stream(_path_query(x, y, z))
        assert next(stream) is not None
        service.insert(_edge(9, 10))
        with pytest.raises(ConcurrentMutationError, match="epoch"):
            next(stream)

    def test_stream_completes_without_mutation(self):
        service = QueryService(_db((1, 2), (2, 3), (3, 4)))
        assert set(service.stream(_path_query(x, y, z))) == {
            (Constant(1), Constant(3)),
            (Constant(2), Constant(4)),
        }

    def test_verify_clean_then_svc002_on_drift(self):
        service = QueryService(_db((1, 2), (2, 3)), replan_drift=0.5)
        service.submit(_path_query(x, y, z))
        assert service.verify() == []
        for i in range(10, 16):
            service.insert(_edge(i, i + 1))
        codes = [d.code for d in service.verify()]
        assert codes == ["SVC002"]

    def test_verify_svc001_on_a_corrupted_stamp(self):
        service = QueryService(_db((1, 2)))
        service.submit(_path_query(x, y, z))
        relation = next(iter(service.scans._scans.values()))
        relation.stamp_epoch(relation.stamped_epoch() + 7)
        codes = [d.code for d in service.verify()]
        assert "SVC001" in codes

    def test_write_barrier_is_a_real_reader_writer_lock(self):
        """A write waits for in-flight reads AND blocks new reads.

        The "readers never observe a half-applied write" guarantee needs
        real exclusion, not a check-then-act drain: a read entering after
        the drain returned must not scan concurrently with the mutation.
        """
        import threading
        import time

        service = QueryService(_db((1, 2), (2, 3)))
        reader_entered = threading.Event()
        release_reader = threading.Event()
        events = []

        def slow_reader():
            with service._tracked():
                reader_entered.set()
                assert release_reader.wait(5)
                events.append("read-finished")

        def late_reader():
            with service._tracked():
                # ``writes`` is bumped inside the barrier, so a reader that
                # slipped past a merely-pending write would record 0 here.
                events.append(("late-read", service.writes))

        def wait_until(condition):
            deadline = time.monotonic() + 5
            while not condition() and time.monotonic() < deadline:
                time.sleep(0.002)
            assert condition()

        threads = [threading.Thread(target=slow_reader)]
        threads[0].start()
        assert reader_entered.wait(5)
        threads.append(threading.Thread(target=lambda: service.insert(_edge(3, 4))))
        threads[1].start()
        # The write queues behind the in-flight read without mutating...
        wait_until(lambda: service._writers == 1)
        assert service.writes == 0
        # ...and a read arriving behind the pending write queues too.
        threads.append(threading.Thread(target=late_reader))
        threads[2].start()
        time.sleep(0.05)
        assert events == []
        release_reader.set()
        for thread in threads:
            thread.join(5)
        assert events == ["read-finished", ("late-read", 1)]
        assert service.writes == 1


# ----------------------------------------------------------------------
# The shared registry and the REPRO_SERVICE seam
# ----------------------------------------------------------------------
class TestServiceSeam:
    def test_shared_service_is_per_database_identity(self):
        first, second = _db((1, 2)), _db((1, 2))
        assert shared_service(first) is shared_service(first)
        assert shared_service(first) is not shared_service(second)

    def test_evaluate_iter_routes_through_the_service(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        database = _db((1, 2), (2, 3))
        service = shared_service(database)
        before = service.plan_hits + service.plan_misses
        assert set(evaluate_iter(_path_query(x, y, z), database)) == {
            (Constant(1), Constant(3))
        }
        assert service.plan_hits + service.plan_misses == before + 1
        # An open service stream fails loudly on a concurrent write.
        stream = evaluate_iter(_path_query(x, y, z), database)
        next(stream)
        database.add(_edge(7, 8))
        with pytest.raises(ConcurrentMutationError):
            next(stream)

    def test_evaluate_batch_uses_the_service_scan_cache(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVICE", "1")
        database = _db((1, 2), (2, 3))
        service = shared_service(database)
        served_before = service.scans.served
        evaluate_batch([_path_query(x, y, z)], database)
        assert service.scans.served > served_before

    def test_explicit_scans_wins_over_the_seam(self, monkeypatch):
        from repro.evaluation import ScanCache

        monkeypatch.setenv("REPRO_SERVICE", "1")
        database = _db((1, 2), (2, 3))
        cache = ScanCache(database)
        assert set(evaluate_iter(_path_query(x, y, z), database, scans=cache)) == {
            (Constant(1), Constant(3))
        }
        assert cache.served > 0


# ----------------------------------------------------------------------
# The serve CLI
# ----------------------------------------------------------------------
def test_cli_serve_session(tmp_path):
    data = tmp_path / "facts.txt"
    data.write_text("E(1, 2)\nE(2, 3)\n", encoding="utf-8")
    session = tmp_path / "session.txt"
    session.write_text(
        "% read, write, read\n"
        "? q(a, c) :- E(a, b), E(b, c)\n"
        "- E(1, 2)\n"
        "+ E(3, 4)\n"
        "? q(a, c) :- E(a, b), E(b, c)\n",
        encoding="utf-8",
    )
    out = io.StringIO()
    status = cli.main(
        [
            "serve",
            "--data", str(data),
            "--session", str(session),
            "--verify",
        ],
        out=out,
    )
    text = out.getvalue()
    assert status == 0
    assert "(1, 3)" in text and "(2, 4)" in text
    assert "- E(1, 2): removed" in text
    assert "verification: clean" in text
    assert "delta_merges: 1" in text
    assert "plan_hits: 1" in text


def test_cli_serve_rejects_malformed_lines(tmp_path):
    data = tmp_path / "facts.txt"
    data.write_text("E(1, 2)\n", encoding="utf-8")
    session = tmp_path / "session.txt"
    session.write_text("! not an operation\n", encoding="utf-8")
    with pytest.raises(SystemExit, match="unknown session line"):
        cli.main(
            ["serve", "--data", str(data), "--session", str(session)],
            out=io.StringIO(),
        )
