"""Tests for the containment ↔ semantic-acyclicity reductions (Section 3.2)."""

import pytest

from repro.containment import ContainmentOutcome
from repro.core import (
    containment_via_proposition5,
    decide_containment_via_semac,
    direct_containment,
    proposition5_instance,
    reduce_containment_to_semac,
)
from repro.dependencies import is_body_connected_set, is_guarded_set, is_non_recursive_set
from repro.parser import parse_query, parse_tgd


def contained_case():
    """q ⊆_Σ q' holds: Σ derives S-edges from E-edges."""
    q = parse_query("E(x, y), E(y, z)", name="q")
    q_prime = parse_query("S(u, v)", name="qp")
    tgds = [parse_tgd("E(x, y) -> S(x, y)", label="copy")]
    return q, q_prime, tgds


def not_contained_case():
    """q ⊆_Σ q' fails: Σ only relates S to T, never E to S."""
    q = parse_query("E(x, y), E(y, z)", name="q")
    q_prime = parse_query("S(u, v)", name="qp")
    tgds = [parse_tgd("S(x, y) -> T(x, y)", label="unrelated")]
    return q, q_prime, tgds


class TestProposition5Instance:
    def test_conjunction_combines_both_bodies(self):
        q, q_prime, tgds = contained_case()
        instance = proposition5_instance(q, q_prime, tgds)
        assert len(instance.conjunction) == len(q) + len(q_prime)

    def test_queries_are_renamed_apart(self):
        q = parse_query("E(x, y)", name="q")
        q_prime = parse_query("S(x, y)", name="qp")
        instance = proposition5_instance(q, q_prime, [parse_tgd("E(x, y) -> S(x, y)")])
        assert not (q.variables() & instance.other_query.variables())

    def test_hypothesis_notes_flag_non_boolean_queries(self):
        q = parse_query("q(x) :- E(x, y)", name="q")
        q_prime = parse_query("S(u, v)", name="qp")
        instance = proposition5_instance(q, q_prime, [parse_tgd("E(x, y) -> S(x, y)")])
        assert not instance.hypotheses_hold
        assert any("Boolean" in note for note in instance.hypothesis_notes)

    def test_hypothesis_notes_flag_cyclic_left_query(self, triangle_query):
        q_prime = parse_query("S(u, v)", name="qp")
        instance = proposition5_instance(
            triangle_query, q_prime, [parse_tgd("E(x, y) -> S(x, y)")]
        )
        assert any("not acyclic" in note for note in instance.hypothesis_notes)

    def test_hypothesis_notes_flag_disconnected_tgds(self):
        q, q_prime, _ = contained_case()
        disconnected = parse_tgd("E(x, y), E(u, v) -> S(x, u)", label="disc")
        instance = proposition5_instance(q, q_prime, [disconnected])
        assert any("body-connected" in note for note in instance.hypothesis_notes)

    def test_clean_instances_report_no_notes(self):
        q, q_prime, tgds = contained_case()
        instance = proposition5_instance(q, q_prime, tgds)
        assert instance.hypotheses_hold


class TestConnectingPipeline:
    def test_reduction_outputs_connected_boolean_queries(self):
        q, q_prime, tgds = contained_case()
        reduction = reduce_containment_to_semac(q, q_prime, tgds)
        assert reduction.connected.left_query.is_connected()
        assert reduction.connected.left_query.is_acyclic()
        assert reduction.connected.right_query.is_connected()
        assert not reduction.connected.right_query.is_acyclic()
        assert is_body_connected_set(list(reduction.tgds))

    def test_reduction_preserves_non_recursiveness(self):
        q, q_prime, tgds = contained_case()
        assert is_non_recursive_set(tgds)
        reduction = reduce_containment_to_semac(q, q_prime, tgds)
        assert is_non_recursive_set(list(reduction.tgds))

    def test_reduction_rejects_non_boolean_queries(self):
        q = parse_query("q(x) :- E(x, y)")
        q_prime = parse_query("S(u, v)")
        with pytest.raises(ValueError):
            reduce_containment_to_semac(q, q_prime, [parse_tgd("E(x, y) -> S(x, y)")])

    def test_reduction_rejects_cyclic_left_query(self, triangle_query):
        q_prime = parse_query("S(u, v)")
        with pytest.raises(ValueError):
            reduce_containment_to_semac(
                triangle_query, q_prime, [parse_tgd("E(x, y) -> S(x, y)")]
            )

    def test_proposition5_hypotheses_hold_after_connecting(self):
        q, q_prime, tgds = contained_case()
        reduction = reduce_containment_to_semac(q, q_prime, tgds)
        assert reduction.proposition5.hypotheses_hold


class TestReductionCorrectness:
    def test_contained_case_agrees_with_direct_containment(self):
        q, q_prime, tgds = contained_case()
        assert direct_containment(q, q_prime, tgds) is ContainmentOutcome.TRUE
        verdict, decision, _ = decide_containment_via_semac(q, q_prime, tgds)
        assert verdict is True
        assert decision.witness is not None
        assert decision.witness.is_acyclic()

    def test_not_contained_case_agrees_with_direct_containment(self):
        q, q_prime, tgds = not_contained_case()
        assert direct_containment(q, q_prime, tgds) is ContainmentOutcome.FALSE
        verdict, _, _ = decide_containment_via_semac(q, q_prime, tgds)
        assert verdict is False

    def test_proposition5_direct_use_on_a_containment_that_holds(self):
        # Without connecting: q' must not be semantically acyclic under Σ for
        # the "iff" to hold; here q' is the triangle, which stays cyclic under
        # the (unrelated, body-connected) tgd set.
        q = parse_query("E(x, y), E(y, z)", name="q")
        q_prime = parse_query("E(u, v), E(v, w), E(w, u)", name="triangle")
        tgds = [parse_tgd("E(x, y) -> P(x)", label="proj")]
        # Containment fails (a path does not map onto a triangle pattern...
        # actually the triangle maps INTO any query with a homomorphism to it;
        # here q ⊄ q' because q' needs a directed 3-cycle).
        assert direct_containment(q, q_prime, tgds) is ContainmentOutcome.FALSE
        verdict, _, instance = containment_via_proposition5(q, q_prime, tgds)
        assert instance.hypotheses_hold
        assert verdict is False

    def test_several_random_non_recursive_instances_cross_validate(self):
        cases = [
            (
                parse_query("A(x, y), B(y, z)", name="q1"),
                parse_query("C(u, v)", name="p1"),
                [parse_tgd("A(x, y), B(y, z) -> C(x, z)", label="join")],
                True,
            ),
            (
                parse_query("A(x, y), B(y, z)", name="q2"),
                parse_query("C(u, u)", name="p2"),
                [parse_tgd("A(x, y), B(y, z) -> C(x, z)", label="join")],
                False,
            ),
            (
                parse_query("A(x, y)", name="q3"),
                parse_query("B(u, v), C(v, w)", name="p3"),
                [
                    parse_tgd("A(x, y) -> B(x, y)", label="ab"),
                    parse_tgd("B(x, y) -> C(y, z)", label="bc"),
                ],
                True,
            ),
        ]
        for q, q_prime, tgds, expected in cases:
            direct = direct_containment(q, q_prime, tgds)
            assert (direct is ContainmentOutcome.TRUE) == expected
            verdict, _, _ = decide_containment_via_semac(q, q_prime, tgds)
            assert verdict == expected
