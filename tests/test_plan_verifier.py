"""Static plan verifier: clean-plan properties and a mutation corpus.

Two halves.  The property half compiles plans the engines actually emit —
Yannakakis answer/stream faces, greedy join chains, the reformulation
route — over randomized workloads and asserts :func:`repro.analysis
.verify_plan` finds nothing.  The mutation half hand-corrupts one invariant
at a time (a dropped join key, a stale projection, a re-rooted cursor
plan, ...) and asserts the *exact* diagnostic code fires: the corpus is what
keeps the verifier honest, one test per PLAN code.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.workloads import randomized_acyclic_workload, randomized_cyclic_workload
from repro.analysis import (
    Diagnostic,
    PlanVerificationError,
    Severity,
    errors,
    verify_plan,
)
from repro.analysis.verify_plan import (
    maybe_verify,
    verification_enabled,
    verify_or_raise,
)
from repro.datamodel import Atom, Constant, Null, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    BagNode,
    DecompositionEvaluator,
    Distinct,
    HashJoin,
    Project,
    Scan,
    Select,
    SemiJoin,
    YannakakisEvaluator,
    compile_plan,
    plan_dp,
    plan_greedy,
    resolve_route,
)
from repro.evaluation.operators import first_occurrence_schema
from repro.parser import parse_query, parse_tgd


E = Predicate("E", 2)
F = Predicate("F", 2)
G = Predicate("G", 2)
x, y, z, w = Variable("x"), Variable("y"), Variable("z"), Variable("w")
a, b = Constant("a"), Constant("b")


def scan_e():
    return Scan(Atom(E, (x, y)))


def scan_f():
    return Scan(Atom(F, (y, z)))


def scan_g():
    return Scan(Atom(G, (z, w)))


def codes(diagnostics):
    return [d.code for d in diagnostics]


def _walk(root):
    """Every distinct operator reachable from ``root`` (shared nodes once)."""
    seen, stack, found = set(), [root], []
    while stack:
        node = stack.pop()
        if id(node) in seen:
            continue
        seen.add(id(node))
        found.append(node)
        stack.extend(node.children)
    return found


def path_evaluator():
    return YannakakisEvaluator(parse_query("q(x, z) :- E(x, y), F(y, z)"))


# ----------------------------------------------------------------------
# Emitted plans verify clean (the property the REPRO_VERIFY hook enforces)
# ----------------------------------------------------------------------
class TestEmittedPlansAreClean:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_yannakakis_faces_verify_clean(self, seed):
        query, _database = randomized_acyclic_workload(seed)
        try:
            evaluator = YannakakisEvaluator(query)
        except AcyclicityRequired:
            return  # constant injection made the hypergraph cyclic
        assert verify_plan(evaluator.compile_answer_plan()) == []
        assert verify_plan(evaluator.compile_stream_plan(), streaming=True) == []
        assert (
            verify_plan(evaluator.compile_stream_plan(boolean=True), streaming=True)
            == []
        )

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_greedy_join_chains_verify_clean(self, seed):
        query, database = randomized_cyclic_workload(seed)
        ops = compile_plan(plan_greedy(query, database))
        assert verify_plan(ops[-1]) == []
        top = Project(ops[-1], first_occurrence_schema(query.head))
        assert verify_plan(top, streaming=True) == []

    def test_reformulation_route_verifies_clean(self, music_store):
        query, tgds, _reformulation = music_store
        route, evaluator = resolve_route(query, tgds=tgds)
        assert route == "reformulated"
        assert verify_plan(evaluator.compile_answer_plan()) == []
        assert verify_plan(evaluator.compile_stream_plan(), streaming=True) == []

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_dp_bushy_plans_verify_clean(self, seed):
        query, database = randomized_cyclic_workload(seed)
        ops = compile_plan(plan_dp(query, database))
        assert verify_plan(ops[-1]) == []
        top = Project(ops[-1], first_occurrence_schema(query.head))
        assert verify_plan(top, streaming=True) == []

    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_decomposition_faces_verify_clean(self, seed):
        query, _database = randomized_cyclic_workload(seed)
        evaluator = DecompositionEvaluator(query)
        assert verify_plan(evaluator.compile_answer_plan()) == []
        assert verify_plan(evaluator.compile_stream_plan(), streaming=True) == []


# ----------------------------------------------------------------------
# Mutation corpus — one hand-corrupted plan per diagnostic code
# ----------------------------------------------------------------------
class TestMutationCorpus:
    def test_plan001_cycle(self):
        inner = Select(scan_e(), {})
        outer = Select(inner, {})
        inner.children = (outer,)  # re-root: outer -> inner -> outer
        assert "PLAN001" in codes(verify_plan(outer))

    def test_plan002_non_variable_schema_entry(self):
        scan = scan_e()
        scan.schema = (x, "y")
        assert codes(verify_plan(scan)) == ["PLAN002"]

    def test_plan002_repeated_schema_variable(self):
        scan = scan_e()
        scan.schema = (x, x)
        assert codes(verify_plan(scan)) == ["PLAN002"]

    def test_plan003_wrong_child_count(self):
        join = HashJoin(scan_e(), scan_f())
        join.children = (join.children[0],)  # drop the probe side
        assert codes(verify_plan(join)) == ["PLAN003"]

    def test_plan004_unbound_projection_target(self):
        project = Project(scan_e(), (x,))
        project.schema = (x, w)  # w is not produced upstream
        assert codes(verify_plan(project)) == ["PLAN004"]

    def test_plan004_stale_projection_positions(self):
        project = Project(scan_e(), (y, x))
        project._positions = (0, 1)  # recomputation gives (1, 0)
        assert codes(verify_plan(project)) == ["PLAN004"]

    def test_plan004_selection_check_out_of_range(self):
        select = Select(scan_e(), {y: a})
        select._checks = ((7, a),)
        assert codes(verify_plan(select)) == ["PLAN004"]

    def test_plan005_dropped_join_key(self):
        join = HashJoin(scan_e(), scan_f())
        join._left_key = (0,)  # the shared variable y lives at position 1
        assert codes(verify_plan(join)) == ["PLAN005"]

    def test_plan005_semijoin_key_disagrees(self):
        semi = SemiJoin(scan_e(), scan_f())
        semi._shared = (x,)  # the operands actually share y
        assert codes(verify_plan(semi)) == ["PLAN005"]

    def test_plan006_hash_join_schema_drops_residual(self):
        join = HashJoin(scan_e(), scan_f())
        join.schema = (x, y)  # silently loses the residual z
        assert codes(verify_plan(join)) == ["PLAN006"]

    def test_plan006_distinct_changes_schema(self):
        distinct = Distinct(scan_e())
        distinct.schema = (x,)
        assert codes(verify_plan(distinct)) == ["PLAN006"]

    def test_plan007_cursor_root_carry_out_of_sync(self):
        plan = path_evaluator().compile_stream_plan()
        root = plan.tree.root
        plan.node_carry[root] = plan.node_carry[root] + (Variable("ghost"),)
        assert "PLAN007" in codes(verify_plan(plan, streaming=True))

    def test_plan007_cursor_bottom_up_order_stale(self):
        plan = path_evaluator().compile_stream_plan()
        plan._bottom_up = list(reversed(plan._bottom_up))
        assert "PLAN007" in codes(verify_plan(plan, streaming=True))

    def test_plan008_partial_estimates_warn(self):
        join = HashJoin(scan_e(), scan_f())
        join.estimated_rows = 5.0  # children remain unannotated
        diagnostics = verify_plan(join)
        assert codes(diagnostics) == ["PLAN008"]
        assert diagnostics[0].severity is Severity.WARNING
        # warnings do not make the hook raise
        assert verify_or_raise(join) == diagnostics

    def test_plan009_negative_estimate(self):
        scan = scan_e()
        scan.estimated_rows = -3
        assert codes(verify_plan(scan)) == ["PLAN009"]

    def test_plan009_non_finite_estimate(self):
        scan = scan_e()
        scan.estimated_rows = math.nan
        assert codes(verify_plan(scan)) == ["PLAN009"]

    def test_plan010_scan_arity_mismatch(self):
        scan = scan_e()
        object.__setattr__(scan.atom, "terms", (x,))
        assert codes(verify_plan(scan)) == ["PLAN010"]

    def test_plan010_scan_atom_contains_null(self):
        scan = scan_e()
        object.__setattr__(scan.atom, "terms", (Null("n1"), y))
        assert codes(verify_plan(scan)) == ["PLAN010"]

    def test_plan011_wrapped_cursor_plan(self):
        wrapped = Distinct(path_evaluator().compile_stream_plan())
        diagnostics = verify_plan(wrapped, streaming=True)
        assert codes(diagnostics) == ["PLAN011"]
        assert diagnostics[0].severity is Severity.WARNING
        # the same wrapper is legitimate on the materialising face
        assert verify_plan(wrapped) == []

    def test_plan012_streaming_build_side_is_not_materialisable(self):
        # A bushy join-over-scans build side is legal (the DP planner emits
        # those); anything else — here a Distinct — still warns.
        bushy = HashJoin(scan_e(), HashJoin(scan_f(), scan_g()))
        assert verify_plan(bushy, streaming=True) == []
        lazy_build = HashJoin(scan_e(), Distinct(scan_f()))
        diagnostics = verify_plan(lazy_build, streaming=True)
        assert codes(diagnostics) == ["PLAN012"]
        assert diagnostics[0].severity is Severity.WARNING
        assert verify_plan(lazy_build) == []

    def test_plan013_unregistered_operator_type(self):
        class CustomScan(Scan):
            """A subclass outside the batch-face width registry."""

        diagnostics = verify_plan(CustomScan(Atom(E, (x, y))))
        assert codes(diagnostics) == ["PLAN013"]
        assert diagnostics[0].severity is Severity.WARNING

    def test_plan014_stale_cached_encoding(self):
        from repro.evaluation import ExecutionContext
        from repro.workloads.generators import yannakakis_scaling_workload

        query, database = yannakakis_scaling_workload(60, seed=0)
        ops = compile_plan(plan_greedy(query, database))
        top = Project(ops[-1], first_occurrence_schema(query.head))
        context = ExecutionContext(database, backend="columnar")
        top.materialize_encoded(context)
        assert verify_plan(top) == []  # executed batch face verifies clean
        top._encoded = top.children[0]._encoded  # wrong-width cached result
        assert codes(verify_plan(top)) == ["PLAN014"]

    def test_plan014_takes_priority_only_on_clean_nodes(self):
        # A tuple-face corruption reports its own code, not a duplicate
        # PLAN014 — the batch check runs only on clean nodes.
        project = Project(scan_e(), (x,))
        project.schema = (x, w)  # len(_positions) == 1 != 2 == len(schema)
        assert codes(verify_plan(project)) == ["PLAN004"]

    def two_bag_evaluator(self):
        """Two triangles sharing a vertex: a two-bag decomposition."""
        return DecompositionEvaluator(
            parse_query(
                "q(x) :- E(x, y), E(y, z), E(z, x), F(z, w), F(w, v), F(v, z)"
            )
        )

    def test_plan015_bag_declaration_disagrees_with_its_schema(self):
        evaluator = self.two_bag_evaluator()
        plan = evaluator.compile_answer_plan()
        assert verify_plan(plan) == []
        bag = next(op for op in _walk(plan) if isinstance(op, BagNode))
        bag.bag = frozenset(set(bag.bag) | {Variable("ghost")})
        diagnostics = verify_plan(bag)
        assert codes(diagnostics) == ["PLAN015"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_plan015_bag_schema_desyncs_from_its_sub_plan(self):
        evaluator = self.two_bag_evaluator()
        plan = evaluator.compile_answer_plan()
        bag = next(op for op in _walk(plan) if isinstance(op, BagNode))
        bag.schema = tuple(reversed(bag.schema))
        assert codes(verify_plan(bag)) == ["PLAN015"]

    def test_plan015_decomposition_tree_edge_desync(self):
        evaluator = self.two_bag_evaluator()
        stream = evaluator.compile_stream_plan()
        assert verify_plan(stream, streaming=True) == []
        # Mutate the decomposition tree under the compiled cursors: drop a
        # vertex from one bag's join-tree node, as a buggy re-rooting would.
        tree = stream.tree
        node = tree.node(tree.root)
        node.vertices = frozenset(sorted(node.vertices, key=str)[1:])
        diagnostics = verify_plan(stream, streaming=True)
        assert "PLAN015" in codes(diagnostics)
        assert all(d.severity is Severity.ERROR for d in diagnostics)


# ----------------------------------------------------------------------
# The REPRO_VERIFY hook
# ----------------------------------------------------------------------
class TestVerificationHook:
    def corrupted_plan(self):
        join = HashJoin(scan_e(), scan_f())
        join._left_key = (0,)
        return join

    def test_verify_or_raise_raises_on_errors(self):
        with pytest.raises(PlanVerificationError) as info:
            verify_or_raise(self.corrupted_plan(), where="unit test")
        assert "unit test" in str(info.value)
        assert codes(info.value.diagnostics) == ["PLAN005"]

    def test_environment_switch_parsing(self, monkeypatch):
        for value in ("", "0", "false", "no", "off", " OFF "):
            monkeypatch.setenv("REPRO_VERIFY", value)
            assert not verification_enabled()
        for value in ("1", "true", "yes", "on"):
            monkeypatch.setenv("REPRO_VERIFY", value)
            assert verification_enabled()
        monkeypatch.delenv("REPRO_VERIFY")
        assert not verification_enabled()

    def test_maybe_verify_is_a_no_op_when_disabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "0")
        assert maybe_verify(self.corrupted_plan()) is None

    def test_maybe_verify_raises_when_enabled(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        with pytest.raises(PlanVerificationError):
            maybe_verify(self.corrupted_plan())

    def test_resolve_route_verifies_emitted_plans(self, music_store, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY", "1")
        query, tgds, _reformulation = music_store
        route, evaluator = resolve_route(query, tgds=tgds)
        assert route == "reformulated"
        assert evaluator is not None
        cyclic = parse_query("q(x) :- E(x, y), E(y, z), E(z, x)")
        route, evaluator = resolve_route(cyclic)
        assert route == "decomposition"
        assert evaluator is not None
        route, evaluator = resolve_route(cyclic, engine="plan")
        assert (route, evaluator) == ("plan", None)

    def test_compile_seam_catches_corruption(self, monkeypatch):
        """A compiler whose output is tampered with mid-flight is caught at
        the seam: simulate by corrupting the join tree carry before the
        stream compiler runs with verification enabled."""
        monkeypatch.setenv("REPRO_VERIFY", "1")
        evaluator = path_evaluator()
        evaluator._carry[evaluator.join_tree.root] = (Variable("ghost"),)
        with pytest.raises(PlanVerificationError):
            evaluator.compile_stream_plan()


# ----------------------------------------------------------------------
# Diagnostic records
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_unknown_code_is_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("PLAN999", Severity.ERROR, "nope")

    def test_render_and_as_dict(self):
        diagnostic = Diagnostic(
            "PLAN005", Severity.ERROR, "keys disagree", subject="HashJoin[y]"
        )
        assert diagnostic.render() == "PLAN005 error: keys disagree [HashJoin[y]]"
        payload = diagnostic.as_dict()
        assert payload["code"] == "PLAN005"
        assert payload["severity"] == "error"

    def test_errors_filter(self):
        mixed = [
            Diagnostic("PLAN008", Severity.WARNING, "partial estimates"),
            Diagnostic("PLAN005", Severity.ERROR, "keys disagree"),
        ]
        assert codes(errors(mixed)) == ["PLAN005"]
