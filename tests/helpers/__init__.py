"""Test-only helpers: legacy oracles and shared workload builders.

Modules under this package are *not* part of the library.  They exist so
that the differential tests (and, via the compatibility shim in
``src/repro/evaluation/yannakakis_dict.py``, the scaling benchmark) can
keep exercising independent baseline implementations without those
baselines living in — or being importable from — the production package.
"""
