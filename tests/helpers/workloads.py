"""Randomized (query, database) builders shared by the differential suites.

Kept here (not in ``repro.workloads``) because the injection knobs — how
often constants replace variables, how heads repeat variables — are test
policy, tuned to hit the corners where evaluator implementations have
historically disagreed (string-keyed dedup, constant selections, repeated
head variables), not library functionality.
"""

import random
from typing import Tuple

from repro.datamodel import Atom, Database
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import (
    random_acyclic_query,
    random_database,
    random_schema,
)


def randomized_acyclic_workload(
    seed: int,
    constant_rate: float = 0.15,
    max_head: int = 3,
) -> Tuple[ConjunctiveQuery, Database]:
    """An acyclic CQ (possibly with constants and a repeated-variable head)
    plus a random database over the same schema.

    ``constant_rate`` is the per-position probability of replacing a
    variable with a database constant (a selection); the head draws up to
    ``max_head`` variables *with repetition*.  Note the constant injection
    can, in rare corners, make the variable hypergraph cyclic — callers
    evaluating with an acyclicity-requiring engine must be prepared to skip
    those seeds.
    """
    rng = random.Random(seed)
    schema = random_schema(
        seed=rng.random(), predicate_count=rng.randint(2, 4), max_arity=rng.randint(1, 3)
    )
    database = random_database(
        seed=rng.random(),
        schema=schema,
        facts_per_predicate=rng.randint(5, 25),
        domain_size=rng.randint(3, 10),
    )
    query = random_acyclic_query(
        seed=rng.random(), schema=schema, atom_count=rng.randint(1, 6)
    )

    # Inject database constants into some atom positions (selections).
    domain = sorted(database.constants(), key=str)
    body = []
    for atom in query.body:
        terms = list(atom.terms)
        for position in range(len(terms)):
            if domain and rng.random() < constant_rate:
                terms[position] = rng.choice(domain)
        body.append(Atom(atom.predicate, tuple(terms)))

    # A head over the surviving variables, with repetition allowed.
    variables = sorted({v for atom in body for v in atom.variables()}, key=str)
    head = tuple(
        rng.choice(variables) for _ in range(rng.randint(0, min(max_head, len(variables))))
    ) if variables else ()
    return ConjunctiveQuery(head, body, name=f"diff_{seed}"), database


def randomized_cyclic_workload(seed: int) -> Tuple[ConjunctiveQuery, Database]:
    """A cyclic CQ (a triangle with a free, sometimes repeated head) plus a
    random database — the workload for the plan route, which the acyclic
    engines refuse."""
    from repro.datamodel import Predicate, Variable

    rng = random.Random(seed)
    schema = random_schema(
        seed=rng.random(), predicate_count=rng.randint(1, 3), max_arity=2
    )
    binary = [p for p in schema.predicates() if p.arity == 2]
    if not binary:
        binary = [Predicate("E", 2)]
    database = random_database(
        seed=rng.random(),
        schema=schema,
        facts_per_predicate=rng.randint(5, 20),
        domain_size=rng.randint(3, 8),
    )
    predicate = rng.choice(binary)
    x, y, z = Variable("tx"), Variable("ty"), Variable("tz")
    body = [
        Atom(predicate, (x, y)),
        Atom(predicate, (y, z)),
        Atom(predicate, (z, x)),
    ]
    head_pool: Tuple[Tuple[object, ...], ...] = ((), (x,), (x, z), (x, x, y))
    head = head_pool[rng.randrange(len(head_pool))]
    return ConjunctiveQuery(head, body, name=f"cyc_{seed}"), database
