"""The original assignment-dict implementation of Yannakakis' algorithm.

This module preserves the first-generation evaluator that represented every
row as a ``Dict[Variable, Term]`` and decided each semi-join with a nested
``any(_compatible(...))`` scan.  That scan is **quadratic** in the database
size (every row of a node is compared against every row of the child in the
worst case), which silently negated the linear-time guarantee the algorithm
is famous for.  The production evaluator lives in
:mod:`repro.evaluation.yannakakis` and runs on the hash-partitioned
:class:`repro.evaluation.relation.Relation` engine.

The dict implementation is a **test-only differential oracle**: it lives
under ``tests/helpers/`` and is deliberately *not* importable from
``repro.evaluation`` (its historical module path,
``repro.evaluation.yannakakis_dict``, survives only as a thin shim so
``benchmarks/bench_yannakakis_scaling.py`` can keep using it as the
quadratic baseline from a source checkout).  Two unrelated implementations
agreeing on randomized workloads is strong evidence for both.

One genuine bug of the original has been fixed here as well: deduplication
used to key projected rows on ``(variable.name, str(term))``, which
conflates distinct terms with equal string forms (``Constant(1)`` vs
``Constant("1")``, or a ``Constant`` and a ``Null`` sharing a name) and
silently merged distinct partial tuples.  Terms are hashable — the key is
now the term objects themselves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.datamodel import Atom, Constant, Instance, Term, Variable
from repro.hypergraph import JoinTree, JoinTreeError, build_join_tree, query_connectors
from repro.queries.cq import ConjunctiveQuery
from repro.evaluation.yannakakis import AcyclicityRequired


Assignment = Dict[Variable, Term]


def _atom_assignments(atom: Atom, database: Instance) -> List[Assignment]:
    """All ways of matching a single query atom against the database."""
    assignments: List[Assignment] = []
    for fact in database.atoms_with_predicate(atom.predicate):
        mapping: Assignment = {}
        compatible = True
        for query_term, data_term in zip(atom.terms, fact.terms):
            if isinstance(query_term, Constant):
                if query_term != data_term:
                    compatible = False
                    break
            else:
                bound = mapping.get(query_term)  # type: ignore[arg-type]
                if bound is None:
                    mapping[query_term] = data_term  # type: ignore[index]
                elif bound != data_term:
                    compatible = False
                    break
        if compatible:
            assignments.append(mapping)
    return assignments


def _compatible(left: Assignment, right: Assignment, shared: Iterable[Variable]) -> bool:
    return all(left[variable] == right[variable] for variable in shared)


@dataclass
class _NodeRelation:
    variables: FrozenSet[Variable]
    assignments: List[Assignment]


class DictYannakakisEvaluator:
    """The seed evaluator: correct answers, quadratic semi-join passes."""

    def __init__(self, query: ConjunctiveQuery) -> None:
        self.query = query
        try:
            self.join_tree: JoinTree = build_join_tree(query.body, query_connectors)
        except JoinTreeError as error:
            raise AcyclicityRequired(str(error)) from error
        self._node_variables: Dict[int, FrozenSet[Variable]] = {
            node.identifier: frozenset(node.atom.variables())
            for node in self.join_tree.nodes()
        }

    # ------------------------------------------------------------------
    def _reduce(self, database: Instance) -> Optional[Dict[int, _NodeRelation]]:
        """Phases 1–3; returns per-node reduced relations or ``None`` if empty."""
        relations: Dict[int, _NodeRelation] = {}
        for node in self.join_tree.nodes():
            assignments = _atom_assignments(node.atom, database)
            if not assignments:
                return None
            relations[node.identifier] = _NodeRelation(
                self._node_variables[node.identifier], assignments
            )

        # Bottom-up semi-joins (nested loop: quadratic by design, see module
        # docstring).
        for identifier in self.join_tree.bottom_up_order():
            for child in self.join_tree.children(identifier):
                shared = relations[identifier].variables & relations[child].variables
                child_rows = relations[child].assignments
                kept = [
                    row
                    for row in relations[identifier].assignments
                    if any(_compatible(row, other, shared) for other in child_rows)
                ]
                relations[identifier].assignments = kept
                if not kept:
                    return None

        # Top-down semi-joins.
        for identifier in self.join_tree.top_down_order():
            parent = self.join_tree.parent(identifier)
            if parent is None:
                continue
            shared = relations[identifier].variables & relations[parent].variables
            parent_rows = relations[parent].assignments
            kept = [
                row
                for row in relations[identifier].assignments
                if any(_compatible(row, other, shared) for other in parent_rows)
            ]
            relations[identifier].assignments = kept
            if not kept:
                return None
        return relations

    # ------------------------------------------------------------------
    def boolean(self, database: Instance) -> bool:
        """Return ``True`` iff the (Boolean reading of the) query holds in ``database``."""
        return self._reduce(database) is not None

    def evaluate(self, database: Instance) -> Set[Tuple[Term, ...]]:
        """Return the full answer set ``q(D)``."""
        relations = self._reduce(database)
        if relations is None:
            return set()
        free_variables = set(self.query.head)

        # For every node, the variables that must be carried upward: free
        # variables of its subtree plus the variables shared with the parent.
        carry: Dict[int, Set[Variable]] = {}
        for identifier in self.join_tree.bottom_up_order():
            wanted = (self._node_variables[identifier] & free_variables) | set()
            for child in self.join_tree.children(identifier):
                wanted |= carry[child] & (
                    free_variables
                    | (self._node_variables[identifier] & self._node_variables[child])
                )
                wanted |= carry[child] & free_variables
            parent = self.join_tree.parent(identifier)
            if parent is not None:
                wanted |= self._node_variables[identifier] & self._node_variables[parent]
            carry[identifier] = wanted

        # Bottom-up projection joins: each node produces partial tuples over
        # carry[node], combining its own rows with its children's results.
        partial: Dict[int, List[Assignment]] = {}
        for identifier in self.join_tree.bottom_up_order():
            rows = relations[identifier].assignments
            results: List[Assignment] = []
            children = self.join_tree.children(identifier)
            for row in rows:
                stack: List[Tuple[int, Assignment]] = [(0, dict(row))]
                while stack:
                    child_index, accumulated = stack.pop()
                    if child_index == len(children):
                        projected = {
                            variable: accumulated[variable]
                            for variable in carry[identifier]
                            if variable in accumulated
                        }
                        results.append(projected)
                        continue
                    child = children[child_index]
                    for child_row in partial[child]:
                        if all(
                            accumulated.get(variable, child_row.get(variable))
                            == child_row.get(variable, accumulated.get(variable))
                            for variable in set(accumulated) & set(child_row)
                        ):
                            merged = dict(accumulated)
                            merged.update(child_row)
                            stack.append((child_index + 1, merged))
            # Deduplicate projected rows, keyed on the term objects (not
            # their string forms — see module docstring).
            unique: Dict[Tuple, Assignment] = {}
            for row in results:
                key = tuple(sorted(row.items(), key=lambda item: item[0].name))
                unique[key] = row
            partial[identifier] = list(unique.values())

        answers: Set[Tuple[Term, ...]] = set()
        for row in partial[self.join_tree.root]:
            if all(variable in row for variable in free_variables):
                answers.add(tuple(row[variable] for variable in self.query.head))
        return answers
