"""Plan-cost calibration: estimated vs observed intermediate cardinalities.

The ROADMAP flagged ``join_plans.estimate_cardinality`` as a crude
1/10-per-constraint heuristic and asked for calibration against the
intermediate sizes the executor records.  The statistics-calibrated
:class:`repro.evaluation.CostModel` (per-column distinct counts,
bucket-size histograms, textbook join selectivities) closed that item;
this module is the regression guard: it runs the greedy planner over the
``yannakakis_scaling_workload`` at several sizes and seeds, pools the
(estimated, observed) intermediate-cardinality pairs —
:func:`repro.evaluation.estimated_intermediate_sizes` vs
:attr:`PlanExecution.intermediate_sizes` — and asserts that their Spearman
rank correlation stays above a measured floor.

The floor is deliberately set with a margin below the measured value: the
test is not a claim that the model is perfect, only that nobody makes it
silently worse while refactoring the planner.  History: the legacy
running-product heuristic measured ≈ 0.83 (floor 0.70); the calibrated
model measures ≈ 0.99 on the same grid, so the floor is now 0.85 as the
cost-model issue demanded.
"""

from typing import List, Sequence, Tuple

import pytest

from repro.evaluation import (
    estimated_intermediate_sizes,
    execute_plan,
    plan_greedy,
)
from repro.workloads.generators import yannakakis_scaling_workload


#: The workload grid the calibration pairs are pooled over.
SIZES = (150, 300, 600, 1200)
SEEDS = (0, 1, 2)

#: Regression floor for the pooled Spearman rank correlation (the
#: statistics-calibrated model measures ≈ 0.994 on this grid; the legacy
#: 1/10-per-constraint heuristic measured ≈ 0.83).
MIN_RANK_CORRELATION = 0.85


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks 1..n with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        stop = start
        while stop + 1 < len(order) and values[order[stop + 1]] == values[order[start]]:
            stop += 1
        average = (start + stop) / 2 + 1
        for position in range(start, stop + 1):
            ranks[order[position]] = average
        start = stop + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length ≥ 2")
    rank_x, rank_y = _average_ranks(xs), _average_ranks(ys)
    n = len(xs)
    mean_x, mean_y = sum(rank_x) / n, sum(rank_y) / n
    covariance = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    deviation_x = sum((a - mean_x) ** 2 for a in rank_x) ** 0.5
    deviation_y = sum((b - mean_y) ** 2 for b in rank_y) ** 0.5
    if deviation_x == 0 or deviation_y == 0:
        raise ValueError("constant sequence has no rank correlation")
    return covariance / (deviation_x * deviation_y)


def calibration_pairs() -> List[Tuple[int, int]]:
    """Pooled (estimated, observed) intermediate sizes over the grid."""
    pairs: List[Tuple[int, int]] = []
    for size in SIZES:
        for seed in SEEDS:
            query, database = yannakakis_scaling_workload(size, seed=seed)
            plan = plan_greedy(query, database)
            estimated = estimated_intermediate_sizes(plan)
            execution = execute_plan(plan, database)
            # execute_plan stops recording at the first empty intermediate,
            # so observed may be a prefix; zip pairs only what was observed.
            observed = execution.intermediate_sizes
            assert len(estimated) == len(plan) and len(observed) <= len(plan)
            pairs.extend(zip(estimated, observed))
    return pairs


class TestSpearmanHelper:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_share_average_ranks(self):
        assert _average_ranks([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            spearman([1], [2])
        with pytest.raises(ValueError):
            spearman([1, 1, 1], [1, 2, 3])


def test_cost_model_rank_correlation_does_not_regress():
    pairs = calibration_pairs()
    assert len(pairs) >= 30, "the calibration grid shrank — keep it meaningful"
    correlation = spearman([p[0] for p in pairs], [p[1] for p in pairs])
    print(
        f"\nplan-cost calibration: {len(pairs)} (estimated, observed) pairs, "
        f"spearman = {correlation:.3f} (floor {MIN_RANK_CORRELATION})"
    )
    assert correlation >= MIN_RANK_CORRELATION, (
        f"the cost model's rank correlation dropped to {correlation:.3f} "
        f"(floor {MIN_RANK_CORRELATION}); if a planner change is expected to "
        "shift estimates, re-measure and adjust the floor deliberately"
    )


def test_estimated_intermediates_are_recorded_per_step():
    query, database = yannakakis_scaling_workload(200, seed=0)
    plan = plan_greedy(query, database)
    estimated = estimated_intermediate_sizes(plan)
    assert len(estimated) == len(plan)
    assert all(value >= 0 for value in estimated)
    assert estimated == [step.estimated_intermediate_rows for step in plan.steps]


def test_calibrated_model_outranks_the_legacy_running_product():
    """The point of the calibration: the statistics-based estimates must
    rank-correlate with reality strictly better than the legacy
    running-product-of-heuristics model they replaced."""
    from repro.evaluation import estimate_cardinality

    legacy_pairs: List[Tuple[int, int]] = []
    for size in SIZES:
        for seed in SEEDS:
            query, database = yannakakis_scaling_workload(size, seed=seed)
            plan = plan_greedy(query, database)
            running = 1
            legacy = []
            for step in plan.steps:
                running *= max(1, estimate_cardinality(step.atom, database))
                legacy.append(running)
            observed = execute_plan(plan, database).intermediate_sizes
            legacy_pairs.extend(zip(legacy, observed))
    legacy_correlation = spearman(
        [p[0] for p in legacy_pairs], [p[1] for p in legacy_pairs]
    )
    calibrated_pairs = calibration_pairs()
    calibrated_correlation = spearman(
        [p[0] for p in calibrated_pairs], [p[1] for p in calibrated_pairs]
    )
    assert calibrated_correlation > legacy_correlation
