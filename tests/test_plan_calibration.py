"""Plan-cost calibration: estimated vs observed intermediate cardinalities.

The ROADMAP flagged ``join_plans.estimate_cardinality`` as a crude
1/10-per-constraint heuristic and asked for calibration against the
intermediate sizes the executor records.  The statistics-calibrated
:class:`repro.evaluation.CostModel` (per-column distinct counts,
bucket-size histograms, textbook join selectivities) closed that item;
this module is the regression guard: it runs the greedy planner over the
``yannakakis_scaling_workload`` at several sizes and seeds, pools the
(estimated, observed) intermediate-cardinality pairs —
:func:`repro.evaluation.estimated_intermediate_sizes` vs
:attr:`PlanExecution.intermediate_sizes` — and asserts that their Spearman
rank correlation stays above a measured floor.

The floor is deliberately set with a margin below the measured value: the
test is not a claim that the model is perfect, only that nobody makes it
silently worse while refactoring the planner.  History: the legacy
running-product heuristic measured ≈ 0.83 (floor 0.70); the calibrated
model measured ≈ 0.99 on the same grid (floor 0.85); with the planner-v2
DP plans pooled in alongside greedy's, both planners measure ≈ 0.993, so
the floor is now 0.95.

The correlation-aware pair sketches get their own fixture here: a chain
whose join keys move together (``y = f(x)``), where the independence
product is off by the fan-out factor and the sketched joint-distinct
count is exact.
"""

from typing import List, Sequence, Tuple

import pytest

from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    CardinalityEstimate,
    CostModel,
    Statistics,
    estimated_intermediate_sizes,
    evaluate_generic,
    execute_plan,
    plan_dp,
    plan_greedy,
)
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import yannakakis_scaling_workload


#: The workload grid the calibration pairs are pooled over.
SIZES = (150, 300, 600, 1200)
SEEDS = (0, 1, 2)

#: Both planners' plans feed the calibration pool: the DP planner is the
#: default, greedy is the baseline it must stay comparable with.
PLANNERS = (plan_greedy, plan_dp)

#: Regression floor for the pooled Spearman rank correlation (greedy and
#: DP plans both measure ≈ 0.993 on this grid; the legacy
#: 1/10-per-constraint heuristic measured ≈ 0.83).
MIN_RANK_CORRELATION = 0.95


def _average_ranks(values: Sequence[float]) -> List[float]:
    """Ranks 1..n with ties sharing their average rank."""
    order = sorted(range(len(values)), key=lambda index: values[index])
    ranks = [0.0] * len(values)
    start = 0
    while start < len(order):
        stop = start
        while stop + 1 < len(order) and values[order[stop + 1]] == values[order[start]]:
            stop += 1
        average = (start + stop) / 2 + 1
        for position in range(start, stop + 1):
            ranks[order[position]] = average
        start = stop + 1
    return ranks


def spearman(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson on average ranks)."""
    if len(xs) != len(ys) or len(xs) < 2:
        raise ValueError("need two sequences of equal length ≥ 2")
    rank_x, rank_y = _average_ranks(xs), _average_ranks(ys)
    n = len(xs)
    mean_x, mean_y = sum(rank_x) / n, sum(rank_y) / n
    covariance = sum((a - mean_x) * (b - mean_y) for a, b in zip(rank_x, rank_y))
    deviation_x = sum((a - mean_x) ** 2 for a in rank_x) ** 0.5
    deviation_y = sum((b - mean_y) ** 2 for b in rank_y) ** 0.5
    if deviation_x == 0 or deviation_y == 0:
        raise ValueError("constant sequence has no rank correlation")
    return covariance / (deviation_x * deviation_y)


def calibration_pairs() -> List[Tuple[int, int]]:
    """Pooled (estimated, observed) intermediate sizes over the grid."""
    pairs: List[Tuple[int, int]] = []
    for size in SIZES:
        for seed in SEEDS:
            query, database = yannakakis_scaling_workload(size, seed=seed)
            for planner in PLANNERS:
                plan = planner(query, database)
                estimated = estimated_intermediate_sizes(plan)
                execution = execute_plan(plan, database)
                # execute_plan stops recording at the first empty
                # intermediate, so observed may be a prefix; zip pairs
                # only what was observed.
                observed = execution.intermediate_sizes
                assert len(estimated) == len(plan) and len(observed) <= len(plan)
                pairs.extend(zip(estimated, observed))
    return pairs


class TestSpearmanHelper:
    def test_perfect_correlation(self):
        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)

    def test_perfect_anticorrelation(self):
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_ties_share_average_ranks(self):
        assert _average_ranks([5, 5, 1]) == [2.5, 2.5, 1.0]

    def test_rejects_degenerate_input(self):
        with pytest.raises(ValueError):
            spearman([1], [2])
        with pytest.raises(ValueError):
            spearman([1, 1, 1], [1, 2, 3])


def test_cost_model_rank_correlation_does_not_regress():
    pairs = calibration_pairs()
    assert len(pairs) >= 30, "the calibration grid shrank — keep it meaningful"
    correlation = spearman([p[0] for p in pairs], [p[1] for p in pairs])
    print(
        f"\nplan-cost calibration: {len(pairs)} (estimated, observed) pairs, "
        f"spearman = {correlation:.3f} (floor {MIN_RANK_CORRELATION})"
    )
    assert correlation >= MIN_RANK_CORRELATION, (
        f"the cost model's rank correlation dropped to {correlation:.3f} "
        f"(floor {MIN_RANK_CORRELATION}); if a planner change is expected to "
        "shift estimates, re-measure and adjust the floor deliberately"
    )


def test_estimated_intermediates_are_recorded_per_step():
    query, database = yannakakis_scaling_workload(200, seed=0)
    plan = plan_greedy(query, database)
    estimated = estimated_intermediate_sizes(plan)
    assert len(estimated) == len(plan)
    assert all(value >= 0 for value in estimated)
    assert estimated == [step.estimated_intermediate_rows for step in plan.steps]


def test_calibrated_model_outranks_the_legacy_running_product():
    """The point of the calibration: the statistics-based estimates must
    rank-correlate with reality strictly better than the legacy
    running-product-of-heuristics model they replaced."""
    from repro.evaluation import estimate_cardinality

    legacy_pairs: List[Tuple[int, int]] = []
    for size in SIZES:
        for seed in SEEDS:
            query, database = yannakakis_scaling_workload(size, seed=seed)
            plan = plan_greedy(query, database)
            running = 1
            legacy = []
            for step in plan.steps:
                running *= max(1, estimate_cardinality(step.atom, database))
                legacy.append(running)
            observed = execute_plan(plan, database).intermediate_sizes
            legacy_pairs.extend(zip(legacy, observed))
    legacy_correlation = spearman(
        [p[0] for p in legacy_pairs], [p[1] for p in legacy_pairs]
    )
    calibrated_pairs = calibration_pairs()
    calibrated_correlation = spearman(
        [p[0] for p in calibrated_pairs], [p[1] for p in calibrated_pairs]
    )
    assert calibrated_correlation > legacy_correlation


# ----------------------------------------------------------------------
# Correlation sketches: the correlated-chain fixture
# ----------------------------------------------------------------------
def correlated_chain_fixture():
    """``R(x, y) ⋈ S(x, y, z)`` where ``y`` is a function of ``x``.

    40 distinct ``x`` values, each with its unique ``y = f(x)`` and a
    fan-out of 5 into ``z`` — so there are 40 distinct ``(x, y)`` pairs,
    not the 40 · 40 the independence product assumes, and the true join
    size is 200.
    """
    R, S = Predicate("R", 2), Predicate("S", 3)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    database = Database()
    for i in range(40):
        database.add(Atom(R, (Constant(f"k{i}"), Constant(f"f{i}"))))
        for j in range(5):
            database.add(
                Atom(S, (Constant(f"k{i}"), Constant(f"f{i}"), Constant(f"z{j}")))
            )
    query = ConjunctiveQuery((x, y, z), [Atom(R, (x, y)), Atom(S, (x, y, z))])
    return query, database


def test_pair_sketch_beats_independence_on_correlated_chain():
    query, database = correlated_chain_fixture()
    model = CostModel(Statistics(database))
    left = model.scan_estimate(query.body[0])
    right = model.scan_estimate(query.body[1])

    sketched = model.join_estimate(left, right)
    # The independence baseline: identical per-variable statistics with
    # the pair sketches stripped, so joint_distinct multiplies.
    independent = model.join_estimate(
        CardinalityEstimate(left.rows, dict(left.distinct)),
        CardinalityEstimate(right.rows, dict(right.distinct)),
    )
    observed = len(evaluate_generic(query, database))

    assert observed == 200
    assert sketched.rows == pytest.approx(observed)
    assert abs(sketched.rows - observed) < abs(independent.rows - observed)
    # The independence product divides by d(x)·d(y) = 1600 instead of the
    # sketched 40 joint pairs — a 5× under-estimate on this fixture.
    assert independent.rows < observed / 4
