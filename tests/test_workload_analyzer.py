"""Workload analyzer (WKL codes) and the ``repro check`` subcommand.

One test class per concern: query-level checks, dependency-level checks
(termination certificates with their explanations, stickiness), workload-wide
arity reconciliation, and the CLI gate with its severity → exit-code mapping.
"""

import io
import json

from repro.analysis import (
    Severity,
    check_dependencies,
    check_query,
    check_query_parts,
    check_workload,
    exit_code,
)
from repro.cli import main
from repro.datamodel import Atom, Constant, Predicate, Schema, Variable
from repro.parser import parse_egd, parse_query, parse_tgd


x, y = Variable("x"), Variable("y")


def run_cli(argv):
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


def codes(diagnostics):
    return [d.code for d in diagnostics]


class TestQueryChecks:
    def test_clean_query_has_no_diagnostics(self):
        query = parse_query("q(x, z) :- E(x, y), F(y, z)")
        assert check_query(query) == []

    def test_wkl001_unsafe_head(self):
        diagnostics = check_query_parts(
            (x,), [Atom(Predicate("P", 1), (y,))]
        )
        assert codes(diagnostics) == ["WKL001"]
        assert diagnostics[0].severity is Severity.ERROR

    def test_wkl002_intra_query_arity_clash(self):
        query = parse_query("q(x) :- P(x), P(x, y)")
        diagnostics = check_query(query)
        assert "WKL002" in codes(diagnostics)
        assert "arity 1" in diagnostics[0].message
        assert "arity 2" in diagnostics[0].message

    def test_wkl003_schema_disagreements(self):
        schema = Schema.from_atoms(
            [Atom(Predicate("E", 2), (Constant("a"), Constant("b")))]
        )
        query = parse_query("q(x) :- E(x), Ghost(x)")
        diagnostics = check_query(query, schema=schema)
        by_code = {d.message: d for d in diagnostics}
        assert codes(diagnostics) == ["WKL003", "WKL003"]
        severities = sorted(d.severity for d in diagnostics)
        assert severities == [Severity.WARNING, Severity.ERROR]
        assert any("declares E/2" in m for m in by_code)
        assert any("not declared" in m for m in by_code)

    def test_wkl004_egd_unsatisfiable_query(self):
        query = parse_query("q(x) :- R(x, 'a'), R(x, 'b')")
        egd = parse_egd("R(u, v), R(u, w) -> v = w")
        diagnostics = check_query(query, egds=[egd])
        assert codes(diagnostics) == ["WKL004"]
        assert "unsatisfiable" in diagnostics[0].message

    def test_wkl004_satisfiable_query_is_clean(self):
        query = parse_query("q(x) :- R(x, 'a'), R(x, y)")
        egd = parse_egd("R(u, v), R(u, w) -> v = w")
        assert check_query(query, egds=[egd]) == []

    def test_wkl008_disconnected_body(self):
        query = parse_query("q(x, y) :- E(x, u), F(y, v)")
        diagnostics = check_query(query)
        assert codes(diagnostics) == ["WKL008"]
        assert diagnostics[0].severity is Severity.INFO
        assert "2 connected components" in diagnostics[0].message


class TestDependencyChecks:
    def test_wkl006_non_recursive_certificate(self):
        diagnostics = check_dependencies([parse_tgd("A(x) -> B(x)")])
        assert codes(diagnostics) == ["WKL006"]
        assert "non-recursive" in diagnostics[0].message

    def test_wkl006_weakly_acyclic_certificate(self):
        tgds = [parse_tgd("A(x) -> B(x, y)"), parse_tgd("B(x, y) -> A(x)")]
        diagnostics = check_dependencies(tgds)
        assert "WKL006" in codes(diagnostics)
        message = next(d for d in diagnostics if d.code == "WKL006").message
        assert "weakly-acyclic" in message

    def test_wkl005_refuting_cycle_witness(self):
        tgds = [
            parse_tgd("Person(x) -> Parent(x, y)"),
            parse_tgd("Parent(x, y) -> Person(y)"),
        ]
        diagnostics = check_dependencies(tgds)
        assert "WKL005" in codes(diagnostics)
        finding = next(d for d in diagnostics if d.code == "WKL005")
        assert finding.severity is Severity.WARNING
        assert "Person[0] -> Parent[1] -> Person[0]" in finding.message
        assert "step budget" in finding.hint

    def test_wkl007_non_sticky_tgds(self, music_store):
        _query, tgds, _reformulation = music_store
        diagnostics = check_dependencies(tgds)
        finding = next(d for d in diagnostics if d.code == "WKL007")
        assert finding.severity is Severity.INFO
        assert "not sticky" in finding.message

    def test_empty_dependency_set_is_clean(self):
        assert check_dependencies([]) == []


class TestWorkloadChecks:
    def test_cross_workload_arity_clash_reported_once(self):
        query = parse_query("q(x) :- R(x)")
        tgd = parse_tgd("S(x) -> R(x, x)")
        diagnostics = check_workload([query], [tgd])
        assert codes(diagnostics).count("WKL002") == 1
        assert diagnostics[0].subject == "workload"

    def test_clean_workload_certifies_termination(self, music_store):
        query, tgds, _reformulation = music_store
        diagnostics = check_workload([query], tgds)
        assert exit_code(diagnostics) == 0
        assert "WKL006" in codes(diagnostics)


class TestCheckCommand:
    CYCLIC_RULES = [
        "--dependency",
        "Person(x) -> Parent(x, y)",
        "--dependency",
        "Parent(x, y) -> Person(y)",
    ]

    def test_exit_0_on_clean_workload(self):
        code, output = run_cli(
            ["check", "--query", "q(x) :- E(x, y)", "--dependency", "E(x, y) -> F(y)"]
        )
        assert code == 0
        assert "result: ok" in output

    def test_exit_1_on_warnings(self):
        code, output = run_cli(
            ["check", "--query", "q(x) :- Person(x)"] + self.CYCLIC_RULES
        )
        assert code == 1
        assert "WKL005" in output
        assert "refuting cycle" in output
        assert "result: warnings" in output

    def test_exit_2_on_errors(self):
        code, output = run_cli(["check", "--query", "q(x) :- P(x), P(x, y)"])
        assert code == 2
        assert "WKL002" in output
        assert "result: errors" in output

    def test_malformed_query_reports_wkl001(self, tmp_path):
        query_file = tmp_path / "query.txt"
        query_file.write_text("q(x) :- E(y, z)\n")
        code, output = run_cli(["check", "--query-file", str(query_file)])
        assert code == 2
        assert "WKL001" in output

    def test_json_payload(self):
        code, output = run_cli(
            ["check", "--query", "q(x) :- Person(x)", "--json"] + self.CYCLIC_RULES
        )
        payload = json.loads(output)
        assert code == payload["exit_code"] == 1
        assert payload["queries"] == 1
        assert payload["dependencies"] == 2
        assert payload["counts"]["warning"] == 1
        assert payload["diagnostics"][0]["code"] == "WKL005"
        assert payload["diagnostics"][0]["severity"] == "warning"

    def test_check_with_data_verifies_the_plan(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\n")
        code, output = run_cli(
            ["check", "--query", "q(x, z) :- E(x, y), E(y, z)", "--data", str(data)]
        )
        assert code == 0
        assert "plan verified: yannakakis route" in output

    def test_check_with_data_decomposition_route(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\nE('c', 'a').\n")
        code, output = run_cli(
            [
                "check",
                "--query",
                "q(x) :- E(x, y), E(y, z), E(z, x)",
                "--data",
                str(data),
            ]
        )
        assert code == 0
        assert "plan verified: decomposition route" in output

    def test_explain_verify_reports_clean(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\n")
        code, output = run_cli(
            ["explain", "--query", "q(x) :- E(x, y)", "--data", str(data), "--verify"]
        )
        assert code == 0
        assert "verification: clean" in output
