"""Planner v2 battery: the Selinger DP, its guarantees, and the
decomposition route for cyclic queries.

Three families of checks lock the planner down:

* **Fixtures where greedy provably mispicks.** Chain, star and clique
  workloads constructed so the greedy planner's locally-cheapest choice
  is globally wrong; the DP must beat it on *estimated* and *observed*
  intermediate totals, and on the chain fixture must find the known
  optimal bushy shape ``((A ⋈ B) ⋈ (C ⋈ D))``.
* **Structural invariants.** Cross-product pruning: no join in a DP tree
  over a connected query ever joins variable-disjoint subtrees;
  disconnected queries chain their components at the top of the tree
  only.  Above :data:`DP_ATOM_LIMIT` the planner falls back to greedy's
  left-deep plan.
* **Differentials.** On randomized acyclic workloads (constants,
  repeated head variables) the DP, greedy, linear-DP and Yannakakis
  engines agree with the generic-join ground truth on both backends; on
  randomized cyclic workloads the decomposition route agrees with
  generic join, including its streaming and boolean faces.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from helpers.workloads import randomized_acyclic_workload, randomized_cyclic_workload
from repro.datamodel import Atom, Constant, Database, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    DP_ATOM_LIMIT,
    DecompositionEvaluator,
    YannakakisEvaluator,
    evaluate_generic,
    evaluate_with_plan,
    execute_plan,
    plan_dp,
    plan_dp_linear,
    plan_greedy,
    resolve_planner,
)
from repro.evaluation.join_plans import PLANNER_ENV, PlanTree
from repro.queries.cq import ConjunctiveQuery

x1, x2, x3, x4, x5 = (Variable(f"x{i}") for i in range(1, 6))


# ----------------------------------------------------------------------
# Fixtures where the greedy planner provably mispicks
# ----------------------------------------------------------------------
def chain_fixture():
    """Selective ends, exploding middle: the bushy shape wins.

    ``A`` and ``D`` are tiny (2 rows); ``B`` and ``C`` are large (100
    rows) and join each other on a 2-value key, so *any* left-deep order
    must pay a ~100-row intermediate after its second join.  The optimal
    plan joins the two selective ends into their neighbours first and
    then joins the two small sub-chains: ``((A ⋈ B) ⋈ (C ⋈ D))`` with a
    total of ~6 intermediate rows, versus ~104 for the best left-deep
    order greedy can reach.
    """
    A, B, C, D = (Predicate(p, 2) for p in "ABCD")
    database = Database()
    for i in range(2):
        database.add(Atom(A, (Constant(f"a{i}"), Constant(f"m{i}"))))
        database.add(Atom(D, (Constant(f"n{i}"), Constant(f"d{i}"))))
    for i in range(100):
        database.add(Atom(B, (Constant(f"m{i}"), Constant(f"h{i % 2}"))))
        database.add(Atom(C, (Constant(f"h{i % 2}"), Constant(f"n{i}"))))
    query = ConjunctiveQuery(
        (x1, x5),
        [Atom(A, (x1, x2)), Atom(B, (x2, x3)), Atom(C, (x3, x4)), Atom(D, (x4, x5))],
    )
    return query, database


def star_fixture():
    """A 3-satellite star where the cheapest *scan* is the wrong start.

    The greedy planner opens with the smallest satellite, but its join
    with the centre explodes (the centre has only 2 distinct values on
    that key); the DP instead starts from the satellite whose key the
    centre is selective on.
    """
    Ctr = Predicate("Ctr", 3)
    S1, S2, S3 = Predicate("S1", 2), Predicate("S2", 2), Predicate("S3", 2)
    sx, sy, sz = Variable("sx"), Variable("sy"), Variable("sz")
    u, v, w = Variable("u"), Variable("v"), Variable("w")
    database = Database()
    for i in range(50):
        database.add(
            Atom(Ctr, (Constant(f"x{i % 2}"), Constant(f"y{i}"), Constant(f"z{i}")))
        )
    for i in range(4):
        database.add(Atom(S1, (Constant(f"x{i}"), Constant(f"u{i}"))))
    for i in range(5):
        database.add(Atom(S2, (Constant(f"y{i}"), Constant(f"v{i}"))))
    for i in range(40):
        database.add(Atom(S3, (Constant(f"z{i}"), Constant(f"w{i}"))))
    query = ConjunctiveQuery(
        (sx, sy, sz),
        [
            Atom(Ctr, (sx, sy, sz)),
            Atom(S1, (sx, u)),
            Atom(S2, (sy, v)),
            Atom(S3, (sz, w)),
        ],
    )
    return query, database


def clique_fixture():
    """A 4-clique with two tiny opposite edges and four large ones.

    Greedy's edge-at-a-time extension from the cheapest scan cannot see
    that interleaving the two tiny edges early keeps every intermediate
    small; the DP's exhaustive connected-subset search does.
    """
    names = ("R12", "R13", "R14", "R23", "R24", "R34")
    R12, R13, R14, R23, R24, R34 = (Predicate(name, 2) for name in names)
    database = Database()
    rng = random.Random(0)

    def fill(predicate, rows, left_domain, right_domain, left_tag, right_tag):
        for _ in range(rows):
            database.add(
                Atom(
                    predicate,
                    (
                        Constant(f"{left_tag}{rng.randrange(left_domain)}"),
                        Constant(f"{right_tag}{rng.randrange(right_domain)}"),
                    ),
                )
            )

    fill(R12, 4, 4, 4, "a", "b")
    fill(R13, 60, 4, 8, "a", "c")
    fill(R14, 60, 4, 8, "a", "d")
    fill(R23, 60, 4, 8, "b", "c")
    fill(R24, 60, 4, 8, "b", "d")
    fill(R34, 4, 8, 8, "c", "d")
    y1, y2, y3, y4 = (Variable(f"y{i}") for i in range(1, 5))
    query = ConjunctiveQuery(
        (y1, y2, y3, y4),
        [
            Atom(R12, (y1, y2)),
            Atom(R13, (y1, y3)),
            Atom(R14, (y1, y4)),
            Atom(R23, (y2, y3)),
            Atom(R24, (y2, y4)),
            Atom(R34, (y3, y4)),
        ],
    )
    return query, database


def estimated_join_total(plan):
    """Σ estimated join-output rows — the quantity the DP minimises."""
    return sum(step.estimated_intermediate_rows for step in plan.steps[1:])


def observed_join_total(plan, database):
    return sum(execute_plan(plan, database).intermediate_sizes[1:])


class TestDpBeatsGreedyOnTheMispickFixtures:
    @pytest.mark.parametrize(
        "fixture", [chain_fixture, star_fixture, clique_fixture], ids=lambda f: f.__name__
    )
    def test_dp_strictly_cheaper_estimated_and_observed(self, fixture):
        query, database = fixture()
        greedy = plan_greedy(query, database)
        dp = plan_dp(query, database)
        assert estimated_join_total(dp) < estimated_join_total(greedy)
        assert observed_join_total(dp, database) < observed_join_total(
            greedy, database
        )
        expected = evaluate_generic(query, database)
        assert expected  # a mispick fixture with no answers proves nothing
        assert execute_plan(dp, database).answers == expected
        assert execute_plan(greedy, database).answers == expected

    def test_chain_fixture_dp_finds_the_known_optimal_bushy_shape(self):
        query, database = chain_fixture()
        dp = plan_dp(query, database)
        assert dp.tree is not None
        assert (
            dp.tree.render()
            == "((A(x1, x2) ⋈ B(x2, x3)) ⋈ (C(x3, x4) ⋈ D(x4, x5)))"
        )
        # The bushy total: 2 (A⋈B) + 2 (C⋈D) + 2 (top join).
        assert estimated_join_total(dp) == 6
        assert observed_join_total(dp, database) == 6

    def test_dp_matches_greedy_on_both_backends(self):
        query, database = chain_fixture()
        for backend in (None, "columnar"):
            assert evaluate_with_plan(
                query, database, plan_dp, backend=backend
            ) == evaluate_with_plan(query, database, plan_greedy, backend=backend)


# ----------------------------------------------------------------------
# Structural invariants: cross-product pruning, fallback, linear mode
# ----------------------------------------------------------------------
def join_nodes(tree):
    if tree is None or tree.atom is not None:
        return []
    return [tree] + join_nodes(tree.left) + join_nodes(tree.right)


def assert_no_cross_products(tree: PlanTree):
    for node in join_nodes(tree):
        assert node.left.variables() & node.right.variables(), (
            f"disconnected join in {tree.render()}"
        )


class TestStructuralInvariants:
    @pytest.mark.parametrize(
        "fixture", [chain_fixture, star_fixture, clique_fixture], ids=lambda f: f.__name__
    )
    def test_connected_queries_never_join_disconnected_subtrees(self, fixture):
        query, database = fixture()
        dp = plan_dp(query, database)
        assert_no_cross_products(dp.tree)
        # The steps record the same fact for the calibration machinery.
        assert all(step.shares_variables_with_prefix for step in dp.steps[1:])

    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_random_connected_queries_have_no_cross_products(self, seed):
        query, database = randomized_acyclic_workload(seed)
        plan = plan_dp(query, database)
        if plan.tree is None:
            return  # single atom, or an (unused here) fallback
        components = _variable_components(query)
        if len(components) == 1:
            assert_no_cross_products(plan.tree)

    def test_disconnected_queries_chain_components_at_the_top_only(self):
        E, F = Predicate("E", 2), Predicate("F", 2)
        database = Database()
        for i in range(6):
            database.add(Atom(E, (Constant(f"a{i}"), Constant(f"b{i}"))))
            database.add(Atom(F, (Constant(f"c{i}"), Constant(f"d{i % 2}"))))
        query = ConjunctiveQuery(
            (x1, x3),
            [Atom(E, (x1, x2)), Atom(F, (x3, x4)), Atom(F, (x4, x5))],
        )
        plan = plan_dp(query, database)
        assert plan.tree is not None
        # Exactly one cross product (2 components), and it is the root.
        crosses = [
            node
            for node in join_nodes(plan.tree)
            if not (node.left.variables() & node.right.variables())
        ]
        assert crosses == [plan.tree]
        assert execute_plan(plan, database).answers == evaluate_generic(
            query, database
        )

    def test_atom_limit_falls_back_to_the_greedy_left_deep_plan(self):
        E = Predicate("E", 2)
        database = Database()
        for i in range(5):
            database.add(Atom(E, (Constant(f"n{i}"), Constant(f"n{i + 1}"))))
        variables = [Variable(f"v{i}") for i in range(DP_ATOM_LIMIT + 2)]
        body = [
            Atom(E, (variables[i], variables[i + 1]))
            for i in range(DP_ATOM_LIMIT + 1)
        ]
        query = ConjunctiveQuery((variables[0],), body)
        plan = plan_dp(query, database)
        assert plan.tree is None
        assert [step.atom for step in plan.steps] == [
            step.atom for step in plan_greedy(query, database).steps
        ]

    def test_linear_mode_returns_a_left_deep_chain(self):
        query, database = chain_fixture()
        plan = plan_dp_linear(query, database)
        assert plan.tree is None  # an ordinary chain plan, streamable
        answers = execute_plan(plan, database).answers
        assert answers == evaluate_generic(query, database)
        # Best left-deep order is strictly worse than the bushy optimum
        # here, but never worse than greedy's choice.
        assert estimated_join_total(plan) <= estimated_join_total(
            plan_greedy(query, database)
        )
        assert estimated_join_total(plan) >= estimated_join_total(
            plan_dp(query, database)
        )


def _variable_components(query):
    atoms = list(query.body)
    remaining = set(range(len(atoms)))
    components = []
    while remaining:
        frontier = [remaining.pop()]
        component = set(frontier)
        while frontier:
            current = frontier.pop()
            linked = [
                other
                for other in remaining
                if atoms[other].variables() & atoms[current].variables()
            ]
            for other in linked:
                remaining.remove(other)
                component.add(other)
                frontier.append(other)
        components.append(component)
    return components


# ----------------------------------------------------------------------
# Planner resolution (REPRO_PLANNER, streaming mode)
# ----------------------------------------------------------------------
class TestResolvePlanner:
    def test_default_is_the_dp(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert resolve_planner(None) is plan_dp
        assert resolve_planner("dp") is plan_dp

    def test_streaming_resolves_to_the_linear_dp(self, monkeypatch):
        monkeypatch.delenv(PLANNER_ENV, raising=False)
        assert resolve_planner(None, streaming=True) is plan_dp_linear
        assert resolve_planner("dp", streaming=True) is plan_dp_linear
        # Explicit non-DP choices are honoured even when streaming.
        assert resolve_planner("greedy", streaming=True) is plan_greedy

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(PLANNER_ENV, "greedy")
        assert resolve_planner(None) is plan_greedy

    def test_callables_pass_through(self):
        assert resolve_planner(plan_greedy) is plan_greedy

    def test_unknown_name_is_rejected(self):
        with pytest.raises(ValueError, match="unknown planner"):
            resolve_planner("optimal")


# ----------------------------------------------------------------------
# Differentials: every planner and engine agrees with generic join
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_dp_greedy_and_yannakakis_agree_on_acyclic_workloads(seed):
    query, database = randomized_acyclic_workload(seed)
    expected = evaluate_generic(query, database)
    for backend in (None, "columnar"):
        for planner in (plan_dp, plan_dp_linear, plan_greedy):
            assert (
                evaluate_with_plan(query, database, planner, backend=backend)
                == expected
            ), planner.__name__
    try:
        evaluator = YannakakisEvaluator(query)
    except AcyclicityRequired:
        return  # constant injection made the variable hypergraph cyclic
    assert evaluator.evaluate(database) == expected


def randomized_cyclic_workload_with_constants(seed):
    """The cyclic triangle workload with database constants injected into
    non-head positions (selections inside the bags)."""
    query, database = randomized_cyclic_workload(seed)
    rng = random.Random(seed + 1)
    domain = sorted(database.constants(), key=str)
    head = set(query.head)
    body = []
    for atom in query.body:
        terms = list(atom.terms)
        for position, term in enumerate(terms):
            if term not in head and domain and rng.random() < 0.2:
                terms[position] = rng.choice(domain)
        body.append(Atom(atom.predicate, tuple(terms)))
    return ConjunctiveQuery(query.head, body, name=query.name), database


@settings(max_examples=40, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_decomposition_route_agrees_with_generic_on_cyclic_workloads(seed):
    query, database = randomized_cyclic_workload_with_constants(seed)
    expected = evaluate_generic(query, database)
    evaluator = DecompositionEvaluator(query)
    for backend in (None, "columnar"):
        assert evaluator.evaluate(database, backend=backend) == expected
        assert set(evaluator.iter_answers(database, backend=backend)) == expected
        assert evaluator.boolean(database, backend=backend) == bool(expected)
    # The flat plans agree too (the differential closes the triangle).
    assert evaluate_with_plan(query, database, plan_dp) == expected


# ----------------------------------------------------------------------
# Decomposition route: structure
# ----------------------------------------------------------------------
class TestDecompositionStructure:
    def triangle(self):
        E = Predicate("E", 2)
        database = Database()
        rng = random.Random(3)
        for _ in range(30):
            database.add(
                Atom(E, (Constant(f"n{rng.randrange(6)}"), Constant(f"n{rng.randrange(6)}")))
            )
        query = ConjunctiveQuery(
            (x1,), [Atom(E, (x1, x2)), Atom(E, (x2, x3)), Atom(E, (x3, x1))]
        )
        return query, database

    def test_triangle_collapses_to_one_bag_of_width_two(self):
        query, database = self.triangle()
        evaluator = DecompositionEvaluator(query)
        assert evaluator.decomposition.width == 2
        assert len(list(evaluator.decomposition.nodes())) == 1
        assert evaluator.evaluate(database) == evaluate_generic(query, database)

    def test_bag_schemas_cover_their_bags(self):
        query, database = randomized_cyclic_workload(7)
        evaluator = DecompositionEvaluator(query)
        for node in evaluator.decomposition.nodes():
            bag = frozenset(evaluator.decomposition.bag(node))
            bag_atom = evaluator._bag_atoms[node]
            assert frozenset(bag_atom.terms) == bag
            covered = set()
            for atom in evaluator._bag_cover[node]:
                covered |= atom.variables()
            assert bag <= covered

    def test_explain_renders_the_bag_boundaries(self):
        query, database = self.triangle()
        report = DecompositionEvaluator(query).explain(database)
        assert "Bag[0: " in report
