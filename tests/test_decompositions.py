"""Tests for tree and hypertree decompositions (repro.hypergraph.decompositions)."""

import pytest

from repro.datamodel import Atom, Constant, Instance, Null, Predicate, Variable
from repro.hypergraph import (
    HypertreeDecomposition,
    HypertreeNode,
    TreeDecomposition,
    decomposition_from_elimination_order,
    hypertree_decomposition_of_atoms,
    hypertree_from_join_tree,
    hypertree_from_tree_decomposition,
    hypertree_width_upper_bound,
    instance_treewidth,
    join_tree_of_query_atoms,
    min_degree_order,
    min_fill_order,
    query_treewidth,
    tree_decomposition_min_degree,
    tree_decomposition_min_fill,
    treewidth_exact,
    treewidth_upper_bound,
)
from repro.parser import parse_query
from repro.queries import gaifman_graph_of_atoms
from repro.workloads.generators import cycle_query, path_query, star_query


E = Predicate("E", 2)
R = Predicate("R", 2)


def clique_graph(size):
    """Adjacency graph of a clique over ``size`` integer vertices."""
    return {i: {j for j in range(size) if j != i} for i in range(size)}


def path_graph(size):
    """Adjacency graph of a path over ``size`` integer vertices."""
    graph = {i: set() for i in range(size)}
    for i in range(size - 1):
        graph[i].add(i + 1)
        graph[i + 1].add(i)
    return graph


def cycle_graph(size):
    """Adjacency graph of a cycle over ``size`` integer vertices."""
    graph = path_graph(size)
    graph[0].add(size - 1)
    graph[size - 1].add(0)
    return graph


def grid_graph(rows, columns):
    """Adjacency graph of a rows × columns grid."""
    graph = {(i, j): set() for i in range(rows) for j in range(columns)}
    for i in range(rows):
        for j in range(columns):
            if i + 1 < rows:
                graph[(i, j)].add((i + 1, j))
                graph[(i + 1, j)].add((i, j))
            if j + 1 < columns:
                graph[(i, j)].add((i, j + 1))
                graph[(i, j + 1)].add((i, j))
    return graph


class TestTreeDecompositionObject:
    def test_single_bag_decomposition(self):
        decomposition = TreeDecomposition({0: {"x", "y"}})
        assert decomposition.width == 1
        assert decomposition.vertices() == {"x", "y"}
        assert decomposition.edges() == []

    def test_rejects_empty_bag_set(self):
        with pytest.raises(ValueError):
            TreeDecomposition({})

    def test_rejects_edges_to_unknown_bags(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {"x"}}, [(0, 1)])

    def test_rejects_self_loops(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {"x"}, 1: {"y"}}, [(0, 0), (0, 1)])

    def test_rejects_cycles_in_the_bag_graph(self):
        bags = {0: {"a"}, 1: {"b"}, 2: {"c"}}
        with pytest.raises(ValueError):
            TreeDecomposition(bags, [(0, 1), (1, 2), (2, 0)])

    def test_rejects_disconnected_bag_graph(self):
        with pytest.raises(ValueError):
            TreeDecomposition({0: {"a"}, 1: {"b"}}, [])

    def test_validity_check_accepts_a_correct_decomposition(self):
        graph = path_graph(3)
        decomposition = TreeDecomposition({0: {0, 1}, 1: {1, 2}}, [(0, 1)])
        assert decomposition.is_valid_for(graph)

    def test_validity_check_rejects_missing_vertex(self):
        graph = path_graph(3)
        decomposition = TreeDecomposition({0: {0, 1}})
        assert not decomposition.is_valid_for(graph)

    def test_validity_check_rejects_uncovered_edge(self):
        graph = path_graph(3)
        decomposition = TreeDecomposition({0: {0, 1}, 1: {2}}, [(0, 1)])
        assert not decomposition.is_valid_for(graph)

    def test_validity_check_rejects_broken_running_intersection(self):
        graph = path_graph(4)
        # Vertex 1 occurs in two bags that are not adjacent in the bag tree.
        decomposition = TreeDecomposition(
            {0: {0, 1}, 1: {2, 3}, 2: {1, 2}},
            [(0, 1), (1, 2)],
        )
        assert not decomposition.is_valid_for(graph)

    def test_neighbours_and_len(self):
        decomposition = TreeDecomposition({0: {"a"}, 1: {"a", "b"}}, [(0, 1)])
        assert len(decomposition) == 2
        assert decomposition.neighbours(0) == {1}
        assert decomposition.bag(1) == frozenset({"a", "b"})


class TestEliminationOrders:
    def test_orders_cover_every_vertex_once(self):
        graph = cycle_graph(6)
        for order in (min_fill_order(graph), min_degree_order(graph)):
            assert sorted(order) == sorted(graph)

    def test_decomposition_from_any_order_is_valid(self):
        graph = cycle_graph(5)
        order = sorted(graph)
        decomposition = decomposition_from_elimination_order(graph, order)
        assert decomposition.is_valid_for(graph)

    def test_decomposition_rejects_incomplete_order(self):
        graph = path_graph(3)
        with pytest.raises(ValueError):
            decomposition_from_elimination_order(graph, [0, 1])

    def test_min_fill_is_exact_on_trees(self):
        graph = path_graph(8)
        decomposition = tree_decomposition_min_fill(graph)
        assert decomposition.is_valid_for(graph)
        assert decomposition.width == 1

    def test_min_degree_is_exact_on_trees(self):
        graph = path_graph(8)
        decomposition = tree_decomposition_min_degree(graph)
        assert decomposition.is_valid_for(graph)
        assert decomposition.width == 1

    def test_heuristics_on_cliques(self):
        graph = clique_graph(6)
        for decomposition in (
            tree_decomposition_min_fill(graph),
            tree_decomposition_min_degree(graph),
        ):
            assert decomposition.is_valid_for(graph)
            assert decomposition.width == 5

    def test_empty_graph_handled(self):
        assert treewidth_upper_bound({}) == 0
        assert tree_decomposition_min_fill({}).width <= 0


class TestTreewidthValues:
    def test_isolated_vertices_have_width_zero(self):
        graph = {0: set(), 1: set()}
        assert treewidth_upper_bound(graph) == 0
        assert treewidth_exact(graph) == 0

    def test_path_has_width_one(self):
        assert treewidth_exact(path_graph(7)) == 1

    def test_cycle_has_width_two(self):
        assert treewidth_exact(cycle_graph(7)) == 2

    def test_clique_has_width_n_minus_one(self):
        assert treewidth_exact(clique_graph(5)) == 4

    def test_grid_width_matches_side(self):
        graph = grid_graph(3, 3)
        assert treewidth_exact(graph, max_vertices=9) == 3

    def test_exact_never_exceeds_heuristic(self):
        for graph in (cycle_graph(6), grid_graph(2, 4), clique_graph(5)):
            assert treewidth_exact(graph, max_vertices=10) <= treewidth_upper_bound(graph)

    def test_exact_rejects_large_graphs(self):
        with pytest.raises(ValueError):
            treewidth_exact(clique_graph(20), max_vertices=10)


class TestQueryAndInstanceTreewidth:
    def test_acyclic_query_width_bounded_by_arity(self):
        query = path_query(5)
        assert query_treewidth(query.body, exact_limit=10) == 1

    def test_triangle_query_width_two(self, triangle_query):
        assert query_treewidth(triangle_query.body, exact_limit=10) == 2

    def test_star_query_width_one(self):
        query = star_query(6)
        assert query_treewidth(query.body) == 1

    def test_cycle_query_width_two(self):
        query = cycle_query(6)
        assert query_treewidth(query.body, exact_limit=10) == 2

    def test_instance_treewidth_of_a_grid(self):
        from repro.workloads.generators import grid_database

        database = grid_database(3, 3)
        width = instance_treewidth(database, exact_limit=9)
        assert width == 3

    def test_chase_with_example2_tgd_raises_treewidth(self):
        # Example 2: chasing P(x1) ∧ ... ∧ P(xn) with P(x), P(y) → R(x, y)
        # produces an n-clique, so the treewidth jumps from 0 to n - 1.
        from repro.chase import chase_query
        from repro.workloads.paper_examples import example2_query, example2_tgd

        n = 5
        query = example2_query(n)
        assert query_treewidth(query.body, exact_limit=10) == 0
        result, _ = chase_query(query, [example2_tgd()])
        chased_width = instance_treewidth(result.instance, exact_limit=10)
        assert chased_width == n - 1


class TestHypertreeDecompositions:
    def test_join_tree_gives_width_one(self):
        query = path_query(4)
        join_tree = join_tree_of_query_atoms(query.body)
        decomposition = hypertree_from_join_tree(join_tree)
        assert decomposition.width == 1
        assert decomposition.is_valid_for(query.body)

    def test_acyclic_atoms_get_width_one_automatically(self):
        query = star_query(5)
        decomposition = hypertree_decomposition_of_atoms(query.body)
        assert decomposition.width == 1
        assert decomposition.is_valid_for(query.body)

    def test_triangle_gets_width_two(self, triangle_query):
        decomposition = hypertree_decomposition_of_atoms(triangle_query.body)
        assert decomposition.is_valid_for(triangle_query.body)
        assert decomposition.width == 2

    def test_width_upper_bound_of_acyclic_query_is_one(self):
        assert hypertree_width_upper_bound(path_query(6).body) == 1

    def test_rejects_empty_atom_set(self):
        with pytest.raises(ValueError):
            hypertree_decomposition_of_atoms([])

    def test_guards_cover_bags(self, triangle_query):
        decomposition = hypertree_decomposition_of_atoms(triangle_query.body)
        for node in decomposition.nodes():
            covered = set()
            for guard in node.guards:
                covered.update(guard.variables())
            assert set(node.bag) <= covered

    def test_validity_rejects_foreign_guards(self):
        query = parse_query("E(x, y), E(y, z)")
        foreign = Atom(R, (Variable("x"), Variable("y")))
        nodes = {
            0: HypertreeNode(0, frozenset({Variable("x"), Variable("y")}), (foreign,)),
            1: HypertreeNode(
                1,
                frozenset({Variable("y"), Variable("z")}),
                (query.body[1],),
            ),
        }
        decomposition = HypertreeDecomposition(nodes, [(0, 1)])
        assert not decomposition.is_valid_for(query.body)

    def test_validity_rejects_uncovered_bag(self):
        query = parse_query("E(x, y), E(y, z)")
        nodes = {
            0: HypertreeNode(
                0,
                frozenset({Variable("x"), Variable("y"), Variable("z")}),
                (query.body[0],),
            ),
        }
        decomposition = HypertreeDecomposition(nodes)
        assert not decomposition.is_valid_for(query.body)

    def test_hypertree_from_tree_decomposition_on_a_clique_of_edges(self):
        # A clique made of binary atoms: every bag of size k needs ~k/2 guards.
        variables = [Variable(f"x{i}") for i in range(6)]
        atoms = [
            Atom(E, (variables[i], variables[j]))
            for i in range(6)
            for j in range(i + 1, 6)
        ]
        graph = gaifman_graph_of_atoms(atoms)
        tree = tree_decomposition_min_fill(graph)
        decomposition = hypertree_from_tree_decomposition(atoms, tree)
        assert decomposition.is_valid_for(atoms)
        assert decomposition.width >= 3
        assert decomposition.width <= 5

    def test_example2_chase_raises_hypertree_width(self):
        from repro.chase import chase_query
        from repro.workloads.paper_examples import example2_query, example2_tgd

        n = 6
        query = example2_query(n)
        assert hypertree_width_upper_bound(query.body) == 1
        result, _ = chase_query(query, [example2_tgd()])
        atoms = list(result.instance)
        from repro.hypergraph import instance_connectors

        chased_width = hypertree_width_upper_bound(atoms, instance_connectors)
        assert chased_width >= n // 2

    def test_tree_decomposition_accessor(self):
        query = path_query(3)
        decomposition = hypertree_decomposition_of_atoms(query.body)
        underlying = decomposition.tree_decomposition()
        assert isinstance(underlying, TreeDecomposition)
        assert len(underlying) == len(decomposition)
