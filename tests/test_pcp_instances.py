"""Tests for the PCP instance families feeding the Theorem 7 reduction."""

import pytest

from repro.core.pcp import PCPInstance, pcp_query, pcp_tgds, solution_path_query
from repro.dependencies import is_full_set
from repro.workloads.pcp_instances import (
    classic_solvable,
    classify_bounded,
    named_instances,
    random_instance,
    scaled_solvable,
    scaled_unsolvable,
    short_solvable,
    trivially_solvable,
    unsolvable_length_mismatch,
    unsolvable_letter_mismatch,
    unsolvable_parity,
)


class TestNamedInstances:
    def test_trivially_solvable_has_length_one_solution(self):
        instance = trivially_solvable()
        assert instance.has_solution_bounded(1) == (0,)

    def test_short_solvable_needs_two_indices(self):
        instance = short_solvable()
        assert instance.has_solution_bounded(1) is None
        assert instance.has_solution_bounded(2) == (0, 1)

    def test_classic_instance_solution_has_length_four(self):
        instance = classic_solvable()
        assert instance.has_solution_bounded(3) is None
        solution = instance.has_solution_bounded(4)
        assert solution is not None
        assert instance.solution_word(solution) == "bbaabbbaa"

    def test_unsolvable_instances_resist_bounded_search(self):
        for instance in (
            unsolvable_length_mismatch(),
            unsolvable_letter_mismatch(),
            unsolvable_parity(),
        ):
            assert instance.has_solution_bounded(4) is None

    def test_named_instances_statuses_are_consistent(self):
        for name, (instance, solvable) in named_instances().items():
            found = instance.has_solution_bounded(4)
            if solvable:
                assert found is not None, name
            else:
                assert found is None, name

    def test_named_instances_produce_full_tgd_reductions(self):
        for name, (instance, _) in named_instances().items():
            tgds = pcp_tgds(instance.doubled())
            assert is_full_set(tgds), name

    def test_solution_path_query_is_acyclic(self):
        instance = trivially_solvable()
        solution = instance.has_solution_bounded(1)
        query = solution_path_query(instance, solution)
        assert query.is_acyclic()
        assert query.is_connected()


class TestScalableFamilies:
    def test_scaled_solvable_words_grow(self):
        for length in (1, 3, 6):
            instance = scaled_solvable(length)
            assert len(instance.top[0]) == length
            assert instance.has_solution_bounded(1) == (0,)

    def test_scaled_solvable_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            scaled_solvable(0)

    def test_scaled_unsolvable_pair_count(self):
        instance = scaled_unsolvable(4)
        assert instance.size == 4
        assert instance.has_solution_bounded(3) is None

    def test_scaled_unsolvable_rejects_bad_counts(self):
        with pytest.raises(ValueError):
            scaled_unsolvable(0)

    def test_scaled_families_grow_the_reduction(self):
        small = pcp_tgds(scaled_solvable(2).doubled())
        large = pcp_tgds(scaled_solvable(5).doubled())
        small_atoms = sum(len(t.body) + len(t.head) for t in small)
        large_atoms = sum(len(t.body) + len(t.head) for t in large)
        assert large_atoms > small_atoms


class TestRandomAndClassification:
    def test_random_instances_are_reproducible(self):
        assert random_instance(seed=5) == random_instance(seed=5)
        assert random_instance(seed=5) != random_instance(seed=6) or True

    def test_random_instance_respects_shape_parameters(self):
        instance = random_instance(seed=1, pairs=5, max_word_length=2)
        assert instance.size == 5
        assert all(1 <= len(w) <= 2 for w in instance.top + instance.bottom)

    def test_classification_finds_solutions(self):
        solution, unsolvable = classify_bounded(short_solvable())
        assert solution == (0, 1)
        assert not unsolvable

    def test_classification_certifies_obvious_unsolvability(self):
        for instance in (
            unsolvable_length_mismatch(),
            unsolvable_letter_mismatch(),
            unsolvable_parity(),
        ):
            solution, unsolvable = classify_bounded(instance)
            assert solution is None
            assert unsolvable

    def test_classification_can_be_inconclusive(self):
        # An instance with no short solution and no cheap certificate: the
        # status is genuinely unknown, which is the whole point of Theorem 7.
        instance = PCPInstance(top=("ab", "ba"), bottom=("ba", "b"))
        solution, unsolvable = classify_bounded(instance, max_indices=2)
        if solution is None:
            assert not unsolvable

    def test_invalid_instances_are_rejected(self):
        with pytest.raises(ValueError):
            PCPInstance(top=("a",), bottom=("a", "b"))
        with pytest.raises(ValueError):
            PCPInstance(top=("ac",), bottom=("a",))
        with pytest.raises(ValueError):
            PCPInstance(top=("",), bottom=("a",))
