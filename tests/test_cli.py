"""Tests for the command-line interface (repro.cli)."""

import io

import pytest

from repro.cli import build_parser, load_database, load_dependencies, load_query, main


EXAMPLE1_QUERY = "q(x, y) :- Interest(x, z), Class(y, z), Owns(x, y)"
EXAMPLE1_TGD = "Interest(x, z), Class(y, z) -> Owns(x, y)"


def run_cli(argv):
    """Run the CLI and capture its output and exit code."""
    out = io.StringIO()
    code = main(argv, out=out)
    return code, out.getvalue()


class TestInputLoading:
    def test_load_dependencies_from_file_and_inline(self, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text("A(x, y) -> B(x, y)\n% a comment\nB(x, y) -> C(y, z)\n")
        dependencies = load_dependencies(str(rules), ["R(x, y), R(x, z) -> y = z"])
        assert len(dependencies) == 3

    def test_load_database(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c')\n% comment line\n\n")
        database = load_database(str(data))
        assert len(database) == 2

    def test_load_query_requires_exactly_one_source(self, tmp_path):
        with pytest.raises(SystemExit):
            load_query(None, None)
        with pytest.raises(SystemExit):
            load_query("E(x, y)", str(tmp_path / "missing.txt"))

    def test_load_query_from_file(self, tmp_path):
        query_file = tmp_path / "query.txt"
        query_file.write_text("q(x) :- E(x, y)\n")
        query = load_query(None, str(query_file))
        assert len(query.head) == 1


class TestParserConstruction:
    def test_all_subcommands_registered(self):
        parser = build_parser()
        args = parser.parse_args(["classify", "--dependency", "A(x) -> B(x)"])
        assert args.command == "classify"
        for command in ("decide", "chase", "rewrite", "approximate"):
            args = parser.parse_args([command, "--query", "E(x, y)"])
            assert args.command == command

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestClassify:
    def test_classify_inline_tgds(self):
        code, output = run_cli(
            ["classify", "--dependency", "R(x, y) -> S(x, y)"]
        )
        assert code == 0
        assert "tgds: 1" in output
        assert "guarded" in output

    def test_classify_without_dependencies_fails(self):
        code, output = run_cli(["classify"])
        assert code == 1
        assert "no dependencies" in output

    def test_classify_reports_egds(self):
        code, output = run_cli(
            ["classify", "--dependency", "R(x, y), R(x, z) -> y = z"]
        )
        assert code == 0
        assert "egds: 1" in output


class TestDecide:
    def test_example1_is_semantically_acyclic(self):
        code, output = run_cli(
            ["decide", "--query", EXAMPLE1_QUERY, "--dependency", EXAMPLE1_TGD]
        )
        assert code == 0
        assert "semantically acyclic: True" in output
        assert "witness:" in output

    def test_triangle_without_constraints_is_not(self):
        code, output = run_cli(["decide", "--query", "E(x, y), E(y, z), E(z, x)"])
        assert code == 2
        assert "semantically acyclic: False" in output

    def test_decide_with_constraint_file(self, tmp_path):
        rules = tmp_path / "rules.txt"
        rules.write_text(EXAMPLE1_TGD + "\n")
        code, output = run_cli(
            ["decide", "--query", EXAMPLE1_QUERY, "--constraints", str(rules)]
        )
        assert code == 0
        assert "semantically acyclic: True" in output

    def test_decide_rejects_mixed_constraint_kinds(self):
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "decide",
                    "--query",
                    EXAMPLE1_QUERY,
                    "--dependency",
                    EXAMPLE1_TGD,
                    "--dependency",
                    "Owns(x, y), Owns(x, z) -> y = z",
                ]
            )


class TestChase:
    def test_chase_a_query(self):
        code, output = run_cli(
            [
                "chase",
                "--query",
                "A(x, y)",
                "--dependency",
                "A(x, y) -> B(x, y)",
                "--print-atoms",
            ]
        )
        assert code == 0
        assert "terminated: True" in output
        assert "atoms: 2" in output
        assert "B(" in output

    def test_chase_a_data_file(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\n")
        code, output = run_cli(
            [
                "chase",
                "--data",
                str(data),
                "--dependency",
                "E(x, y), E(y, z) -> E(x, z)",
            ]
        )
        assert code == 0
        assert "atoms: 3" in output

    def test_chase_reports_budget_exhaustion(self):
        code, output = run_cli(
            [
                "chase",
                "--query",
                "E(x, y)",
                "--dependency",
                "E(x, y) -> E(y, z)",
                "--max-steps",
                "5",
            ]
        )
        assert code == 3
        assert "terminated: False" in output

    def test_chase_with_egds(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("R('a', 'b').\nR('a', 'c').\n")
        code, output = run_cli(
            ["chase", "--data", str(data), "--dependency", "R(x, y), R(x, z) -> y = z"]
        )
        # Two distinct constants cannot be merged: the chase fails.
        assert code == 3
        assert "terminated: False" in output


class TestRewriteApproximateEvaluate:
    def test_rewrite_under_inclusion_dependency(self):
        code, output = run_cli(
            [
                "rewrite",
                "--query",
                "Owns(x, y)",
                "--dependency",
                "Premium(x, y) -> Owns(x, y)",
            ]
        )
        assert code == 0
        assert "disjuncts: 2" in output

    def test_rewrite_rejects_egds(self):
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "rewrite",
                    "--query",
                    "R(x, y)",
                    "--dependency",
                    "R(x, y), R(x, z) -> y = z",
                ]
            )

    def test_approximate_cyclic_query(self):
        code, output = run_cli(
            ["approximate", "--query", "E(x, y), E(y, z), E(z, x)"]
        )
        assert code == 0
        assert "approximations:" in output

    def test_evaluate_acyclic_query(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\n")
        code, output = run_cli(
            ["evaluate", "--query", "q(x, z) :- E(x, y), E(y, z)", "--data", str(data)]
        )
        assert code == 0
        assert "evaluation: yannakakis" in output
        assert "answers: 1" in output

    def test_evaluate_reformulates_under_constraints(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text(
            "Interest('c1', 's1').\nClass('r1', 's1').\nOwns('c1', 'r1').\n"
        )
        code, output = run_cli(
            [
                "evaluate",
                "--query",
                EXAMPLE1_QUERY,
                "--data",
                str(data),
                "--dependency",
                EXAMPLE1_TGD,
            ]
        )
        assert code == 0
        assert "reformulated+yannakakis" in output
        assert "answers: 1" in output

    def test_evaluate_cyclic_query_without_constraints_uses_decomposition(
        self, tmp_path
    ):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\nE('c', 'a').\n")
        code, output = run_cli(
            ["evaluate", "--query", "E(x, y), E(y, z), E(z, x)", "--data", str(data)]
        )
        assert code == 0
        assert "evaluation: decomposition" in output
        assert "answers: 1" in output


class TestEvaluateEngineAndLimit:
    def write_path(self, tmp_path, n=5):
        data = tmp_path / "facts.txt"
        data.write_text("".join(f"E('n{i}', 'n{i + 1}').\n" for i in range(n)))
        return data

    def test_engine_generic_is_selectable(self, tmp_path):
        data = self.write_path(tmp_path)
        code, output = run_cli(
            [
                "evaluate",
                "--query",
                "q(x, z) :- E(x, y), E(y, z)",
                "--data",
                str(data),
                "--engine",
                "generic",
            ]
        )
        assert code == 0
        assert "evaluation: generic" in output
        assert "answers: 4" in output

    def test_engine_plan_forces_the_plan_route_on_acyclic_queries(self, tmp_path):
        data = self.write_path(tmp_path)
        code, output = run_cli(
            [
                "evaluate",
                "--query",
                "q(x, z) :- E(x, y), E(y, z)",
                "--data",
                str(data),
                "--engine",
                "plan",
            ]
        )
        assert code == 0
        assert "evaluation: plan" in output
        assert "answers: 4" in output

    def test_engine_yannakakis_refuses_cyclic_queries(self, tmp_path):
        data = self.write_path(tmp_path)
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "evaluate",
                    "--query",
                    "E(x, y), E(y, z), E(z, x)",
                    "--data",
                    str(data),
                    "--engine",
                    "yannakakis",
                ]
            )

    def test_engine_reformulation_requires_a_reformulation(self, tmp_path):
        data = self.write_path(tmp_path)
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "evaluate",
                    "--query",
                    "E(x, y), E(y, z), E(z, x)",
                    "--data",
                    str(data),
                    "--engine",
                    "reformulation",
                ]
            )

    def test_limit_streams_a_prefix_of_the_answers(self, tmp_path):
        data = self.write_path(tmp_path, n=6)
        code, output = run_cli(
            [
                "evaluate",
                "--query",
                "q(x, z) :- E(x, y), E(y, z)",
                "--data",
                str(data),
                "--limit",
                "2",
            ]
        )
        assert code == 0
        assert "limit: 2" in output
        assert "answers: 2" in output

    def test_limit_larger_than_output_yields_everything(self, tmp_path):
        data = self.write_path(tmp_path)
        code, output = run_cli(
            [
                "evaluate",
                "--query",
                "q(x, z) :- E(x, y), E(y, z)",
                "--data",
                str(data),
                "--limit",
                "99",
            ]
        )
        assert code == 0
        assert "answers: 4" in output


class TestExplain:
    def test_explain_acyclic_query_shows_estimates_and_observations(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\n")
        code, output = run_cli(
            ["explain", "--query", "q(x, z) :- E(x, y), E(y, z)", "--data", str(data)]
        )
        assert code == 0
        assert "route: yannakakis" in output
        assert "Scan[E(x, y)]" in output
        assert "est=" in output and "obs=" in output

    def test_explain_cyclic_query_uses_the_decomposition_route(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\nE('c', 'a').\n")
        code, output = run_cli(
            ["explain", "--query", "E(x, y), E(y, z), E(z, x)", "--data", str(data)]
        )
        assert code == 0
        assert "route: decomposition" in output
        assert "decomposition: width" in output

    def test_explain_cyclic_query_can_force_the_plan_route(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\nE('b', 'c').\nE('c', 'a').\n")
        code, output = run_cli(
            [
                "explain",
                "--query",
                "E(x, y), E(y, z), E(z, x)",
                "--data",
                str(data),
                "--engine",
                "plan",
            ]
        )
        assert code == 0
        assert "route: plan" in output
        assert "HashJoin" in output

    def test_explain_reformulated_query_names_the_reformulation(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text(
            "Interest('c1', 's1').\nClass('r1', 's1').\nOwns('c1', 'r1').\n"
        )
        code, output = run_cli(
            [
                "explain",
                "--query",
                EXAMPLE1_QUERY,
                "--data",
                str(data),
                "--dependency",
                EXAMPLE1_TGD,
            ]
        )
        assert code == 0
        assert "route: reformulated" in output
        assert "reformulation:" in output

    def test_explain_no_execute_skips_observed_cardinalities(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\n")
        code, output = run_cli(
            [
                "explain",
                "--query",
                "q(x, y) :- E(x, y)",
                "--data",
                str(data),
                "--no-execute",
            ]
        )
        assert code == 0
        assert "obs=?" in output

    def test_explain_matches_evaluate_on_egd_only_constraints(self, tmp_path):
        """Egd-only sets go through the decision procedure: explain must
        report the same reformulated route that evaluate executes."""
        data = tmp_path / "facts.txt"
        data.write_text("A('x1', 'y1').\nB('y1', 'y1').\n")
        arguments = [
            "--query",
            "q() :- A(x, y), A(x, z), B(y, z)",
            "--data",
            str(data),
            "--dependency",
            "A(x, y), A(x, z) -> y = z",
        ]
        code, evaluated = run_cli(["evaluate", *arguments])
        assert code == 0
        assert "evaluation: reformulated+yannakakis" in evaluated
        code, explained = run_cli(["explain", *arguments])
        assert code == 0
        assert "route: reformulated" in explained
        assert "reformulation:" in explained

    def test_explain_forced_impossible_route_fails_cleanly(self, tmp_path):
        data = tmp_path / "facts.txt"
        data.write_text("E('a', 'b').\n")
        with pytest.raises(SystemExit):
            run_cli(
                [
                    "explain",
                    "--query",
                    "E(x, y), E(y, z), E(z, x)",
                    "--data",
                    str(data),
                    "--engine",
                    "yannakakis",
                ]
            )
