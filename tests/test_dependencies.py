"""Tests for tgds, egds, FDs/keys, class checkers and the connecting operator."""

import pytest

from repro.datamodel import Atom, Constant, Instance, Predicate, Variable
from repro.dependencies import (
    EGD,
    TGD,
    DependencyClass,
    FunctionalDependency,
    affected_positions,
    classify,
    compute_marking,
    connect,
    connect_tgd,
    decidable_semac_classes,
    fds_to_egds,
    is_body_connected_set,
    is_closed_under_connecting,
    is_full_set,
    is_guarded_set,
    is_inclusion_set,
    is_k2_set,
    is_linear_set,
    is_non_recursive_set,
    is_sticky_set,
    is_weakly_acyclic,
    is_weakly_guarded,
    is_weakly_sticky,
    key,
    predicate_graph,
    stratification_depth,
)
from repro.parser import parse_egd, parse_query, parse_tgd
from repro.workloads.paper_examples import (
    example2_tgd,
    example3_tgds,
    figure1_non_sticky_set,
    figure1_sticky_set,
)


R = Predicate("R", 2)
S = Predicate("S", 3)


class TestTGDStructure:
    def test_variable_partition(self):
        tgd = parse_tgd("R(x, y), R(y, z) -> S(x, z, w)")
        assert tgd.frontier_variables() == {Variable("x"), Variable("z")}
        assert tgd.existential_variables() == {Variable("w")}
        assert tgd.body_variables() == {Variable("x"), Variable("y"), Variable("z")}

    def test_full_and_guarded_flags(self):
        full = parse_tgd("R(x, y) -> R(y, x)")
        assert full.is_full()
        guarded = parse_tgd("S(x, y, z), R(x, y) -> R(x, z)")
        assert guarded.is_guarded()
        assert guarded.guard().predicate == S
        unguarded = parse_tgd("R(x, y), R(y, z) -> R(x, z)")
        assert not unguarded.is_guarded()
        with pytest.raises(ValueError):
            unguarded.guard()

    def test_linear_and_inclusion(self):
        inclusion = parse_tgd("R(x, y) -> S(x, y, z)")
        assert inclusion.is_linear()
        assert inclusion.is_inclusion_dependency()
        repeated = parse_tgd("R(x, x) -> S(x, x, z)")
        assert repeated.is_linear()
        assert not repeated.is_inclusion_dependency()

    def test_body_connectedness(self):
        connected = parse_tgd("R(x, y), R(y, z) -> R(x, z)")
        disconnected = parse_tgd("R(x, y), R(u, v) -> S(x, u, w)")
        assert connected.is_body_connected()
        assert not disconnected.is_body_connected()

    def test_satisfaction(self):
        tgd = parse_tgd("R(x, y) -> R(y, x)")
        symmetric = Instance(
            [Atom(R, (Constant("a"), Constant("b"))), Atom(R, (Constant("b"), Constant("a")))]
        )
        asymmetric = Instance([Atom(R, (Constant("a"), Constant("b")))])
        assert tgd.is_satisfied_by(symmetric)
        assert not tgd.is_satisfied_by(asymmetric)

    def test_existential_satisfaction(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        satisfied = Instance(
            [
                Atom(R, (Constant("a"), Constant("b"))),
                Atom(S, (Constant("a"), Constant("b"), Constant("w"))),
            ]
        )
        assert tgd.is_satisfied_by(satisfied)

    def test_rename_apart(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        renamed = tgd.rename_apart([Variable("x"), Variable("z")])
        assert Variable("x") not in renamed.body_variables()
        assert Variable("z") not in renamed.head_variables() - renamed.body_variables() or True
        assert renamed.is_linear()

    def test_validation(self):
        with pytest.raises(ValueError):
            TGD([], [Atom(R, (Variable("x"), Variable("y")))])
        with pytest.raises(ValueError):
            TGD([Atom(R, (Variable("x"), Variable("y")))], [])


class TestEGDAndFDs:
    def test_egd_requires_body_variables(self):
        with pytest.raises(ValueError):
            EGD([Atom(R, (Variable("x"), Variable("y")))], Variable("x"), Variable("z"))

    def test_egd_satisfaction_and_violations(self):
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        functional = Instance([Atom(R, (Constant("a"), Constant("b")))])
        violating = Instance(
            [Atom(R, (Constant("a"), Constant("b"))), Atom(R, (Constant("a"), Constant("c")))]
        )
        assert egd.is_satisfied_by(functional)
        assert not egd.is_satisfied_by(violating)
        assert len(list(egd.violations(violating))) > 0

    def test_fd_to_egds(self):
        fd = FunctionalDependency.of(S, {1}, {3})
        egds = fd.to_egds()
        assert len(egds) == 1
        assert egds[0].max_arity() == 3

    def test_trivial_fd_compiles_to_nothing(self):
        fd = FunctionalDependency.of(S, {1, 2}, {1})
        assert fd.to_egds() == []

    def test_fd_validation(self):
        with pytest.raises(ValueError):
            FunctionalDependency.of(R, {1}, {5})
        with pytest.raises(ValueError):
            FunctionalDependency.of(R, set(), {2})

    def test_key_helper(self):
        fd = key(S, {1})
        assert fd.is_key()
        assert fd.determinant == frozenset({1})
        assert fd.dependent == frozenset({2, 3})
        with pytest.raises(ValueError):
            key(R, {1, 2})

    def test_k2_classification(self):
        binary_key = key(R, {1})
        ternary_key = key(S, {1})
        assert is_k2_set([binary_key])
        assert not is_k2_set([ternary_key])
        assert not is_k2_set([FunctionalDependency.of(S, {1}, {2})])  # not a key

    def test_unary_fd(self):
        assert FunctionalDependency.of(S, {1}, {2}).is_unary()
        assert not FunctionalDependency.of(S, {1, 2}, {3}).is_unary()


class TestClassification:
    def test_full_set(self):
        assert is_full_set([parse_tgd("R(x, y) -> R(y, x)")])
        assert not is_full_set([parse_tgd("R(x, y) -> R(y, z)")])

    def test_guarded_linear_inclusion(self):
        inclusion = [parse_tgd("R(x, y) -> S(x, y, z)")]
        assert is_guarded_set(inclusion)
        assert is_linear_set(inclusion)
        assert is_inclusion_set(inclusion)
        guarded_not_linear = [parse_tgd("S(x, y, z), R(x, y) -> R(y, z)")]
        assert is_guarded_set(guarded_not_linear)
        assert not is_linear_set(guarded_not_linear)

    def test_non_recursive(self):
        chain = [parse_tgd("R(x, y) -> S(x, y, z)")]
        assert is_non_recursive_set(chain)
        loop = [parse_tgd("R(x, y) -> R(y, z)")]
        assert not is_non_recursive_set(loop)

    def test_predicate_graph_and_depth(self):
        tgds = [parse_tgd("R(x, y) -> S(x, y, z)"), parse_tgd("S(x, y, z) -> T(x)")]
        graph = predicate_graph(tgds)
        assert Predicate("T", 1) in graph
        assert stratification_depth(tgds) == 2
        with pytest.raises(ValueError):
            stratification_depth([parse_tgd("R(x, y) -> R(y, z)")])

    def test_figure1_stickiness(self):
        assert is_sticky_set(figure1_sticky_set())
        assert not is_sticky_set(figure1_non_sticky_set())

    def test_figure1_marking_details(self):
        marking = compute_marking(figure1_non_sticky_set())
        # In the non-sticky set the join variable y of the second rule ends up marked.
        violating = marking.violating_tgds()
        assert violating == [1]
        sticky_marking = compute_marking(figure1_sticky_set())
        assert sticky_marking.is_sticky()
        assert sticky_marking.violating_tgds() == []

    def test_transitivity_is_not_sticky(self):
        transitivity = [parse_tgd("R(x, y), R(y, z) -> R(x, z)")]
        assert not is_sticky_set(transitivity)

    def test_example2_is_sticky_and_non_recursive_but_not_guarded(self):
        tgds = [example2_tgd()]
        found = classify(tgds)
        assert DependencyClass.STICKY in found
        assert DependencyClass.NON_RECURSIVE in found
        assert DependencyClass.GUARDED not in found

    def test_example3_is_sticky(self):
        assert is_sticky_set(example3_tgds(3))

    def test_weak_acyclicity(self):
        weakly_acyclic = [parse_tgd("R(x, y) -> S(x, y, z)")]
        assert is_weakly_acyclic(weakly_acyclic)
        not_weakly_acyclic = [parse_tgd("R(x, y) -> R(y, z)")]
        assert not is_weakly_acyclic(not_weakly_acyclic)
        full_recursive = [parse_tgd("R(x, y) -> R(y, x)")]
        assert is_weakly_acyclic(full_recursive)

    def test_affected_positions(self):
        tgds = [parse_tgd("R(x, y) -> R(y, z)")]
        affected = affected_positions(tgds)
        assert (R, 1) in affected
        # Propagation: the affected value can flow into position 0 as well.
        assert (R, 0) in affected

    def test_weakly_guarded_and_sticky_extend_plain_classes(self):
        guarded = [parse_tgd("S(x, y, z) -> R(x, y)")]
        assert is_weakly_guarded(guarded)
        sticky = figure1_sticky_set()
        assert is_weakly_sticky(sticky)
        # Full tgds are weakly guarded / weakly sticky even when not guarded/sticky.
        transitivity = [parse_tgd("R(x, y), R(y, z) -> R(x, z)")]
        assert is_weakly_guarded(transitivity)
        assert is_weakly_sticky(transitivity)

    def test_body_connected_set(self):
        assert is_body_connected_set([parse_tgd("R(x, y), R(y, z) -> R(x, z)")])
        assert not is_body_connected_set([parse_tgd("R(x, y), R(u, v) -> S(x, u, w)")])

    def test_decidable_semac_classes(self):
        guarded = [parse_tgd("R(x, y) -> R(y, z)")]
        assert DependencyClass.GUARDED in decidable_semac_classes(guarded)
        full_transitive = [parse_tgd("R(x, y), R(y, z) -> R(x, z)")]
        assert not decidable_semac_classes(full_transitive)


class TestConnectingOperator:
    def test_connected_queries_shapes(self):
        acyclic = parse_query("R(x, y), R(y, z)")
        other = parse_query("R(x, y), R(y, z), R(z, x)")
        tgds = [parse_tgd("R(x, y) -> R(y, z)")]
        connected = connect(acyclic, other, tgds)
        # c(q) stays acyclic and becomes connected; c(q') contains the aux triangle.
        assert connected.left_query.is_acyclic()
        assert connected.left_query.is_connected()
        assert connected.right_query.is_connected()
        assert not connected.right_query.is_acyclic()
        assert all(tgd.is_body_connected() for tgd in connected.tgds)

    def test_connect_tgd_preserves_classes(self):
        guarded = [parse_tgd("S(x, y, z), R(x, y) -> R(y, z)")]
        assert is_closed_under_connecting(guarded, is_guarded_set)
        linear = [parse_tgd("R(x, y) -> S(x, y, z)")]
        assert is_closed_under_connecting(linear, is_linear_set)
        non_recursive = [parse_tgd("R(x, y) -> S(x, y, z)")]
        assert is_closed_under_connecting(non_recursive, is_non_recursive_set)
        sticky = figure1_sticky_set()
        assert is_closed_under_connecting(sticky, is_sticky_set)

    def test_connecting_rejects_non_boolean_queries(self):
        from repro.dependencies.connecting import connect_query_simple

        with pytest.raises(ValueError):
            connect_query_simple(parse_query("q(x) :- R(x, y)"))

    def test_connecting_preserves_containment(self):
        # q ⊆_Σ q' iff c(q) ⊆_{c(Σ)} c(q'); checked here for Σ = ∅ in both directions.
        from repro.containment import cq_contained_in

        acyclic = parse_query("R(x, y), R(y, z)")
        edge = parse_query("R(x, y)")
        held = connect(acyclic, edge, [])
        assert cq_contained_in(acyclic, edge)
        assert cq_contained_in(held.left_query, held.right_query)

        not_held = connect(edge, parse_query("R(x, y), R(y, z), R(z, w)"), [])
        assert not cq_contained_in(edge, parse_query("R(x, y), R(y, z), R(z, w)"))
        assert not cq_contained_in(not_held.left_query, not_held.right_query)
