"""The convention lint itself runs under tier-1, so a violating change
fails `make test` even before CI runs `make lint`."""

import pathlib
import subprocess
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def run_script(name):
    return subprocess.run(
        [sys.executable, str(REPO_ROOT / "scripts" / name)],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )


def test_convention_lint_is_clean():
    result = run_script("lint_conventions.py")
    assert result.returncode == 0, result.stdout + result.stderr
    assert "conventions hold" in result.stdout


def test_typecheck_wrapper_runs():
    """Exit 0 both where mypy exists (clean tree) and where it is absent
    (graceful skip) — either way the wrapper must not crash."""
    result = run_script("run_typecheck.py")
    assert result.returncode == 0, result.stdout + result.stderr
