"""Tests for the tgd chase, the egd chase, the guarded forest and preservation."""

import pytest

from repro.chase import (
    ChaseBudgetExceeded,
    EGDChaseFailure,
    chase,
    chase_query,
    chase_terminates,
    chased_query,
    egd_chase,
    egd_chase_query,
    egd_chase_preserves_acyclicity,
    fd_chase_query,
    guarded_chase_forest,
    guarded_chase_join_tree,
    tgd_chase_preserves_acyclicity,
)
from repro.datamodel import Atom, Constant, Instance, Predicate, Variable
from repro.dependencies import FunctionalDependency, key
from repro.hypergraph import instance_connectors, is_acyclic_instance, is_valid_join_tree
from repro.parser import parse_egd, parse_query, parse_tgd
from repro.workloads.paper_examples import (
    example2_query,
    example2_tgd,
    example4_key,
    example4_query,
    example5_keys,
    example5_ring_query,
    k2_collapse_example,
)


R = Predicate("R", 2)
S = Predicate("S", 3)


def instance_of(*facts):
    return Instance(facts)


class TestTgdChase:
    def test_full_tgd_fixpoint(self):
        tgd = parse_tgd("R(x, y) -> R(y, x)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd])
        assert result.terminated
        assert Atom(R, (Constant("b"), Constant("a"))) in result.instance
        assert len(result.instance) == 2
        assert result.satisfies([tgd])

    def test_existential_tgd_creates_nulls(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd])
        assert result.terminated
        new_atoms = result.instance.atoms_with_predicate(S)
        assert len(new_atoms) == 1
        assert next(iter(new_atoms)).nulls()

    def test_restricted_chase_does_not_refire_satisfied_heads(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        start = instance_of(
            Atom(R, (Constant("a"), Constant("b"))),
            Atom(S, (Constant("a"), Constant("b"), Constant("c"))),
        )
        result = chase(start, [tgd])
        assert result.terminated
        assert len(result.instance) == 2
        assert result.step_count == 0

    def test_oblivious_chase_fires_anyway(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        start = instance_of(
            Atom(R, (Constant("a"), Constant("b"))),
            Atom(S, (Constant("a"), Constant("b"), Constant("c"))),
        )
        result = chase(start, [tgd], variant="oblivious")
        assert result.terminated
        assert len(result.instance) == 3

    def test_non_terminating_chase_hits_budget(self):
        tgd = parse_tgd("R(x, y) -> R(y, z)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd], max_steps=25)
        assert not result.terminated
        assert result.budget_exhausted
        with pytest.raises(ChaseBudgetExceeded):
            chase(start, [tgd], max_steps=25, on_budget="raise")
        assert not chase_terminates(start, [tgd], max_steps=25)

    def test_depth_bounded_chase(self):
        tgd = parse_tgd("R(x, y) -> R(y, z)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd], max_depth=3, max_steps=1000)
        assert result.budget_exhausted
        assert result.max_depth() <= 3

    def test_chase_query_freezes_variables(self):
        query = parse_query("q(x) :- R(x, y)")
        tgd = parse_tgd("R(x, y) -> R(y, x)")
        result, freezing = chase_query(query, [tgd])
        assert result.terminated
        assert Variable("x") in freezing
        assert len(result.instance) == 2

    def test_invalid_variant_rejected(self):
        with pytest.raises(ValueError):
            chase(Instance(), [parse_tgd("R(x, y) -> R(y, x)")], variant="bogus")

    def test_chase_step_records_depth_and_premises(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd])
        step = result.steps[0]
        assert step.depth == 1
        assert step.premise_atoms[0] in start
        assert all(atom in result.instance for atom in step.new_atoms)

    def test_multi_head_tgd(self):
        tgd = parse_tgd("R(x, y) -> S(x, y, z), R(y, z)")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = chase(start, [tgd], max_steps=50)
        # The generated R(y, z) keeps triggering the rule: the chase does not terminate.
        assert not result.terminated
        assert len(result.instance.atoms_with_predicate(S)) > 1


class TestEgdChase:
    def test_key_merges_nulls_and_frozen_constants(self):
        query = parse_query("R(x, y), R(x, z), S(y, z, w)")
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        result, freezing = egd_chase_query(query, [egd])
        assert not result.failed
        assert len(result.instance.atoms_with_predicate(R)) == 1
        merged = {result.resolve(freezing[Variable("y")]), result.resolve(freezing[Variable("z")])}
        assert len(merged) == 1

    def test_constant_conflict_fails(self):
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        start = instance_of(
            Atom(R, (Constant("a"), Constant("b"))),
            Atom(R, (Constant("a"), Constant("c"))),
        )
        with pytest.raises(EGDChaseFailure):
            egd_chase(start, [egd])
        result = egd_chase(start, [egd], on_failure="return")
        assert result.failed

    def test_constant_wins_over_null(self):
        from repro.datamodel import Null

        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        start = instance_of(
            Atom(R, (Constant("a"), Constant("b"))),
            Atom(R, (Constant("a"), Null("n"))),
        )
        result = egd_chase(start, [egd])
        assert not result.failed
        assert result.resolve(Null("n")) == Constant("b")

    def test_chase_is_idempotent_on_satisfying_instances(self):
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        start = instance_of(Atom(R, (Constant("a"), Constant("b"))))
        result = egd_chase(start, [egd])
        assert result.instance == start
        assert not result.steps

    def test_fd_chase_query(self):
        query = parse_query("R(x, y), R(x, z)")
        fd = key(R, {1})
        result, _ = fd_chase_query(query, [fd])
        assert len(result.instance) == 1

    def test_chased_query_example4(self):
        chased = chased_query(example4_query(), [example4_key()])
        assert len(chased) == 4
        assert not chased.is_acyclic()

    def test_chased_query_preserves_head(self):
        query = parse_query("q(x) :- R(x, y), R(x, z)")
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        chased = chased_query(query, [egd])
        assert len(chased.head) == 1
        assert len(chased) == 1


class TestGuardedForest:
    def test_forest_requires_guarded_sets(self):
        query = parse_query("R(x, y)")
        unguarded = [parse_tgd("R(x, y), R(y, z) -> R(x, z)")]
        with pytest.raises(ValueError):
            guarded_chase_forest(query, unguarded)

    def test_forest_parents_are_guard_images(self):
        query = parse_query("R(x, y)")
        tgds = [parse_tgd("R(x, y) -> S(x, y, z)")]
        forest = guarded_chase_forest(query, tgds)
        assert len(forest.parent_atom) == 1
        derived, anchor = next(iter(forest.parent_atom.items()))
        assert anchor in forest.roots
        assert forest.depth_of(derived) == 1

    def test_join_tree_of_guarded_chase_is_valid(self):
        query = parse_query("R(x, y), R(y, z)")
        tgds = [
            parse_tgd("R(x, y) -> S(x, y, w)"),
            parse_tgd("S(x, y, w) -> R(y, w)"),
        ]
        tree, forest = guarded_chase_join_tree(query, tgds, max_steps=200, max_depth=4)
        chase_atoms = forest.chase.instance.sorted_atoms()
        assert is_valid_join_tree(tree, chase_atoms, instance_connectors)

    def test_join_tree_requires_acyclic_query(self, triangle_query):
        tgds = [parse_tgd("E(x, y) -> E(y, x)")]
        with pytest.raises(ValueError):
            guarded_chase_join_tree(triangle_query, tgds)


class TestAcyclicityPreservation:
    def test_guarded_sets_preserve_acyclicity(self):
        query = parse_query("R(x, y), R(y, z)")
        tgds = [parse_tgd("R(x, y) -> S(x, y, w)"), parse_tgd("S(x, y, w) -> R(x, w)")]
        report = tgd_chase_preserves_acyclicity(query, tgds, max_steps=500, max_depth=4)
        assert report.query_acyclic
        assert report.chase_acyclic
        assert report.preserved

    def test_example2_destroys_acyclicity(self):
        report = tgd_chase_preserves_acyclicity(example2_query(4), [example2_tgd()])
        assert report.query_acyclic
        assert not report.chase_acyclic
        assert not report.preserved
        assert report.chase_terminated

    def test_example4_key_destroys_acyclicity(self):
        report = egd_chase_preserves_acyclicity(example4_query(), [example4_key()])
        assert report.query_acyclic
        assert not report.chase_acyclic

    def test_example5_ring_destroys_acyclicity(self):
        report = egd_chase_preserves_acyclicity(example5_ring_query(5), example5_keys())
        assert report.query_acyclic
        assert not report.chase_acyclic

    def test_k2_keys_preserve_acyclicity(self):
        # Proposition 22: keys over unary/binary predicates preserve acyclicity.
        query = parse_query("A(x, y), A(x, z), B(z, w)")
        egd = parse_egd("A(x, y), A(x, z) -> y = z")
        report = egd_chase_preserves_acyclicity(query, [egd])
        assert report.query_acyclic
        assert report.chase_acyclic
        assert report.preserved

    def test_k2_collapse_example_stays_acyclic_after_chase(self):
        query, egds = k2_collapse_example()
        # The query itself is cyclic, so "preserved" is vacuous, but the chase
        # must produce an acyclic instance (this is what makes it a positive
        # SemAc instance).
        report = egd_chase_preserves_acyclicity(query, egds)
        assert not report.query_acyclic
        assert report.chase_acyclic
