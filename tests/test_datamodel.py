"""Tests for the relational data model (terms, atoms, schemas, instances)."""

import pytest

from repro.datamodel import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    Schema,
    TermFactory,
    Variable,
    freeze_variable,
    instance_from_tuples,
    is_frozen_constant,
    unfreeze_constant,
)


class TestTerms:
    def test_constants_equal_by_name(self):
        assert Constant("a") == Constant("a")
        assert Constant("a") != Constant("b")

    def test_term_kinds_are_disjoint(self):
        assert Constant("a") != Variable("a")
        assert Null("a") != Variable("a")
        assert Constant("a") != Null("a")

    def test_kind_flags(self):
        assert Constant("a").is_constant and not Constant("a").is_variable
        assert Variable("x").is_variable and not Variable("x").is_null
        assert Null("n").is_null and not Null("n").is_constant

    def test_terms_are_hashable(self):
        bag = {Constant("a"), Variable("a"), Null("a")}
        assert len(bag) == 3

    def test_factory_produces_distinct_terms(self):
        factory = TermFactory()
        nulls = factory.fresh_nulls(10)
        variables = factory.fresh_variables(10)
        assert len(set(nulls)) == 10
        assert len(set(variables)) == 10

    def test_freeze_round_trip(self):
        variable = Variable("x")
        frozen = freeze_variable(variable)
        assert is_frozen_constant(frozen)
        assert unfreeze_constant(frozen) == variable

    def test_freeze_is_injective(self):
        assert freeze_variable(Variable("x")) != freeze_variable(Variable("y"))

    def test_unfreeze_rejects_plain_constants(self):
        with pytest.raises(ValueError):
            unfreeze_constant(Constant("a"))

    def test_plain_constant_is_not_frozen(self):
        assert not is_frozen_constant(Constant("a"))
        assert not is_frozen_constant(Variable("x"))


class TestAtoms:
    def test_arity_is_checked(self):
        with pytest.raises(ValueError):
            Atom(Predicate("R", 2), (Variable("x"),))

    def test_predicate_call_shortcut(self):
        R = Predicate("R", 2)
        atom = R(Variable("x"), Constant("a"))
        assert atom.predicate == R
        assert atom.terms == (Variable("x"), Constant("a"))

    def test_term_partition(self):
        atom = Atom(Predicate("R", 3), (Variable("x"), Constant("a"), Null("n")))
        assert atom.variables() == {Variable("x")}
        assert atom.constants() == {Constant("a")}
        assert atom.nulls() == {Null("n")}
        assert not atom.is_ground()

    def test_apply_substitution(self):
        atom = Atom(Predicate("R", 2), (Variable("x"), Variable("y")))
        image = atom.apply({Variable("x"): Constant("a")})
        assert image.terms == (Constant("a"), Variable("y"))

    def test_positions_of(self):
        atom = Atom(Predicate("R", 3), (Variable("x"), Variable("y"), Variable("x")))
        assert atom.positions_of(Variable("x")) == (0, 2)

    def test_atoms_are_hashable_and_equal_by_value(self):
        left = Atom(Predicate("R", 1), (Constant("a"),))
        right = Atom(Predicate("R", 1), (Constant("a"),))
        assert left == right
        assert len({left, right}) == 1


class TestSchema:
    def test_add_and_lookup(self):
        schema = Schema([Predicate("R", 2)])
        assert schema.predicate("R").arity == 2
        assert "R" in schema

    def test_arity_conflict_is_rejected(self):
        schema = Schema([Predicate("R", 2)])
        with pytest.raises(ValueError):
            schema.add(Predicate("R", 3))

    def test_predicate_declared_on_the_fly(self):
        schema = Schema()
        predicate = schema.predicate("S", 3)
        assert predicate in schema

    def test_unknown_predicate_without_arity(self):
        schema = Schema()
        with pytest.raises(KeyError):
            schema.predicate("missing")

    def test_max_arity(self):
        schema = Schema([Predicate("R", 2), Predicate("S", 4)])
        assert schema.max_arity == 4
        assert Schema().max_arity == 0

    def test_from_atoms_and_union(self):
        atoms = [Atom(Predicate("R", 1), (Constant("a"),))]
        schema = Schema.from_atoms(atoms)
        merged = schema.union(Schema([Predicate("S", 2)]))
        assert len(merged) == 2


class TestInstance:
    def _sample(self):
        R = Predicate("R", 2)
        S = Predicate("S", 1)
        return Instance(
            [
                Atom(R, (Constant("a"), Constant("b"))),
                Atom(R, (Constant("b"), Null("n1"))),
                Atom(S, (Constant("a"),)),
            ]
        )

    def test_len_and_contains(self):
        instance = self._sample()
        assert len(instance) == 3
        assert Atom(Predicate("S", 1), (Constant("a"),)) in instance

    def test_rejects_non_ground_atoms(self):
        with pytest.raises(ValueError):
            Instance([Atom(Predicate("R", 1), (Variable("x"),))])

    def test_add_is_idempotent(self):
        instance = self._sample()
        atom = Atom(Predicate("S", 1), (Constant("a"),))
        assert not instance.add(atom)
        assert len(instance) == 3

    def test_discard(self):
        instance = self._sample()
        atom = Atom(Predicate("S", 1), (Constant("a"),))
        assert instance.discard(atom)
        assert atom not in instance
        assert not instance.discard(atom)

    def test_indexes(self):
        instance = self._sample()
        R = Predicate("R", 2)
        assert len(instance.atoms_with_predicate(R)) == 2
        assert len(instance.atoms_with_term(Constant("a"))) == 2
        assert len(instance.atoms_with_predicate_name("S")) == 1

    def test_domains(self):
        instance = self._sample()
        assert Null("n1") in instance.nulls()
        assert Constant("a") in instance.constants()
        assert not instance.is_database()

    def test_apply_substitution(self):
        instance = self._sample()
        renamed = instance.apply({Null("n1"): Constant("c")})
        assert renamed.is_database()
        assert len(renamed) == 3

    def test_restrict_to_terms(self):
        instance = self._sample()
        restricted = instance.restrict_to_terms([Constant("a"), Constant("b")])
        assert len(restricted) == 2

    def test_restrict_to_predicates(self):
        instance = self._sample()
        restricted = instance.restrict_to_predicates([Predicate("S", 1)])
        assert len(restricted) == 1

    def test_union_and_copy_are_independent(self):
        instance = self._sample()
        other = Instance([Atom(Predicate("T", 1), (Constant("z"),))])
        union = instance.union(other)
        assert len(union) == 4
        assert len(instance) == 3

    def test_instance_from_tuples(self):
        schema = Schema([Predicate("R", 2)])
        database = instance_from_tuples(schema, {"R": [(1, 2), (2, 3)]})
        assert isinstance(database, Database)
        assert len(database) == 2
        with pytest.raises(ValueError):
            instance_from_tuples(schema, {"R": [(1,)]})

    def test_equality_with_sets(self):
        instance = self._sample()
        assert instance == instance.atoms()
        assert instance == instance.copy()
