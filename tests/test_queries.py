"""Tests for CQs, UCQs, homomorphisms, evaluation and core minimisation."""

import pytest

from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.parser import parse_query
from repro.queries import (
    ConjunctiveQuery,
    UnionOfConjunctiveQueries,
    boolean_query,
    contained_in,
    core,
    equivalent_queries,
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    is_core,
    is_homomorphism,
    is_semantically_acyclic_unconstrained,
    query_from_instance,
)


E = Predicate("E", 2)
R = Predicate("R", 2)
S = Predicate("S", 3)


def edge_db(*edges):
    database = Database()
    for source, target in edges:
        database.add(Atom(E, (Constant(source), Constant(target))))
    return database


class TestConjunctiveQuery:
    def test_head_safety_is_enforced(self):
        with pytest.raises(ValueError):
            ConjunctiveQuery((Variable("x"),), [Atom(E, (Variable("y"), Variable("z")))])

    def test_nulls_are_rejected_in_bodies(self):
        from repro.datamodel import Null

        with pytest.raises(ValueError):
            boolean_query([Atom(E, (Null("n"), Variable("x")))])

    def test_basic_accessors(self):
        query = parse_query("q(x) :- E(x, y), E(y, x)")
        assert len(query) == 2
        assert query.head == (Variable("x"),)
        assert query.existential_variables() == {Variable("y")}
        assert not query.is_boolean()

    def test_gaifman_connectivity(self):
        connected = parse_query("E(x, y), E(y, z)")
        disconnected = parse_query("E(x, y), E(u, v)")
        assert connected.is_connected()
        assert not disconnected.is_connected()
        components = disconnected.connected_components()
        assert len(components) == 2

    def test_connected_components_keep_head_variables(self):
        query = parse_query("q(x, u) :- E(x, y), E(u, v)")
        heads = {component.head for component in query.connected_components()}
        assert (Variable("x"),) in heads
        assert (Variable("u"),) in heads

    def test_acyclicity(self, triangle_query, path3_query):
        assert not triangle_query.is_acyclic()
        assert path3_query.is_acyclic()

    def test_alpha_acyclicity_is_not_hereditary(self):
        # Triangle plus a covering atom is acyclic even though the triangle alone is not.
        covered = parse_query("E(x, y), E(y, z), E(z, x), S(x, y, z)")
        assert covered.is_acyclic()

    def test_freeze_produces_canonical_database(self):
        query = parse_query("q(x) :- E(x, y)")
        database, freezing = query.freeze()
        assert len(database) == 1
        assert set(freezing) == {Variable("x"), Variable("y")}
        assert database.is_database()

    def test_evaluation_over_database(self):
        query = parse_query("q(x) :- E(x, y), E(y, x)")
        database = edge_db(("a", "b"), ("b", "a"), ("b", "c"))
        answers = query.evaluate(database)
        assert answers == {(Constant("a"),), (Constant("b"),)}

    def test_boolean_holds_in(self, triangle_query):
        assert triangle_query.holds_in(edge_db(("a", "b"), ("b", "c"), ("c", "a")))
        assert not triangle_query.holds_in(edge_db(("a", "b"), ("b", "c")))

    def test_holds_in_with_answer(self):
        query = parse_query("q(x, y) :- E(x, y)")
        database = edge_db(("a", "b"))
        assert query.holds_in(database, (Constant("a"), Constant("b")))
        assert not query.holds_in(database, (Constant("b"), Constant("a")))
        with pytest.raises(ValueError):
            query.holds_in(database, (Constant("a"),))

    def test_apply_and_rename_apart(self):
        query = parse_query("q(x) :- E(x, y)")
        renamed = query.rename_apart([Variable("x"), Variable("y")])
        assert renamed.variables().isdisjoint({Variable("x"), Variable("y")})
        with pytest.raises(ValueError):
            query.apply({Variable("x"): Constant("a")})

    def test_conjoin(self):
        left = parse_query("q(x) :- E(x, y)")
        right = parse_query("p(z) :- E(z, w)")
        conjunction = left.conjoin(right)
        assert len(conjunction) == 2
        assert conjunction.head == (Variable("x"), Variable("z"))

    def test_subquery_drops_lost_head_variables(self):
        query = parse_query("q(x, w) :- E(x, y), E(z, w)")
        sub = query.subquery([query.body[0]])
        assert sub.head == (Variable("x"),)

    def test_query_from_instance_round_trip(self):
        instance = Instance([Atom(E, (Constant("a"), Constant("b")))])
        query = query_from_instance(instance)
        assert len(query) == 1
        assert query.is_boolean()
        assert query.holds_in(instance)

    def test_syntactic_equality(self):
        first = parse_query("E(x, y), E(y, z)")
        second = parse_query("E(y, z), E(x, y)")
        assert first == second
        assert hash(first) == hash(second)


class TestHomomorphisms:
    def test_all_homomorphisms_enumerated(self):
        query = parse_query("E(x, y)")
        database = edge_db(("a", "b"), ("b", "c"))
        assert len(list(homomorphisms(query.body, database))) == 2

    def test_seed_restricts_search(self):
        query = parse_query("E(x, y)")
        database = edge_db(("a", "b"), ("b", "c"))
        seeded = list(homomorphisms(query.body, database, seed={Variable("x"): Constant("b")}))
        assert len(seeded) == 1
        assert seeded[0][Variable("y")] == Constant("c")

    def test_constants_are_rigid(self):
        query = boolean_query([Atom(E, (Constant("a"), Variable("y")))])
        assert has_homomorphism(query.body, edge_db(("a", "b")))
        assert not has_homomorphism(query.body, edge_db(("b", "a")))

    def test_repeated_variables_force_equality(self):
        loop = boolean_query([Atom(E, (Variable("x"), Variable("x")))])
        assert not has_homomorphism(loop.body, edge_db(("a", "b")))
        assert has_homomorphism(loop.body, edge_db(("a", "a")))

    def test_empty_source_has_trivial_homomorphism(self):
        assert find_homomorphism([], edge_db(("a", "b"))) == {}

    def test_is_homomorphism_checker(self):
        query = parse_query("E(x, y)")
        database = edge_db(("a", "b"))
        mapping = find_homomorphism(query.body, database)
        assert is_homomorphism(mapping, query.body, database)
        assert not is_homomorphism({Variable("x"): Constant("b"), Variable("y"): Constant("a")}, query.body, database)

    def test_homomorphic_equivalence(self):
        from repro.datamodel import Null

        cycle2 = [Atom(E, (Null("a"), Null("b"))), Atom(E, (Null("b"), Null("a")))]
        cycle4 = [
            Atom(E, (Null(1), Null(2))),
            Atom(E, (Null(2), Null(3))),
            Atom(E, (Null(3), Null(4))),
            Atom(E, (Null(4), Null(1))),
        ]
        # The 4-cycle maps onto the 2-cycle but not conversely.
        assert has_homomorphism(cycle4, cycle2)
        assert not has_homomorphism(cycle2, cycle4)
        assert not homomorphically_equivalent(cycle2, cycle4)
        assert homomorphically_equivalent(cycle2, cycle2)


class TestCoreAndContainment:
    def test_containment_chandra_merlin(self):
        path2 = parse_query("E(x, y), E(y, z)")
        edge = parse_query("E(x, y)")
        assert contained_in(path2, edge)
        assert not contained_in(edge, path2)

    def test_containment_respects_head_arity(self):
        unary = parse_query("q(x) :- E(x, y)")
        binary = parse_query("q(x, y) :- E(x, y)")
        assert not contained_in(unary, binary)

    def test_core_folds_redundant_atoms(self):
        query = parse_query("E(x, y), E(x, z)")
        minimal = core(query)
        assert len(minimal) == 1
        assert equivalent_queries(query, minimal)

    def test_core_preserves_free_variables(self):
        query = parse_query("q(x) :- E(x, y), E(x, z)")
        minimal = core(query)
        assert minimal.head == (Variable("x"),)
        assert len(minimal) == 1

    def test_core_of_a_core_is_itself(self, triangle_query):
        assert is_core(triangle_query)
        assert core(triangle_query) == triangle_query

    def test_free_variables_block_folding(self):
        query = parse_query("q(y, z) :- E(x, y), E(x, z)")
        assert is_core(query)

    def test_semantic_acyclicity_unconstrained(self, triangle_query):
        assert not is_semantically_acyclic_unconstrained(triangle_query)
        # A cyclic-looking query with a redundant atom whose core is acyclic.
        redundant = parse_query("E(x, y), E(y, z), E(x, w)")
        assert is_semantically_acyclic_unconstrained(redundant)


class TestUCQ:
    def test_arity_mismatch_rejected(self):
        unary = parse_query("q(x) :- E(x, y)")
        boolean = parse_query("E(x, y)")
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([unary, boolean])

    def test_empty_union_rejected(self):
        with pytest.raises(ValueError):
            UnionOfConjunctiveQueries([])

    def test_evaluation_is_union_of_disjuncts(self):
        q1 = parse_query("q(x) :- E(x, y), E(y, x)")
        q2 = parse_query("q(x) :- E(x, x)")
        ucq = UnionOfConjunctiveQueries([q1, q2])
        database = edge_db(("a", "b"), ("b", "a"), ("c", "c"))
        assert ucq.evaluate(database) == {(Constant("a"),), (Constant("b"),), (Constant("c"),)}

    def test_height_and_sizes(self):
        q1 = parse_query("E(x, y)")
        q2 = parse_query("E(x, y), E(y, z)")
        ucq = UnionOfConjunctiveQueries([q1, q2])
        assert ucq.height() == 2
        assert ucq.total_size() == 3
        assert len(ucq) == 2

    def test_deduplicate_and_without(self):
        q1 = parse_query("E(x, y)")
        q2 = parse_query("E(u, v)")
        ucq = UnionOfConjunctiveQueries([q1, q1, q2])
        assert len(ucq.deduplicate()) == 2
        assert len(ucq.without(q2)) == 2

    def test_is_acyclic(self, triangle_query, path3_query):
        assert UnionOfConjunctiveQueries([path3_query]).is_acyclic()
        assert not UnionOfConjunctiveQueries([path3_query, triangle_query]).is_acyclic()
