"""Tests for chase termination certificates and the variant comparison."""

import pytest

from repro.chase import (
    ChaseComparison,
    certify_termination,
    chase,
    chase_depth_bound,
    compare_chase_variants,
    full_chase_size_bound,
    recommended_step_budget,
)
from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.parser import parse_query, parse_tgd
from repro.workloads.generators import chain_non_recursive_tgds, path_database
from repro.workloads.paper_examples import example1_tgd, example2_tgd


E = Predicate("E", 2)
P = Predicate("P", 1)


def diverging_tgd():
    """E(x, y) → ∃z E(y, z): the textbook non-terminating (oblivious) chase."""
    return parse_tgd("E(x, y) -> E(y, z)", label="diverge")


class TestCertificates:
    def test_empty_set_certificate(self):
        certificate = certify_termination([])
        assert certificate.guaranteed
        assert certificate.reason == "empty"
        assert certificate.depth_bound == 0
        assert bool(certificate)

    def test_full_recursive_tgds_certificate(self):
        # Transitivity is full but recursive, so the "full" reason applies.
        transitivity = parse_tgd("E(x, y), E(y, z) -> E(x, z)", label="trans")
        certificate = certify_termination([transitivity])
        assert certificate.guaranteed
        assert certificate.reason == "full"

    def test_full_non_recursive_tgds_prefer_the_depth_bound(self):
        # Example 1 / Example 2 tgds are full *and* non-recursive; the more
        # informative non-recursive certificate (with a depth bound) wins.
        certificate = certify_termination([example1_tgd(), example2_tgd()])
        assert certificate.guaranteed
        assert certificate.reason == "non-recursive"
        assert certificate.depth_bound is not None

    def test_non_recursive_certificate_reports_stratification_depth(self):
        tgds = chain_non_recursive_tgds(depth=4)
        certificate = certify_termination(tgds)
        assert certificate.guaranteed
        assert certificate.reason == "non-recursive"
        assert certificate.depth_bound == 4

    def test_weakly_acyclic_certificate(self):
        # Recursive on predicates (R feeds R) but the existential position is
        # never copied back, so the set is weakly acyclic.
        tgd = parse_tgd("R(x, y) -> S(y, z)", label="wa")
        tgd2 = parse_tgd("S(x, y) -> R(x, x)", label="wa2")
        certificate = certify_termination([tgd, tgd2])
        assert certificate.guaranteed
        assert certificate.reason in ("weakly-acyclic", "non-recursive")

    def test_diverging_tgd_has_no_certificate(self):
        certificate = certify_termination([diverging_tgd()])
        assert not certificate.guaranteed
        assert certificate.reason == "none"
        assert not bool(certificate)

    def test_certificate_explanations_are_informative(self):
        for tgds in ([], [example1_tgd()], [diverging_tgd()]):
            certificate = certify_termination(tgds)
            assert certificate.explanation
            assert len(certificate.explanation) > 20

    def test_depth_bound_helper_matches_certificate(self):
        tgds = chain_non_recursive_tgds(depth=3)
        assert chase_depth_bound(tgds) == 3
        assert chase_depth_bound([diverging_tgd()]) is None


class TestSizeAndStepBudgets:
    def test_full_size_bound_rejects_non_full_sets(self):
        with pytest.raises(ValueError):
            full_chase_size_bound(Database(), [diverging_tgd()])

    def test_full_size_bound_is_an_actual_bound_on_databases(self):
        database = path_database(4)
        tgds = [parse_tgd("E(x, y), E(y, z) -> E(x, z)", label="trans")]
        bound = full_chase_size_bound(database, tgds)
        result = chase(database, tgds, max_steps=bound + 10)
        assert result.terminated
        assert len(result.instance) <= bound

    def test_full_size_bound_on_queries(self):
        query = parse_query("E(x, y), E(y, z)")
        tgds = [parse_tgd("E(x, y), E(y, z) -> E(x, z)", label="trans")]
        bound = full_chase_size_bound(query, tgds)
        # Three terms and one binary predicate: at most 9 atoms.
        assert bound == 9

    def test_recommended_budget_covers_full_chase(self):
        database = path_database(6)
        tgds = [parse_tgd("E(x, y), E(y, z) -> E(x, z)", label="trans")]
        budget = recommended_step_budget(database, tgds, default=10)
        result = chase(database, tgds, max_steps=budget)
        assert result.terminated

    def test_recommended_budget_respects_cap(self):
        database = path_database(3)
        tgds = [parse_tgd("E(x, y), E(y, z) -> E(x, z)", label="trans")]
        assert recommended_step_budget(database, tgds, default=10, cap=5) == 5

    def test_recommended_budget_defaults_for_uncertified_sets(self):
        database = path_database(3)
        assert recommended_step_budget(database, [diverging_tgd()], default=123) == 123


class TestVariantComparison:
    def test_oblivious_never_smaller_than_restricted(self):
        database = path_database(4)
        tgds = chain_non_recursive_tgds(depth=2)
        # Rename the chain's base predicate to E so it fires on the path.
        tgds = [
            parse_tgd("E(x, y) -> L1(x, y)", label="lift"),
            parse_tgd("L1(x, y) -> L2(x, y)", label="lift2"),
        ]
        comparison = compare_chase_variants(database, tgds)
        assert isinstance(comparison, ChaseComparison)
        assert comparison.both_terminated
        assert comparison.oblivious_size >= comparison.restricted_size
        assert comparison.oblivious_overhead() >= 1.0

    def test_comparison_summary_mentions_both_variants(self):
        database = path_database(2)
        tgds = [parse_tgd("E(x, y) -> S(x, y)", label="copy")]
        comparison = compare_chase_variants(database, tgds)
        summary = comparison.summary()
        assert "restricted" in summary and "oblivious" in summary

    def test_oblivious_overhead_on_already_satisfied_heads(self):
        # A 2-cycle already satisfies E(x, y) → ∃z E(y, z), so the restricted
        # chase adds nothing, while the oblivious chase fires every trigger
        # anyway and keeps inventing nulls until its budget runs out.
        database = Database(
            [
                Atom(E, (Constant("a"), Constant("b"))),
                Atom(E, (Constant("b"), Constant("a"))),
            ]
        )
        tgds = [parse_tgd("E(x, y) -> E(y, z)", label="succ")]
        comparison = compare_chase_variants(database, tgds, max_steps=50)
        assert comparison.restricted.terminated
        assert comparison.restricted_size == len(database)
        assert comparison.oblivious_size >= comparison.restricted_size

    def test_comparison_respects_step_budget(self):
        database = Database([Atom(E, (Constant("a"), Constant("b")))])
        comparison = compare_chase_variants(database, [diverging_tgd()], max_steps=5)
        assert not comparison.oblivious.terminated

    def test_overhead_of_empty_restricted_result(self):
        comparison = compare_chase_variants(Database(), [diverging_tgd()], max_steps=5)
        assert comparison.oblivious_overhead() == 1.0
