"""Tests for dependency implication and minimal covers (repro.containment.implication)."""

import pytest

from repro.containment import (
    ContainmentOutcome,
    dependency_implied,
    minimal_cover,
    redundant_dependencies,
)
from repro.datamodel import Predicate
from repro.dependencies.fd import FunctionalDependency, fds_to_egds, key
from repro.parser import parse_egd, parse_tgd


R3 = Predicate("R", 3)


class TestTgdImplication:
    def test_transitive_chain_is_implied(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("B(x, y) -> C(x, y)", label="bc"),
        ]
        candidate = parse_tgd("A(x, y) -> C(x, y)", label="ac")
        assert dependency_implied(sigma, candidate) is ContainmentOutcome.TRUE

    def test_unrelated_tgd_is_not_implied(self):
        sigma = [parse_tgd("A(x, y) -> B(x, y)", label="ab")]
        candidate = parse_tgd("A(x, y) -> D(x, y)", label="ad")
        assert dependency_implied(sigma, candidate) is ContainmentOutcome.FALSE

    def test_existential_heads_are_handled(self):
        sigma = [parse_tgd("Person(x) -> Parent(x, y)", label="p")]
        candidate = parse_tgd("Person(x) -> Parent(x, z)", label="p2")
        assert dependency_implied(sigma, candidate) is ContainmentOutcome.TRUE

    def test_direction_matters(self):
        sigma = [parse_tgd("A(x, y) -> B(x, y)", label="ab")]
        candidate = parse_tgd("B(x, y) -> A(x, y)", label="ba")
        assert dependency_implied(sigma, candidate) is ContainmentOutcome.FALSE

    def test_every_member_of_sigma_is_implied_by_sigma(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("B(x, y), B(y, z) -> B(x, z)", label="trans"),
        ]
        for dependency in sigma:
            assert dependency_implied(sigma, dependency) is ContainmentOutcome.TRUE

    def test_diverging_sigma_yields_unknown_for_non_implied_candidates(self):
        from repro.containment import ContainmentConfig

        sigma = [parse_tgd("E(x, y) -> E(y, z)", label="diverge")]
        candidate = parse_tgd("E(x, y) -> F(x, y)", label="ef")
        outcome = dependency_implied(sigma, candidate, ContainmentConfig(max_steps=20))
        assert outcome is ContainmentOutcome.UNKNOWN


class TestEgdAndFdImplication:
    def test_fd_transitivity(self):
        # R(a, b, c) with a → b and b → c implies a → c (Armstrong).
        a_to_b = FunctionalDependency.of(R3, {1}, {2})
        b_to_c = FunctionalDependency.of(R3, {2}, {3})
        a_to_c = FunctionalDependency.of(R3, {1}, {3})
        sigma = fds_to_egds([a_to_b, b_to_c])
        for candidate in fds_to_egds([a_to_c]):
            assert dependency_implied(sigma, candidate) is ContainmentOutcome.TRUE

    def test_fd_not_implied(self):
        a_to_b = FunctionalDependency.of(R3, {1}, {2})
        c_to_b = FunctionalDependency.of(R3, {3}, {2})
        sigma = fds_to_egds([a_to_b])
        for candidate in fds_to_egds([c_to_b]):
            assert dependency_implied(sigma, candidate) is ContainmentOutcome.FALSE

    def test_egd_implied_through_tgds(self):
        # Copying R into S and having a key on S forces the key on R as well.
        sigma = [
            parse_tgd("R(x, y) -> S(x, y)", label="copy"),
            parse_egd("S(x, y), S(x, z) -> y = z", label="s_key"),
        ]
        candidate = parse_egd("R(x, y), R(x, z) -> y = z", label="r_key")
        assert dependency_implied(sigma, candidate) is ContainmentOutcome.TRUE

    def test_key_implies_itself(self):
        egds = fds_to_egds([key(Predicate("B", 2), {1})])
        assert dependency_implied(egds, egds[0]) is ContainmentOutcome.TRUE


class TestCovers:
    def test_redundant_dependency_detected(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("B(x, y) -> C(x, y)", label="bc"),
            parse_tgd("A(x, y) -> C(x, y)", label="ac"),
        ]
        assert redundant_dependencies(sigma) == [2]

    def test_minimal_cover_drops_redundant_members(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("B(x, y) -> C(x, y)", label="bc"),
            parse_tgd("A(x, y) -> C(x, y)", label="ac"),
        ]
        cover = minimal_cover(sigma)
        assert len(cover) == 2
        # The cover still implies the dropped dependency.
        assert dependency_implied(cover, sigma[2]) is ContainmentOutcome.TRUE

    def test_minimal_cover_keeps_independent_sets_intact(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="ab"),
            parse_tgd("C(x, y) -> D(x, y)", label="cd"),
        ]
        assert minimal_cover(sigma) == sigma

    def test_minimal_cover_of_duplicates(self):
        sigma = [
            parse_tgd("A(x, y) -> B(x, y)", label="first"),
            parse_tgd("A(u, v) -> B(u, v)", label="second"),
        ]
        assert len(minimal_cover(sigma)) == 1

    def test_empty_set_has_empty_cover(self):
        assert minimal_cover([]) == []
        assert redundant_dependencies([]) == []
