"""Additional property-based tests: decompositions, join plans, containment, reductions.

These complement ``tests/test_property_based.py`` with invariants over the
modules added on top of the original stack (tree/hypertree decompositions,
join-order planning, the incremental containment check, the connecting
operator and the PCP instance families).
"""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.containment import ContainmentOutcome, contained_under_tgds
from repro.core.pcp import PCPInstance
from repro.datamodel import Atom, Constant, Instance, Predicate, Variable
from repro.dependencies import is_body_connected_set, is_guarded_set, is_non_recursive_set
from repro.dependencies.connecting import connect, connect_tgd
from repro.evaluation import evaluate_generic, evaluate_with_plan, execute_plan, plan_greedy
from repro.hypergraph import (
    hypertree_decomposition_of_atoms,
    tree_decomposition_min_degree,
    tree_decomposition_min_fill,
    treewidth_exact,
    treewidth_upper_bound,
)
from repro.queries import ConjunctiveQuery, gaifman_graph_of_atoms
from repro.workloads.generators import (
    random_acyclic_query,
    random_database,
    random_guarded_tgds,
    random_non_recursive_tgds,
    random_schema,
)
from repro.workloads.pcp_instances import classify_bounded, random_instance


SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

PREDICATES = [Predicate("P", 1), Predicate("E", 2), Predicate("T", 3)]
VARIABLES = [Variable(name) for name in "uvwxyz"]
CONSTANTS = [Constant(value) for value in "abcde"]


@st.composite
def query_atoms(draw, max_atoms=6):
    body = []
    for _ in range(draw(st.integers(min_value=1, max_value=max_atoms))):
        predicate = draw(st.sampled_from(PREDICATES))
        terms = tuple(
            draw(st.sampled_from(VARIABLES)) for _ in range(predicate.arity)
        )
        body.append(Atom(predicate, terms))
    return body


@st.composite
def small_graphs(draw, max_vertices=8):
    size = draw(st.integers(min_value=1, max_value=max_vertices))
    graph = {i: set() for i in range(size)}
    for i in range(size):
        for j in range(i + 1, size):
            if draw(st.booleans()):
                graph[i].add(j)
                graph[j].add(i)
    return graph


# ----------------------------------------------------------------------
# Decompositions
# ----------------------------------------------------------------------
@SETTINGS
@given(small_graphs())
def test_heuristic_decompositions_are_valid(graph):
    for decomposition in (
        tree_decomposition_min_fill(graph),
        tree_decomposition_min_degree(graph),
    ):
        assert decomposition.is_valid_for(graph)


@SETTINGS
@given(small_graphs())
def test_exact_treewidth_never_exceeds_heuristics(graph):
    assert treewidth_exact(graph, max_vertices=8) <= treewidth_upper_bound(graph)


@SETTINGS
@given(query_atoms())
def test_hypertree_decompositions_are_valid_and_acyclicity_gives_width_one(body):
    decomposition = hypertree_decomposition_of_atoms(body)
    assert decomposition.is_valid_for(body)
    query = ConjunctiveQuery((), body)
    if query.is_acyclic():
        assert decomposition.width == 1
    else:
        assert decomposition.width >= 2


@SETTINGS
@given(query_atoms())
def test_treewidth_of_query_bounded_by_variable_count(body):
    graph = gaifman_graph_of_atoms(body)
    if not graph:
        return
    width = treewidth_upper_bound(graph)
    assert 0 <= width <= max(len(graph) - 1, 0)


# ----------------------------------------------------------------------
# Join plans
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_join_plans_agree_with_generic_evaluation(seed):
    schema = random_schema(seed=seed % 13, predicate_count=3, max_arity=3)
    query = random_acyclic_query(
        seed=seed, schema=schema, atom_count=4, free_variables=1
    )
    database = random_database(
        seed=seed + 1, schema=schema, facts_per_predicate=12, domain_size=7
    )
    assert evaluate_with_plan(query, database) == evaluate_generic(query, database)


@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_plan_intermediate_sizes_are_recorded_per_step(seed):
    schema = random_schema(seed=seed % 7, predicate_count=3, max_arity=2)
    query = random_acyclic_query(seed=seed, schema=schema, atom_count=3)
    database = random_database(
        seed=seed + 2, schema=schema, facts_per_predicate=8, domain_size=5
    )
    plan = plan_greedy(query, database)
    execution = execute_plan(plan, database)
    assert len(execution.intermediate_sizes) <= len(plan)
    if execution.intermediate_sizes and min(execution.intermediate_sizes) > 0:
        assert len(execution.intermediate_sizes) == len(plan)


# ----------------------------------------------------------------------
# Containment under constraints
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_containment_under_tgds_is_reflexive(seed):
    schema = random_schema(seed=seed % 11, predicate_count=4, max_arity=2)
    query = random_acyclic_query(seed=seed, schema=schema, atom_count=3)
    tgds = random_non_recursive_tgds(seed=seed, schema=schema, count=2)
    assert contained_under_tgds(query, query, tgds) is ContainmentOutcome.TRUE


@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_dropping_an_atom_weakens_the_query_under_constraints(seed):
    schema = random_schema(seed=seed % 11, predicate_count=4, max_arity=2)
    query = random_acyclic_query(seed=seed, schema=schema, atom_count=4)
    if len(query.body) < 2:
        return
    weaker = query.subquery(query.body[:-1])
    if set(query.head) - weaker.variables():
        return
    tgds = random_non_recursive_tgds(seed=seed + 1, schema=schema, count=2)
    assert bool(contained_under_tgds(query, weaker, tgds))


# ----------------------------------------------------------------------
# Connecting operator
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_connecting_operator_guarantees_proposition5_hypotheses(seed):
    schema = random_schema(seed=seed % 9, predicate_count=3, max_arity=2)
    left = random_acyclic_query(seed=seed, schema=schema, atom_count=3)
    right = random_acyclic_query(seed=seed + 1, schema=schema, atom_count=2)
    tgds = random_guarded_tgds(seed=seed, schema=schema, count=2)
    connected = connect(left, right, tgds)
    assert connected.left_query.is_acyclic()
    assert connected.left_query.is_connected()
    assert connected.right_query.is_connected()
    assert not connected.right_query.is_acyclic()
    assert is_body_connected_set(list(connected.tgds))


@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_connecting_preserves_guardedness_and_non_recursiveness(seed):
    schema = random_schema(seed=seed % 9, predicate_count=3, max_arity=2)
    guarded = random_guarded_tgds(seed=seed, schema=schema, count=3)
    assert is_guarded_set([connect_tgd(t) for t in guarded]) == is_guarded_set(guarded)
    non_recursive = random_non_recursive_tgds(seed=seed, schema=schema, count=3)
    assert is_non_recursive_set([connect_tgd(t) for t in non_recursive])


# ----------------------------------------------------------------------
# PCP instances
# ----------------------------------------------------------------------
@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_bounded_pcp_solutions_are_real_solutions(seed):
    instance = random_instance(seed=seed, pairs=3, max_word_length=2)
    solution, certified_unsolvable = classify_bounded(instance, max_indices=3)
    if solution is not None:
        assert instance.solution_word(solution) is not None
        assert not certified_unsolvable
    if certified_unsolvable:
        assert solution is None


@SETTINGS
@given(st.integers(min_value=0, max_value=10_000))
def test_pcp_doubling_preserves_solvability_status(seed):
    instance = random_instance(seed=seed, pairs=2, max_word_length=2)
    doubled = instance.doubled()
    original = instance.has_solution_bounded(3)
    doubled_solution = doubled.has_solution_bounded(3)
    if original is not None:
        assert doubled.solution_word(original) is not None
    if doubled_solution is not None:
        assert instance.solution_word(doubled_solution) is not None
