"""Tests for the benchmark reporting helpers (repro.reporting)."""

import pytest

from repro.reporting import (
    ExperimentRecord,
    Series,
    Table,
    format_cell,
    render_experiment_records,
)


class TestFormatCell:
    def test_none_renders_as_dash(self):
        assert format_cell(None) == "—"

    def test_booleans_render_as_yes_no(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_floats_get_fixed_precision(self):
        assert format_cell(3.14159) == "3.142"
        assert format_cell(3.14159, float_digits=1) == "3.1"

    def test_strings_and_ints_pass_through(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestTable:
    def test_requires_columns(self):
        with pytest.raises(ValueError):
            Table([])

    def test_positional_rows(self):
        table = Table(["n", "time"])
        table.add_row(10, 0.5)
        assert len(table) == 1
        assert table.rows == [["10", "0.500"]]

    def test_named_rows(self):
        table = Table(["n", "time"])
        table.add_row(time=1.0, n=5)
        assert table.rows == [["5", "1.000"]]

    def test_rejects_mixed_rows(self):
        table = Table(["n", "time"])
        with pytest.raises(ValueError):
            table.add_row(1, time=2.0)

    def test_rejects_unknown_columns(self):
        table = Table(["n"])
        with pytest.raises(ValueError):
            table.add_row(bogus=1)

    def test_rejects_wrong_arity(self):
        table = Table(["n", "time"])
        with pytest.raises(ValueError):
            table.add_row(1)

    def test_render_aligns_columns(self):
        table = Table(["name", "value"], title="demo")
        table.add_row("long-name-here", 1)
        table.add_row("x", 12345)
        rendered = table.render()
        lines = rendered.splitlines()
        assert lines[0] == "demo"
        assert len({len(line) for line in lines[1:]}) <= 2  # header/sep/rows aligned

    def test_markdown_rendering(self):
        table = Table(["a", "b"])
        table.add_row(1, 2)
        markdown = table.to_markdown()
        assert "| a | b |" in markdown
        assert "| 1 | 2 |" in markdown

    def test_str_matches_render(self):
        table = Table(["a"])
        table.add_row(1)
        assert str(table) == table.render()


class TestSeries:
    def test_add_and_accessors(self):
        series = Series("scaling")
        series.add(1, 10)
        series.add(2, 20)
        assert series.xs() == [1, 2]
        assert series.ys() == [10, 20]

    def test_render_mentions_name_and_points(self):
        series = Series("sizes", [(1, 2), (3, 4)])
        rendered = series.render()
        assert "sizes" in rendered
        assert "1→2" in rendered

    def test_monotonicity_check(self):
        increasing = Series("up", [(1, 1), (2, 2), (3, 2)])
        decreasing = Series("down", [(1, 3), (2, 1)])
        assert increasing.is_monotone_nondecreasing()
        assert not decreasing.is_monotone_nondecreasing()

    def test_monotonicity_ignores_non_numeric_values(self):
        mixed = Series("mixed", [(1, "n/a"), (2, 1), (3, 2)])
        assert mixed.is_monotone_nondecreasing()


class TestExperimentRecords:
    def record(self, matches=True):
        return ExperimentRecord(
            experiment_id="E1",
            paper_artifact="Example 1",
            paper_claim="the query becomes acyclic under the tgd",
            measured="witness found and verified",
            matches=matches,
            bench_target="benchmarks/bench_example1_reformulation.py",
        )

    def test_markdown_includes_all_fields(self):
        markdown = self.record().to_markdown()
        assert "E1" in markdown
        assert "Example 1" in markdown
        assert "reproduced" in markdown
        assert "bench_example1_reformulation" in markdown

    def test_markdown_flags_mismatches(self):
        assert "NOT reproduced" in self.record(matches=False).to_markdown()

    def test_render_multiple_records(self):
        text = render_experiment_records([self.record(), self.record(False)])
        assert text.count("### E1") == 2
