"""Tests for Yannakakis, the cover game and the SemAcEval algorithms."""

import pytest

from repro.datamodel import Atom, Constant, Database, Instance, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    NotSemanticallyAcyclic,
    SemAcEvaluation,
    YannakakisEvaluator,
    boolean_acyclic,
    evaluate_acyclic,
    evaluate_generic,
    evaluate_via_reformulation,
    existential_one_cover,
    existential_one_cover_naive,
    instance_covers_database,
    membership_baseline,
    membership_generic,
    membership_via_chase_and_cover_game_tgds,
    membership_via_cover_game_egds,
    membership_via_cover_game_guarded,
    query_covers_database,
)
from repro.parser import parse_egd, parse_query, parse_tgd
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import (
    cover_game_scaling_workload,
    grid_database,
    music_store_database,
    path_database,
    random_database,
    random_schema,
)
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    guarded_triangle_example,
)


E = Predicate("E", 2)


def edge_db(*edges):
    database = Database()
    for source, target in edges:
        database.add(Atom(E, (Constant(source), Constant(target))))
    return database


class TestYannakakis:
    def test_rejects_cyclic_queries(self, triangle_query):
        with pytest.raises(AcyclicityRequired):
            YannakakisEvaluator(triangle_query)

    def test_boolean_path_query(self, path3_query):
        database = edge_db(("a", "b"), ("b", "c"), ("c", "d"))
        assert boolean_acyclic(path3_query, database)
        assert not boolean_acyclic(path3_query, edge_db(("a", "b"), ("c", "d")))

    def test_agrees_with_generic_evaluation_on_answers(self):
        query = parse_query("q(x, w) :- E(x, y), E(y, z), E(z, w)")
        database = edge_db(("a", "b"), ("b", "c"), ("c", "d"), ("b", "d"), ("d", "a"))
        assert evaluate_acyclic(query, database) == evaluate_generic(query, database)

    def test_agrees_with_generic_on_random_databases(self):
        schema = random_schema(seed=5, predicate_count=2, max_arity=2)
        database = random_database(seed=7, schema=schema, facts_per_predicate=25, domain_size=8)
        predicates = sorted(schema.predicates())
        binary = [p for p in predicates if p.arity == 2]
        if not binary:
            pytest.skip("random schema produced no binary predicate")
        p = binary[0]
        query = parse_query(f"q(x, z) :- {p.name}(x, y), {p.name}(y, z)")
        assert evaluate_acyclic(query, database) == evaluate_generic(query, database)

    def test_star_query_with_projection(self):
        query = parse_query("q(c) :- E(c, a), E(c, b)")
        database = edge_db(("h", "x"), ("h", "y"), ("i", "z"))
        assert evaluate_acyclic(query, database) == {(Constant("h"),), (Constant("i"),)}

    def test_constants_in_query(self):
        query = parse_query("q(x) :- E(x, 'b')")
        database = edge_db(("a", "b"), ("c", "d"))
        assert evaluate_acyclic(query, database) == {(Constant("a"),)}

    def test_empty_result_when_relation_missing(self):
        query = parse_query("q(x) :- E(x, y), F(y)")
        database = edge_db(("a", "b"))
        assert evaluate_acyclic(query, database) == set()

    def test_grid_database_path_counts(self):
        database = grid_database(3, 3)
        query = parse_query("q(x, z) :- E(x, y), E(y, z)")
        assert evaluate_acyclic(query, database) == evaluate_generic(query, database)

    def test_reusable_evaluator(self):
        query = parse_query("q(x) :- E(x, y)")
        evaluator = YannakakisEvaluator(query)
        assert evaluator.evaluate(edge_db(("a", "b"))) == {(Constant("a"),)}
        assert evaluator.evaluate(edge_db(("c", "d"))) == {(Constant("c"),)}


class TestCoverGame:
    def test_query_covers_database_matches_evaluation_for_acyclic_queries(self, path3_query):
        database = edge_db(("a", "b"), ("b", "c"), ("c", "d"))
        assert query_covers_database(path3_query, database)
        assert not query_covers_database(path3_query, edge_db(("a", "b")))

    def test_cover_game_with_answers(self):
        query = parse_query("q(x) :- E(x, y), E(y, z)")
        database = edge_db(("a", "b"), ("b", "c"))
        assert query_covers_database(query, database, (Constant("a"),))
        assert not query_covers_database(query, database, (Constant("c"),))

    def test_cover_game_is_weaker_than_homomorphism_on_cyclic_queries(self, triangle_query):
        # A long even cycle has no triangle, but the duplicator still wins the
        # 1-cover game (the game only preserves acyclic queries).
        database = edge_db(("a", "b"), ("b", "c"), ("c", "d"), ("d", "e"), ("e", "f"), ("f", "a"))
        assert not triangle_query.holds_in(database)
        assert query_covers_database(triangle_query, database)

    def test_instance_covers_database(self):
        left = parse_query("E(x, y), E(y, z)").canonical_database()
        right = edge_db(("a", "b"), ("b", "c"))
        assert instance_covers_database(left, (), right, ())

    def test_mismatched_tuples_rejected(self):
        with pytest.raises(ValueError):
            existential_one_cover(Instance(), (Constant("a"),), Instance(), ())
        with pytest.raises(ValueError):
            existential_one_cover_naive(Instance(), (Constant("a"),), Instance(), ())

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            query_covers_database(
                parse_query("E(x, y)"), edge_db(("a", "b")), engine="no-such-engine"
            )


COVER_ENGINES = ("worklist", "naive")


class TestCoverGameConstants:
    """Constants in left atoms are forced pebbles (homomorphisms are the
    identity on ``C``) — the regression suite for the confirmed false
    positive ``q() :- R(x, 3)`` vs ``D = {R(a, 5)}``, on both engines."""

    R = Predicate("R", 2)

    def _query_with_constant(self, constant) -> ConjunctiveQuery:
        return ConjunctiveQuery((), [Atom(self.R, (Variable("x"), constant))])

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_constant_must_map_to_itself(self, engine):
        query = self._query_with_constant(Constant(3))
        database = Database([Atom(self.R, (Constant("a"), Constant(5)))])
        assert not query_covers_database(query, database, engine=engine)
        assert not membership_via_cover_game_guarded(query, database, engine=engine)
        assert query_covers_database(query, database, engine=engine) == membership_generic(
            query, database, ()
        )

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_string_equal_but_distinct_constants_are_not_conflated(self, engine):
        # str(Constant(3)) == str(Constant("3")) == "3", but the terms differ.
        query = self._query_with_constant(Constant(3))
        database = Database([Atom(self.R, (Constant("a"), Constant("3")))])
        assert not query_covers_database(query, database, engine=engine)
        assert query_covers_database(query, database, engine=engine) == membership_generic(
            query, database, ()
        )

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_matching_constant_is_accepted(self, engine):
        query = self._query_with_constant(Constant(3))
        database = Database([Atom(self.R, (Constant("a"), Constant(3)))])
        assert query_covers_database(query, database, engine=engine)

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_frozen_variables_keep_mapping_freely(self, engine):
        # Variables (frozen into c(x) constants) are not pebbles: the plain
        # edge query covers any database with an edge.
        query = parse_query("E(x, y)")
        database = edge_db(("a", "b"))
        assert query_covers_database(query, database, engine=engine)

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_constant_conflicting_with_answer_pebble_loses(self, engine):
        # The left tuple pins Constant("c") to Constant("d") while the
        # constant itself demands the identity: no image can satisfy both.
        left = Instance([Atom(self.R, (Constant("c"), Constant("c")))])
        right = Instance([Atom(self.R, (Constant("d"), Constant("d")))])
        assert not instance_covers_database(
            left, (Constant("c"),), right, (Constant("d"),), engine=engine
        )

    @pytest.mark.parametrize("engine", COVER_ENGINES)
    def test_all_constant_atom_requires_the_exact_fact(self, engine):
        query = ConjunctiveQuery((), [Atom(self.R, (Constant(1), Constant(2)))])
        assert query_covers_database(
            query, Database([Atom(self.R, (Constant(1), Constant(2)))]), engine=engine
        )
        assert not query_covers_database(
            query, Database([Atom(self.R, (Constant(2), Constant(1)))]), engine=engine
        )


class TestCoverGameEnginesCoincide:
    """The greatest consistent strategy is unique — both engines must return
    identical strategies, not just identical verdicts."""

    def test_strategies_coincide_on_decoy_workload(self):
        query, database = cover_game_scaling_workload(80)
        left = query.canonical_database()
        worklist = existential_one_cover(left, (), database, ())
        naive = existential_one_cover_naive(left, (), database, ())
        assert worklist.duplicator_wins and naive.duplicator_wins
        assert worklist.strategy == naive.strategy
        # The decoy chains must actually have been pruned by propagation.
        assert any(
            len(images) < len(database.atoms_with_predicate(atom.predicate))
            for atom, images in worklist.strategy.items()
        )

    def test_strategies_coincide_on_random_databases(self):
        left = parse_query("E(x, y), E(y, z), F(z)").canonical_database()
        for seed in range(5):
            schema = random_schema(seed=seed, predicate_count=2, max_arity=2)
            database = random_database(
                seed=seed, schema=schema, facts_per_predicate=12, domain_size=4
            )
            database.add(Atom(Predicate("E", 2), (Constant("u"), Constant("u"))))
            database.add(Atom(Predicate("F", 1), (Constant("u"),)))
            worklist = existential_one_cover(left, (), database, ())
            naive = existential_one_cover_naive(left, (), database, ())
            assert worklist.duplicator_wins == naive.duplicator_wins
            if worklist.duplicator_wins:
                assert worklist.strategy == naive.strategy


class TestSemAcEval:
    def test_reformulate_then_evaluate_example1(self):
        query = example1_query()
        tgds = [example1_tgd()]
        database = music_store_database(seed=3, customers=10, records=15, styles=4)
        answers = evaluate_via_reformulation(query, tgds, database)
        assert answers == evaluate_generic(query, database)
        assert answers  # the workload guarantees at least one compulsive match

    def test_reformulation_failure_raises(self, triangle_query):
        with pytest.raises(NotSemanticallyAcyclic):
            evaluate_via_reformulation(triangle_query, [parse_tgd("E(x, y) -> E(y, x)")], edge_db(("a", "b")))

    def test_cover_game_eval_guarded(self):
        query, tgds = guarded_triangle_example()
        # Build a database satisfying the tgds: every edge source has a self-loop.
        database = Database()
        a_pred = Predicate("A", 1)
        for source, target in [("a", "b"), ("b", "c")]:
            database.add(Atom(E, (Constant(source), Constant(target))))
            database.add(Atom(E, (Constant(source), Constant(source))))
            database.add(Atom(a_pred, (Constant(source),)))
        database.add(Atom(a_pred, (Constant("c"),)))
        database.add(Atom(E, (Constant("c"), Constant("c"))))
        # The triangle query holds (via a self-loop); Theorem 25's test agrees
        # with the baseline.
        assert membership_baseline(query, database)
        assert membership_via_cover_game_guarded(query, database)
        assert membership_via_chase_and_cover_game_tgds(query, tgds, database)

    def test_cover_game_eval_guarded_negative(self):
        query, tgds = guarded_triangle_example()
        empty = Database()
        assert not membership_via_cover_game_guarded(query, empty)

    def test_cover_game_eval_under_fds(self):
        query = parse_query("A(x, y), A(x, z), B(y, z)")
        egds = [parse_egd("A(x, y), A(x, z) -> y = z")]
        a_pred, b_pred = Predicate("A", 2), Predicate("B", 2)
        database = Database(
            [
                Atom(a_pred, (Constant(1), Constant(2))),
                Atom(b_pred, (Constant(2), Constant(2))),
            ]
        )
        # The database satisfies the key and the (cyclic, but semantically
        # acyclic) query holds; the chased-query cover game agrees.
        assert membership_baseline(query, database)
        assert membership_via_cover_game_egds(query, egds, database)
        no_match = Database([Atom(a_pred, (Constant(1), Constant(2)))])
        assert not membership_via_cover_game_egds(query, egds, no_match)

    def test_semac_evaluation_wrapper(self):
        query = example1_query()
        reformulation = parse_query("q(x, y) :- Interest(x, z), Class(y, z)")
        evaluator = SemAcEvaluation.from_reformulation(query, reformulation)
        database = music_store_database(seed=11, customers=8, records=10, styles=3)
        assert evaluator.evaluate(database) == evaluate_generic(query, database)
        assert evaluator.boolean(database)
