"""Tests for the semantic-acyclicity deciders, approximations, UCQ variant and PCP reduction."""

import pytest

from repro.containment import (
    ContainmentOutcome,
    equivalent_under_egds,
    equivalent_under_tgds,
)
from repro.core import (
    PCPInstance,
    SemAcConfig,
    acyclic_approximations,
    decide_semantic_acyclicity,
    decide_semantic_acyclicity_egds,
    decide_semantic_acyclicity_fds,
    decide_semantic_acyclicity_tgds,
    decide_semantic_acyclicity_unconstrained,
    decide_ucq_semantic_acyclicity,
    is_semantically_acyclic,
    pcp_query,
    pcp_tgds,
    solution_path_query,
    word_path_query,
)
from repro.core.candidates import (
    acyclic_subqueries,
    exhaustive_chase_candidates,
    generalisations_of_subinstance,
)
from repro.datamodel import Predicate, Variable
from repro.dependencies import FunctionalDependency, key
from repro.parser import parse_egd, parse_query, parse_tgd, parse_ucq
from repro.queries import UnionOfConjunctiveQueries
from repro.workloads.paper_examples import (
    example1_query,
    example1_tgd,
    example4_key,
    example4_query,
    guarded_triangle_example,
    k2_collapse_example,
)


class TestUnconstrainedSemAc:
    def test_acyclic_query_is_trivially_semantically_acyclic(self, path3_query):
        decision = decide_semantic_acyclicity_unconstrained(path3_query)
        assert decision.semantically_acyclic
        assert decision.witness.is_acyclic()
        assert decision.exhaustive

    def test_cyclic_core_is_not(self, triangle_query):
        decision = decide_semantic_acyclicity_unconstrained(triangle_query)
        assert not decision.semantically_acyclic
        assert decision.witness is None
        assert decision.exhaustive

    def test_redundant_cyclic_query_is_semantically_acyclic(self):
        query = parse_query("E(x, y), E(y, z), E(x, w)")
        decision = decide_semantic_acyclicity_unconstrained(query)
        assert decision.semantically_acyclic

    def test_dispatcher_with_no_constraints(self, triangle_query):
        assert not is_semantically_acyclic(triangle_query)
        assert not decide_semantic_acyclicity(triangle_query, []).semantically_acyclic


class TestSemAcUnderTgds:
    def test_example1(self, music_store):
        query, tgds, reformulation = music_store
        decision = decide_semantic_acyclicity_tgds(query, tgds)
        assert decision.semantically_acyclic
        assert decision.witness is not None
        assert decision.witness.is_acyclic()
        # The witness is verified equivalent to q under Σ.
        assert equivalent_under_tgds(query, decision.witness, tgds) is ContainmentOutcome.TRUE
        # ... and equivalent to the paper's reformulation.
        assert equivalent_under_tgds(reformulation, decision.witness, tgds) is ContainmentOutcome.TRUE

    def test_example1_not_semantically_acyclic_without_the_tgd(self, music_store):
        query, _, _ = music_store
        assert not decide_semantic_acyclicity_unconstrained(query).semantically_acyclic

    def test_guarded_example(self):
        query, tgds = guarded_triangle_example()
        decision = decide_semantic_acyclicity_tgds(query, tgds)
        assert decision.semantically_acyclic
        assert decision.witness.is_acyclic()
        assert equivalent_under_tgds(query, decision.witness, tgds) is ContainmentOutcome.TRUE
        assert "guarded" in decision.method

    def test_triangle_under_symmetry_is_not_semantically_acyclic(self, triangle_query):
        tgds = [parse_tgd("E(x, y) -> E(y, x)")]
        decision = decide_semantic_acyclicity_tgds(triangle_query, tgds)
        assert not decision.semantically_acyclic

    def test_already_acyclic_query_shortcut(self, path3_query):
        tgds = [parse_tgd("E(x, y) -> E(y, x)")]
        decision = decide_semantic_acyclicity_tgds(path3_query, tgds)
        assert decision.semantically_acyclic
        assert decision.witness == path3_query
        assert decision.method.startswith("syntactic")

    def test_full_tgds_are_flagged_as_undecidable_territory(self, triangle_query):
        tgds = [parse_tgd("E(x, y), E(y, z) -> E(x, z)")]
        decision = decide_semantic_acyclicity_tgds(triangle_query, tgds)
        assert any("undecidable" in note for note in decision.notes)

    def test_witness_for_triangle_under_transitive_closure(self, triangle_query):
        # Under transitivity plus symmetry every edge produces a triangle, so
        # the triangle query becomes equivalent to the single-edge query.
        tgds = [
            parse_tgd("E(x, y) -> E(y, x)"),
            parse_tgd("E(x, y), E(y, z) -> E(x, z)"),
        ]
        decision = decide_semantic_acyclicity_tgds(triangle_query, tgds)
        assert decision.semantically_acyclic
        assert decision.witness.is_acyclic()
        assert equivalent_under_tgds(query := triangle_query, decision.witness, tgds) is ContainmentOutcome.TRUE

    def test_exhaustive_mode_on_small_negative_instance(self, triangle_query):
        tgds = [parse_tgd("E(x, y) -> E(y, x)")]
        config = SemAcConfig(exhaustive=True, exhaustive_size_cap=3)
        decision = decide_semantic_acyclicity_tgds(triangle_query, tgds, config)
        assert not decision.semantically_acyclic
        # The exhaustive pass was capped below the theoretical bound, so the
        # negative answer is reported as non-exhaustive.
        assert not decision.exhaustive

    def test_decision_reports_candidate_counts(self, music_store):
        query, tgds, _ = music_store
        decision = decide_semantic_acyclicity_tgds(query, tgds)
        assert decision.candidates_checked >= 1
        assert decision.size_bound >= 2 * len(query) or decision.size_bound > 0


class TestSemAcUnderEgds:
    def test_k2_collapse(self):
        query, egds = k2_collapse_example()
        decision = decide_semantic_acyclicity_egds(query, egds)
        assert decision.semantically_acyclic
        assert decision.witness.is_acyclic()
        assert equivalent_under_egds(query, decision.witness, egds)

    def test_example4_query_is_trivially_semantically_acyclic(self):
        # The Example 4 query is itself acyclic (the paper's point is that the
        # *chase* with the key destroys acyclicity, not that the query fails
        # to be semantically acyclic), so the decision is a trivial positive.
        decision = decide_semantic_acyclicity_egds(
            example4_query(), [example4_key()], SemAcConfig(exhaustive=False)
        )
        assert decision.semantically_acyclic
        assert decision.method.startswith("syntactic")

    def test_example4_chase_destroys_acyclicity(self):
        # The acyclicity-preservation failure of Example 4 (keys over a
        # ternary/quaternary schema) is what the paper actually claims.
        from repro.chase import egd_chase_query

        query = example4_query()
        assert query.is_acyclic()
        result, _ = egd_chase_query(query, [example4_key()], on_failure="return")
        from repro.hypergraph import is_acyclic_instance

        assert not result.failed
        assert not is_acyclic_instance(result.instance)

    def test_failing_chase_short_circuit(self):
        # A cyclic query whose egd chase fails (it equates the constants 'a'
        # and 'b') is unsatisfiable over consistent databases, hence trivially
        # semantically acyclic.
        query = parse_query("E(x, y), E(y, z), E(z, x), R(x, 'a'), R(x, 'b')")
        egds = [parse_egd("R(x, y), R(x, z) -> y = z")]
        decision = decide_semantic_acyclicity_egds(query, egds)
        assert decision.semantically_acyclic
        assert decision.method == "failing-chase"

    def test_fd_dispatcher_notes_class(self):
        query, _ = k2_collapse_example()
        a_pred = Predicate("A", 2)
        fds = [key(a_pred, {1})]
        decision = decide_semantic_acyclicity_fds(query, fds)
        assert decision.semantically_acyclic
        assert any("K2" in note for note in decision.notes)

    def test_dispatcher_accepts_fds(self):
        query, _ = k2_collapse_example()
        a_pred = Predicate("A", 2)
        decision = decide_semantic_acyclicity(query, [key(a_pred, {1})])
        assert decision.semantically_acyclic

    def test_dispatcher_rejects_unknown_constraint_types(self, path3_query):
        with pytest.raises(TypeError):
            decide_semantic_acyclicity(path3_query, ["not a constraint"])


class TestCandidates:
    def test_acyclic_subqueries_respect_head(self):
        query = parse_query("q(x, w) :- E(x, y), E(y, z), E(z, w)")
        for candidate in acyclic_subqueries(query):
            assert set(candidate.head) == set(query.head)
            assert candidate.is_acyclic()

    def test_generalisations_cover_identity_and_full_split(self):
        query = parse_query("E(x, y), E(y, z)")
        frozen = query.canonical_database().sorted_atoms()
        generalisations = list(generalisations_of_subinstance(frozen, ()))
        sizes = {len(g.variables()) for g in generalisations}
        # The fully merged version has 3 variables; the fully split one has 4.
        assert 3 in sizes and 4 in sizes

    def test_exhaustive_candidates_are_acyclic(self, triangle_query):
        chase_instance = triangle_query.canonical_database()
        for candidate in exhaustive_chase_candidates(
            triangle_query, chase_instance, (), max_atoms=3, max_subsets=200
        ):
            assert candidate.is_acyclic()


class TestApproximations:
    def test_approximation_of_triangle_without_constraints(self, triangle_query):
        result = acyclic_approximations(triangle_query)
        assert result.approximations
        assert not result.exact
        from repro.containment import cq_contained_in

        for approximation in result.approximations:
            assert approximation.is_acyclic()
            assert cq_contained_in(approximation, triangle_query)

    def test_approximation_is_exact_for_semantically_acyclic_queries(self, music_store):
        query, tgds, _ = music_store
        result = acyclic_approximations(query, tgds)
        assert result.exact
        assert any(
            equivalent_under_tgds(query, approximation, tgds) is ContainmentOutcome.TRUE
            for approximation in result.approximations
        )

    def test_trivial_queries_exist_for_boolean_inputs(self, triangle_query):
        from repro.core import trivial_acyclic_queries

        trivial = trivial_acyclic_queries(triangle_query)
        assert len(trivial) == 1
        assert trivial[0].is_acyclic()
        from repro.containment import cq_contained_in

        assert cq_contained_in(trivial[0], triangle_query)

    def test_mixing_constraint_kinds_is_rejected(self, triangle_query):
        with pytest.raises(ValueError):
            acyclic_approximations(
                triangle_query,
                [parse_tgd("E(x, y) -> E(y, x)"), parse_egd("E(x, y), E(x, z) -> y = z")],
            )


class TestUCQSemanticAcyclicity:
    def test_union_with_acyclic_witnesses(self):
        ucq = parse_ucq("Interest(x, z), Class(y, z), Owns(x, y) ; Interest(x, z), Class(y, z)")
        # Boolean variant of Example 1 as a union: under the tgd both disjuncts
        # collapse to the acyclic one.
        decision = decide_ucq_semantic_acyclicity(ucq, [example1_tgd()])
        assert decision.semantically_acyclic
        assert decision.witness is not None
        assert decision.witness.is_acyclic()

    def test_redundant_cyclic_disjunct_is_dropped(self, triangle_query, path3_query):
        # The triangle is contained in the single-edge query, so the union is
        # equivalent to the (acyclic) single-edge query alone.
        edge = parse_query("E(x, y)")
        ucq = UnionOfConjunctiveQueries([triangle_query, edge])
        decision = decide_ucq_semantic_acyclicity(ucq, [])
        assert decision.semantically_acyclic
        statuses = set(decision.disjunct_status.values())
        assert "redundant" in statuses

    def test_union_with_a_stuck_disjunct(self, triangle_query):
        lonely = parse_query("F(u, v)")
        ucq = UnionOfConjunctiveQueries([triangle_query, lonely])
        decision = decide_ucq_semantic_acyclicity(ucq, [])
        assert not decision.semantically_acyclic
        assert decision.disjunct_status[0] == "stuck"

    def test_mutually_equivalent_disjuncts_keep_one_representative(self):
        first = parse_query("E(x, y)")
        second = parse_query("E(u, v), E(u, w)")
        ucq = UnionOfConjunctiveQueries([first, second])
        decision = decide_ucq_semantic_acyclicity(ucq, [])
        assert decision.semantically_acyclic
        assert decision.witness is not None
        assert len(decision.witness) >= 1


class TestPCPReduction:
    def test_pcp_instance_validation(self):
        with pytest.raises(ValueError):
            PCPInstance(("a",), ("a", "b"))
        with pytest.raises(ValueError):
            PCPInstance(("ac",), ("a",))

    def test_bounded_solver(self):
        solvable = PCPInstance(("a", "ab"), ("aa", "b"))
        assert solvable.has_solution_bounded(3) is not None
        unsolvable = PCPInstance(("ab",), ("ba",))
        assert unsolvable.has_solution_bounded(4) is None

    def test_solution_word(self):
        instance = PCPInstance(("a", "ab"), ("aa", "b"))
        assert instance.solution_word((0, 1)) == "aab"
        assert instance.solution_word((1,)) is None
        assert instance.solution_word(()) is None

    def test_construction_shapes(self):
        instance = PCPInstance(("a", "ab"), ("aa", "b"))
        query = pcp_query()
        tgds = pcp_tgds(instance)
        assert query.is_boolean()
        assert not query.is_acyclic()
        assert all(tgd.is_full() for tgd in tgds)
        # initialization + |instance| synchronization + |instance| finalization rules
        assert len(tgds) == 1 + 2 * instance.size

    def test_path_queries_are_acyclic(self):
        instance = PCPInstance(("a", "ab"), ("aa", "b"))
        path = solution_path_query(instance, (0, 1))
        assert path.is_acyclic()
        assert word_path_query("ab").is_acyclic()
        with pytest.raises(ValueError):
            solution_path_query(instance, (1,))
        with pytest.raises(ValueError):
            word_path_query("xyz")

    def test_reduction_positive_direction(self):
        # For a solvable instance the solution path query is equivalent to q.
        instance = PCPInstance(("a", "ab"), ("aa", "b"))
        query = pcp_query()
        tgds = pcp_tgds(instance)
        path = solution_path_query(instance, (0, 1))
        from repro.containment import ContainmentConfig

        outcome = equivalent_under_tgds(
            query, path, tgds, ContainmentConfig(max_steps=50_000)
        )
        assert outcome is ContainmentOutcome.TRUE

    def test_reduction_negative_direction_on_a_non_solution_word(self):
        # A word that is not a PCP solution gives a path query that is not
        # equivalent to q.
        instance = PCPInstance(("a", "ab"), ("aa", "b"))
        query = pcp_query()
        tgds = pcp_tgds(instance)
        path = word_path_query("ba")
        from repro.containment import ContainmentConfig

        outcome = equivalent_under_tgds(
            query, path, tgds, ContainmentConfig(max_steps=50_000)
        )
        assert outcome is ContainmentOutcome.FALSE
