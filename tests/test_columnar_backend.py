"""Differential tests for the columnar backend (ISSUE 7).

The tuple engine is the differential oracle: for every route
(``yannakakis``, ``reformulated``, ``plan``) and every entry point
(``evaluate``, ``iter_answers``/``iter_with_plan`` with and without
``limit=``, ``BatchEvaluator``), the columnar backend must produce exactly
the same answer set — including the corners where representations
historically diverge: injected constants, repeated head variables, empty
predicates, and terms with colliding string forms.

Beyond route equality the suite pins down:

* the encode/decode round trip of :class:`TermEncoder` and
  :class:`EncodedRelation` (property-based, ambiguous terms included);
* probe accounting on the batch face — semi-join membership is uncounted,
  joins count one probe per left row, and the pipelined plan route does a
  bounded amount of work per pulled batch (the per-batch analogue of the
  per-tuple bounds in ``tests/test_operators.py``);
* the cache/aliasing discipline: encoded stores are cached per encoder
  identity, shared across ``with_schema`` views, rebuilt on an encoder
  change, and never aliased into operator outputs;
* the optional numpy storage path (``REPRO_NUMPY=1``) agrees with both the
  pure-python columnar path and the tuple oracle.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Atom, Constant, Database, Null, Predicate, Variable
from repro.evaluation import (
    AcyclicityRequired,
    BatchEvaluator,
    Relation,
    ScanCache,
    TermEncoder,
    YannakakisEvaluator,
    evaluate_iter,
    evaluate_with_plan,
    iter_with_plan,
    plan_greedy,
    resolve_backend,
)
from repro.evaluation.encoding import BACKEND_ENV, EncodedRelation, NUMPY_ENV
from repro.evaluation.operators import BATCH_ROWS
from repro.evaluation.relation import Partition
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import yannakakis_scaling_workload
from repro.workloads.paper_examples import example1_query, example1_tgd
from repro.workloads import music_store_database

from helpers.workloads import (
    randomized_acyclic_workload,
    randomized_cyclic_workload,
)


def _probes(run):
    before = Partition.total_probes
    result = run()
    return result, Partition.total_probes - before


# ----------------------------------------------------------------------
# Route differentials: tuple backend is the oracle
# ----------------------------------------------------------------------
def _assert_backends_agree_acyclic(query, database):
    try:
        evaluator = YannakakisEvaluator(query)
    except AcyclicityRequired:
        # Constant injection can, in rare corners, make the variable
        # hypergraph cyclic; the acyclic route only covers acyclic CQs.
        return
    expected = evaluator.evaluate(database, backend="tuple")
    assert evaluator.evaluate(database, backend="columnar") == expected

    streamed = list(evaluator.iter_answers(database, backend="columnar"))
    assert len(set(streamed)) == len(streamed)  # no duplicates yielded
    assert set(streamed) == expected

    limited = list(
        evaluator.iter_answers(database, limit=3, backend="columnar")
    )
    assert len(limited) == min(3, len(expected))
    assert set(limited) <= expected


@settings(max_examples=50, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_yannakakis_route_backends_agree(seed):
    query, database = randomized_acyclic_workload(seed)
    _assert_backends_agree_acyclic(query, database)


@pytest.mark.parametrize("seed", range(20))
def test_yannakakis_route_backends_agree_on_seeded_grid(seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    query, database = randomized_acyclic_workload(seed * 7717)
    _assert_backends_agree_acyclic(query, database)


def _assert_backends_agree_plan(query, database):
    expected = evaluate_with_plan(query, database, backend="tuple")
    assert evaluate_with_plan(query, database, backend="columnar") == expected

    streamed = list(iter_with_plan(query, database, backend="columnar"))
    assert len(set(streamed)) == len(streamed)
    assert set(streamed) == expected

    limited = list(
        iter_with_plan(query, database, limit=3, backend="columnar")
    )
    assert len(limited) == min(3, len(expected))
    assert set(limited) <= expected


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_plan_route_backends_agree(seed):
    query, database = randomized_cyclic_workload(seed)
    _assert_backends_agree_plan(query, database)


@pytest.mark.parametrize("seed", range(10))
def test_plan_route_backends_agree_on_seeded_grid(seed):
    query, database = randomized_cyclic_workload(seed * 6151)
    _assert_backends_agree_plan(query, database)


def test_reformulated_route_backends_agree():
    query = example1_query()
    tgd = example1_tgd()
    database = music_store_database(seed=3, customers=12, records=15, styles=4)

    batch = BatchEvaluator([query], tgds=[tgd])
    assert batch.routes() == ["reformulated"]
    [expected] = batch.evaluate(database, backend="tuple")
    [columnar] = batch.evaluate(database, backend="columnar")
    assert columnar == expected

    [stream] = batch.evaluate_iter(database, backend="columnar")
    streamed = list(stream)
    assert len(set(streamed)) == len(streamed)
    assert set(streamed) == expected

    streamed_limited = list(
        evaluate_iter(query, database, tgds=[tgd], limit=2, backend="columnar")
    )
    assert len(streamed_limited) == min(2, len(expected))
    assert set(streamed_limited) <= expected


# ----------------------------------------------------------------------
# Explicit corners
# ----------------------------------------------------------------------
E = Predicate("E", 2)
F = Predicate("F", 2)


def _chain_query(head):
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery(
        head, [Atom(E, (x, y)), Atom(F, (y, z))], name="chain"
    )


def test_empty_predicate_agrees_across_backends():
    database = Database([Atom(E, (Constant("a"), Constant("b")))])
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = _chain_query((x, z))
    evaluator = YannakakisEvaluator(query)
    assert evaluator.evaluate(database, backend="columnar") == set()
    assert list(evaluator.iter_answers(database, backend="columnar")) == []
    assert evaluator.evaluate(database, backend="tuple") == set()


def test_boolean_query_agrees_across_backends():
    database = Database(
        [
            Atom(E, (Constant("a"), Constant("b"))),
            Atom(F, (Constant("b"), Constant("c"))),
        ]
    )
    query = _chain_query(())
    evaluator = YannakakisEvaluator(query)
    assert evaluator.evaluate(database, backend="columnar") == {()}
    assert evaluator.boolean(database, backend="columnar") is True
    empty = Database([Atom(E, (Constant("a"), Constant("b")))])
    assert YannakakisEvaluator(query).evaluate(empty, backend="columnar") == set()


def test_repeated_head_variables_and_constants_agree():
    database = Database(
        [
            Atom(E, (Constant("a"), Constant("b"))),
            Atom(E, (Constant("c"), Constant("b"))),
            Atom(F, (Constant("b"), Constant("d"))),
        ]
    )
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = ConjunctiveQuery(
        (x, x, z), [Atom(E, (x, y)), Atom(F, (y, z))], name="rep"
    )
    evaluator = YannakakisEvaluator(query)
    expected = evaluator.evaluate(database, backend="tuple")
    assert expected == {
        (Constant("a"), Constant("a"), Constant("d")),
        (Constant("c"), Constant("c"), Constant("d")),
    }
    assert evaluator.evaluate(database, backend="columnar") == expected

    # A constant selection in the body, on top of the repeated head.
    selected = ConjunctiveQuery(
        (x, x), [Atom(E, (x, y)), Atom(F, (y, Constant("d")))], name="sel"
    )
    sel_eval = YannakakisEvaluator(selected)
    assert sel_eval.evaluate(database, backend="columnar") == sel_eval.evaluate(
        database, backend="tuple"
    )


def test_string_colliding_terms_stay_distinct_under_encoding():
    # str(Constant(1)) == str(Constant("1")) == str(Null("1")) == "1"; the
    # encoder must key on the terms themselves, never their string forms.
    database = Database(
        [
            Atom(E, (Constant(1), Constant("p"))),
            Atom(E, (Constant("1"), Constant("q"))),
        ]
    )
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery((x,), [Atom(E, (x, y))], name="collide")
    evaluator = YannakakisEvaluator(query)
    expected = evaluator.evaluate(database, backend="tuple")
    assert len(expected) == 2
    assert evaluator.evaluate(database, backend="columnar") == expected


# ----------------------------------------------------------------------
# Encode/decode round trip (property-based)
# ----------------------------------------------------------------------
_terms = st.one_of(
    st.integers(min_value=-5, max_value=5).map(Constant),
    st.sampled_from(["a", "b", "1", "-1"]).map(Constant),
    st.sampled_from(["a", "n", "1"]).map(Null),
)


@settings(max_examples=60, deadline=None)
@given(
    rows=st.lists(
        st.tuples(_terms, _terms, _terms), min_size=0, max_size=25
    )
)
def test_encode_decode_round_trip(rows):
    encoder = TermEncoder()
    for row in rows:
        assert encoder.decode_row(encoder.encode_row(row)) == row

    schema = (Variable("u"), Variable("v"), Variable("w"))
    relation = Relation(schema, rows)
    encoded = relation.encoded(encoder)
    assert len(encoded) == len(rows)
    # Row order survives the column store round trip.
    assert list(encoded.decoded_rows()) == relation.rows
    assert encoded.to_relation().rows == relation.rows
    # answer_tuples handles projection with repetition at the decode
    # boundary (the repeated-head case).
    u, w = Variable("u"), Variable("w")
    assert encoded.answer_tuples((u, u, w)) == {
        (row[0], row[0], row[2]) for row in rows
    }


def test_encoder_is_a_dense_bijection():
    encoder = TermEncoder()
    terms = [Constant("a"), Constant(1), Constant("1"), Null("a")]
    codes = [encoder.encode(term) for term in terms]
    assert codes == [0, 1, 2, 3]  # dense, first-come
    assert [encoder.encode(term) for term in terms] == codes  # stable
    assert [encoder.decode(code) for code in codes] == terms
    assert len(encoder) == 4


# ----------------------------------------------------------------------
# Probe accounting on the batch face
# ----------------------------------------------------------------------
def _encoded_pair():
    encoder = TermEncoder()
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    left = Relation(
        (x, y),
        [(Constant(i), Constant(i % 3)) for i in range(30)],
    ).encoded(encoder)
    right = Relation(
        (y, z),
        [(Constant(i % 3), Constant(-i)) for i in range(12)],
    ).encoded(encoder)
    return left, right


def test_semijoin_membership_is_uncounted():
    left, right = _encoded_pair()
    result, probes = _probes(lambda: left.semijoin(right))
    assert probes == 0
    assert len(result) == 30  # every y ∈ {0,1,2} matches


def test_join_counts_one_probe_per_left_row():
    left, right = _encoded_pair()
    result, probes = _probes(lambda: left.join(right))
    assert probes == len(left)
    assert len(result) == 30 * 4  # each of the 3 keys has 4 right rows


def test_cross_product_counts_no_probes():
    encoder = TermEncoder()
    x, z = Variable("x"), Variable("z")
    left = Relation((x,), [(Constant(i),) for i in range(5)]).encoded(encoder)
    right = Relation((z,), [(Constant(-i),) for i in range(4)]).encoded(encoder)
    result, probes = _probes(lambda: left.join(right))
    assert probes == 0
    assert len(result) == 20


def test_columnar_iter_with_plan_does_bounded_work_per_batch():
    """The per-batch analogue of the per-tuple pipelining bounds in
    tests/test_operators.py: a ``limit=`` consumer of the columnar plan
    route pulls O(chain · BATCH_ROWS) probes, not the full pipeline."""
    # Large enough that every base scan spans several BATCH_ROWS batches —
    # below that the single-batch pipeline legitimately does all its work
    # for the first pull.
    query, database = yannakakis_scaling_workload(12000, seed=2)
    plan = plan_greedy(query, database)
    _, probes_limited = _probes(
        lambda: list(iter_with_plan(query, database, limit=3, backend="columnar"))
    )
    _, probes_full = _probes(
        lambda: list(iter_with_plan(query, database, backend="columnar"))
    )
    # One pulled batch per chain step, with slack for join fan-out growing
    # an intermediate batch past BATCH_ROWS.
    assert probes_limited <= 4 * (len(plan) + 1) * BATCH_ROWS
    assert 2 * probes_limited <= probes_full


def test_columnar_first_streamed_answer_is_cheap():
    query, database = yannakakis_scaling_workload(800, seed=1)
    evaluator = YannakakisEvaluator(query)
    _, full_probes = _probes(
        lambda: evaluator.evaluate(database, backend="columnar")
    )
    stream = evaluator.iter_answers(database, backend="columnar")
    first, first_probes = _probes(lambda: next(stream))
    assert first in evaluator.evaluate(database)
    assert 10 * first_probes <= full_probes


# ----------------------------------------------------------------------
# Cache and aliasing discipline (satellite: statistics/encoding caches)
# ----------------------------------------------------------------------
def test_encoded_store_cached_per_encoder_and_shared_across_views():
    x, y = Variable("x"), Variable("y")
    relation = Relation(
        (x, y), [(Constant(i), Constant(i % 2)) for i in range(8)]
    )
    encoder = TermEncoder()
    first = relation.encoded(encoder)
    assert relation.encoded(encoder).store is first.store  # built once

    # with_schema views share row storage, hence the encoded store too.
    view = relation.with_schema((Variable("u"), Variable("v")))
    assert view.encoded(encoder).store is first.store

    # A different encoder invalidates the single-slot cache...
    other = TermEncoder()
    rebuilt = relation.encoded(other)
    assert rebuilt.store is not first.store
    assert list(rebuilt.decoded_rows()) == relation.rows
    # ...and switching back rebuilds again, still correct.
    again = relation.encoded(encoder)
    assert again.store is not first.store
    assert list(again.decoded_rows()) == relation.rows


def test_relation_operator_outputs_never_alias_stats_caches():
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    left = Relation((x, y), [(Constant(1), Constant(2))])
    right = Relation((y, z), [(Constant(2), Constant(3))])
    left.column_distinct_counts()  # populate the stats cache
    joined = left.join(right)
    assert joined._stats is not left._stats
    assert joined._stats is not right._stats
    projected = joined.project((x,))
    assert projected._stats is not joined._stats


def test_encoded_operator_outputs_get_fresh_caches():
    left, right = _encoded_pair()
    left.key_index((0,))  # populate a store cache
    out = left.semijoin(right)
    assert out.store is not left.store
    assert out.store.caches is not left.store.caches

    # Schema views share the store (and so all caches)...
    view = left.with_schema((Variable("p"), Variable("q")))
    assert view.store is left.store
    # ...while fresh_copy shares the immutable columns but never the caches.
    fresh = left.fresh_copy()
    assert fresh.store is not left.store
    assert fresh.store.caches is not left.store.caches
    assert fresh.store.columns[0] is left.store.columns[0]


# ----------------------------------------------------------------------
# Backend resolution and the numpy storage path
# ----------------------------------------------------------------------
def test_resolve_backend_precedence(monkeypatch):
    monkeypatch.delenv(BACKEND_ENV, raising=False)
    assert resolve_backend() == "tuple"
    assert resolve_backend("columnar") == "columnar"
    monkeypatch.setenv(BACKEND_ENV, "columnar")
    assert resolve_backend() == "columnar"
    assert resolve_backend("tuple") == "tuple"  # explicit wins
    with pytest.raises(ValueError):
        resolve_backend("vectorised")


def test_numpy_path_agrees_with_tuple_oracle(monkeypatch):
    pytest.importorskip("numpy")
    monkeypatch.setenv(NUMPY_ENV, "1")

    # Fresh relations (no cached pure-python stores) under the numpy flag.
    encoder = TermEncoder()
    x, y = Variable("x"), Variable("y")
    relation = Relation(
        (x, y), [(Constant(i % 7), Constant(i % 3)) for i in range(40)]
    )
    encoded = relation.encoded(encoder)
    assert encoded.store.use_numpy
    assert list(encoded.decoded_rows()) == relation.rows

    query, database = yannakakis_scaling_workload(150, seed=4)
    evaluator = YannakakisEvaluator(query)
    expected = evaluator.evaluate(database, backend="tuple")
    assert evaluator.evaluate(
        database, scans=ScanCache(database), backend="columnar"
    ) == expected

    # The same workload through the plan executor's numpy batch face.
    cyclic_query, cyclic_db = randomized_cyclic_workload(11)
    assert evaluate_with_plan(
        cyclic_query, cyclic_db, backend="columnar"
    ) == evaluate_with_plan(cyclic_query, cyclic_db, backend="tuple")
