"""Property-based tests (hypothesis) for the core data structures and invariants."""

import random

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.chase import chase, egd_chase
from repro.containment import cq_contained_in
from repro.datamodel import Atom, Constant, Instance, Predicate, Variable
from repro.dependencies import EGD, TGD
from repro.hypergraph import (
    instance_connectors,
    is_acyclic_atoms,
    is_valid_join_tree,
    join_tree_of_query_atoms,
    query_connectors,
)
from repro.queries import (
    ConjunctiveQuery,
    contained_in,
    core,
    equivalent_queries,
    find_homomorphism,
    has_homomorphism,
    homomorphisms,
    is_homomorphism,
)
from repro.evaluation import evaluate_acyclic, evaluate_generic
from repro.workloads.generators import random_acyclic_query, random_schema


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
PREDICATES = [Predicate("P", 1), Predicate("E", 2), Predicate("T", 3)]
VARIABLES = [Variable(name) for name in "uvwxyz"]
CONSTANTS = [Constant(value) for value in "abcd"]


@st.composite
def atoms(draw, terms=st.sampled_from(VARIABLES)):
    predicate = draw(st.sampled_from(PREDICATES))
    chosen = tuple(draw(terms) for _ in range(predicate.arity))
    return Atom(predicate, chosen)


@st.composite
def ground_atoms(draw):
    return draw(atoms(terms=st.sampled_from(CONSTANTS)))


@st.composite
def boolean_queries(draw, max_atoms=5):
    body = draw(st.lists(atoms(), min_size=1, max_size=max_atoms))
    return ConjunctiveQuery((), body, name="h")


@st.composite
def instances(draw, max_atoms=8):
    return Instance(draw(st.lists(ground_atoms(), min_size=0, max_size=max_atoms)))


@st.composite
def acyclic_queries(draw):
    seed = draw(st.integers(min_value=0, max_value=10_000))
    atom_count = draw(st.integers(min_value=1, max_value=5))
    schema = random_schema(seed=seed % 17, predicate_count=3, max_arity=3)
    return random_acyclic_query(seed=seed, schema=schema, atom_count=atom_count)


SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


# ----------------------------------------------------------------------
# Homomorphisms
# ----------------------------------------------------------------------
@SETTINGS
@given(boolean_queries(), instances())
def test_found_homomorphisms_are_homomorphisms(query, instance):
    for mapping in homomorphisms(query.body, instance):
        assert is_homomorphism(mapping, query.body, instance)


@SETTINGS
@given(boolean_queries())
def test_every_query_maps_into_its_canonical_database(query):
    database = query.canonical_database()
    mapping = find_homomorphism(query.body, database)
    assert mapping is not None
    assert is_homomorphism(mapping, query.body, database)


@SETTINGS
@given(boolean_queries(), instances())
def test_evaluation_matches_homomorphism_existence(query, instance):
    assert query.holds_in(instance) == has_homomorphism(query.body, instance)


# ----------------------------------------------------------------------
# Containment and cores
# ----------------------------------------------------------------------
@SETTINGS
@given(boolean_queries())
def test_containment_is_reflexive(query):
    assert contained_in(query, query)


@SETTINGS
@given(boolean_queries(), boolean_queries(), boolean_queries())
def test_containment_is_transitive(first, second, third):
    if contained_in(first, second) and contained_in(second, third):
        assert contained_in(first, third)


@SETTINGS
@given(boolean_queries())
def test_core_is_equivalent_and_no_larger(query):
    minimal = core(query)
    assert len(minimal) <= len(query)
    assert equivalent_queries(query, minimal)


@SETTINGS
@given(boolean_queries())
def test_dropping_atoms_generalises(query):
    if len(query.body) < 2:
        return
    smaller = ConjunctiveQuery((), query.body[:-1], name="smaller")
    assert contained_in(query, smaller)


# ----------------------------------------------------------------------
# Hypergraphs and join trees
# ----------------------------------------------------------------------
@SETTINGS
@given(acyclic_queries())
def test_generated_acyclic_queries_are_acyclic(query):
    assert query.is_acyclic()
    tree = join_tree_of_query_atoms(query.body)
    assert is_valid_join_tree(tree, query.body, query_connectors)
    assert set(tree.atoms()) == set(query.body)


@SETTINGS
@given(boolean_queries())
def test_gyo_agrees_with_join_tree_existence(query):
    from repro.hypergraph import JoinTreeError

    acyclic = is_acyclic_atoms(query.body)
    try:
        tree = join_tree_of_query_atoms(query.body)
        built = True
        assert is_valid_join_tree(tree, query.body, query_connectors)
    except JoinTreeError:
        built = False
    assert built == acyclic


@SETTINGS
@given(acyclic_queries(), st.integers(min_value=0, max_value=1_000))
def test_yannakakis_agrees_with_generic_evaluation(query, seed):
    rng = random.Random(seed)
    domain = [Constant(f"d{i}") for i in range(4)]
    database = Instance(
        Atom(p, tuple(rng.choice(domain) for _ in range(p.arity)))
        for p in query.predicates()
        for _ in range(6)
    )
    assert evaluate_acyclic(query, database) == evaluate_generic(query, database)


# ----------------------------------------------------------------------
# Chase invariants
# ----------------------------------------------------------------------
@SETTINGS
@given(instances(), st.integers(min_value=0, max_value=10_000))
def test_full_tgd_chase_is_sound_and_satisfying(instance, seed):
    rng = random.Random(seed)
    E = Predicate("E", 2)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    tgds = [
        TGD([Atom(E, (x, y))], [Atom(E, (y, x))], label="sym"),
        TGD([Atom(E, (x, y)), Atom(E, (y, z))], [Atom(E, (x, z))], label="trans"),
    ]
    rng.shuffle(tgds)
    result = chase(instance, tgds, max_steps=2_000)
    assert result.terminated
    assert result.satisfies(tgds)
    # The chase only adds atoms (it never removes).
    assert instance.atoms() <= result.instance.atoms()
    # Full tgds introduce no nulls.
    assert result.instance.nulls() == instance.nulls()


@SETTINGS
@given(instances())
def test_egd_chase_result_satisfies_the_egds(instance):
    E = Predicate("E", 2)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    egd = EGD([Atom(E, (x, y)), Atom(E, (x, z))], y, z, label="func")
    result = egd_chase(instance, [egd], on_failure="return")
    if result.failed:
        return
    assert egd.is_satisfied_by(result.instance)
    assert len(result.instance) <= len(instance)


@SETTINGS
@given(acyclic_queries())
def test_canonical_databases_of_acyclic_queries_are_acyclic_instances(query):
    from repro.hypergraph import is_acyclic_instance

    assert is_acyclic_instance(query.canonical_database())
