"""Differential tests: every evaluation engine must agree on q(D).

Four independent implementations are compared on randomized acyclic CQs and
databases:

* the generic backtracking evaluator (``evaluate_generic`` — the oracle);
* the hash-relation Yannakakis evaluator (``evaluate_acyclic``);
* the preserved assignment-dict Yannakakis evaluator (the test-only oracle
  in ``tests/helpers/yannakakis_dict.py``);
* the plan executor (``evaluate_with_plan``) on the relation engine.

The generated workloads deliberately include repeated head variables,
constant-carrying atoms and labelled nulls in the data — the corners where
the original dict implementation's string-keyed deduplication silently
merged distinct answers.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import Atom, Constant, Database, Instance, Null, Predicate, Variable
from helpers.yannakakis_dict import DictYannakakisEvaluator
from repro.evaluation import (
    AcyclicityRequired,
    YannakakisEvaluator,
    boolean_acyclic,
    evaluate_acyclic,
    evaluate_generic,
    evaluate_with_plan,
    membership_generic,
    membership_via_cover_game_guarded,
)
from repro.queries.cq import ConjunctiveQuery
from repro.workloads.generators import (
    random_acyclic_query,
    random_database,
    random_schema,
)

# Shared with tests/test_streaming_eval.py so the streaming differential
# covers the same corner-hitting query space as the set-at-a-time one.
from helpers.workloads import randomized_acyclic_workload as _randomized_workload


def _assert_engines_agree(query: ConjunctiveQuery, database: Instance) -> None:
    try:
        hash_engine = YannakakisEvaluator(query)
    except AcyclicityRequired:
        # Constant injection can, in rare corners, make the variable
        # hypergraph cyclic; the differential check only covers the
        # acyclic engines' domain.
        return
    expected = evaluate_generic(query, database)
    assert hash_engine.evaluate(database) == expected
    assert DictYannakakisEvaluator(query).evaluate(database) == expected
    assert evaluate_with_plan(query, database) == expected
    assert hash_engine.boolean(database) == bool(expected)


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_engines_agree_on_randomized_acyclic_workloads(seed):
    query, database = _randomized_workload(seed)
    _assert_engines_agree(query, database)


@pytest.mark.parametrize("seed", range(25))
def test_engines_agree_on_seeded_grid(seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    query, database = _randomized_workload(seed * 7919)
    _assert_engines_agree(query, database)


def _boolean_workload_with_constants(seed: int):
    """A Boolean acyclic CQ with injected constants plus a random database.

    The cover-game differential needs constants in atom positions (the
    confirmed false positive lived exactly there), so the injection rate is
    higher than in :func:`_randomized_workload`, and a few constants outside
    the database domain are thrown in to produce negative instances.
    """
    rng = random.Random(seed)
    schema = random_schema(
        seed=rng.random(), predicate_count=rng.randint(2, 4), max_arity=rng.randint(1, 3)
    )
    database = random_database(
        seed=rng.random(),
        schema=schema,
        facts_per_predicate=rng.randint(5, 20),
        domain_size=rng.randint(3, 8),
    )
    query = random_acyclic_query(
        seed=rng.random(), schema=schema, atom_count=rng.randint(1, 5)
    )

    domain = sorted(database.constants(), key=str) + [Constant("missing"), Constant(3)]
    body = []
    for atom in query.body:
        terms = list(atom.terms)
        for position in range(len(terms)):
            if rng.random() < 0.25:
                terms[position] = rng.choice(domain)
        body.append(Atom(atom.predicate, tuple(terms)))
    return ConjunctiveQuery((), body, name=f"cover_diff_{seed}"), database


def _assert_cover_game_decides_membership(query: ConjunctiveQuery, database: Instance) -> None:
    """Lemma 32, degenerate case (no constraints): on acyclic CQs the
    existential 1-cover game *is* membership — check both engines against
    the homomorphism oracle and the Yannakakis Boolean evaluator."""
    try:
        YannakakisEvaluator(query)
    except AcyclicityRequired:
        # Constant injection can, in rare corners, make the variable
        # hypergraph cyclic; exactness of the game is only guaranteed on
        # the acyclic domain.
        return
    expected = membership_generic(query, database, ())
    assert boolean_acyclic(query, database) == expected
    assert membership_via_cover_game_guarded(query, database, engine="worklist") == expected
    assert membership_via_cover_game_guarded(query, database, engine="naive") == expected


@settings(max_examples=60, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_cover_game_engines_decide_membership_on_acyclic_boolean_queries(seed):
    query, database = _boolean_workload_with_constants(seed)
    _assert_cover_game_decides_membership(query, database)


@pytest.mark.parametrize("seed", range(25))
def test_cover_game_engines_agree_on_seeded_grid(seed):
    """A fixed, deterministic slice of the same space (fast CI signal)."""
    query, database = _boolean_workload_with_constants(seed * 6271)
    _assert_cover_game_decides_membership(query, database)


class TestDedupRegression:
    """The original evaluator keyed deduplication on ``str(term)``."""

    E = Predicate("E", 2)

    def test_constants_with_equal_string_forms_are_not_merged(self):
        # str(Constant(1)) == str(Constant("1")) == "1": the old key
        # conflated the two answers below into one.
        database = Database(
            [
                Atom(self.E, (Constant(1), Constant("p"))),
                Atom(self.E, (Constant("1"), Constant("q"))),
            ]
        )
        query = ConjunctiveQuery(
            (Variable("x"),), [Atom(self.E, (Variable("x"), Variable("y")))]
        )
        expected = evaluate_generic(query, database)
        assert len(expected) == 2
        assert evaluate_acyclic(query, database) == expected
        assert DictYannakakisEvaluator(query).evaluate(database) == expected

    def test_nulls_and_constants_sharing_a_name_are_not_merged(self):
        database = Instance(
            [
                Atom(self.E, (Constant("n"), Constant("p"))),
                Atom(self.E, (Null("n"), Constant("p"))),
            ]
        )
        query = ConjunctiveQuery(
            (Variable("x"),), [Atom(self.E, (Variable("x"), Variable("y")))]
        )
        expected = evaluate_generic(query, database)
        assert len(expected) == 2
        assert evaluate_acyclic(query, database) == expected
        assert DictYannakakisEvaluator(query).evaluate(database) == expected

    def test_projection_heavy_query_with_ambiguous_terms(self):
        # The merge used to happen on *partial* tuples during the bottom-up
        # projection joins, so exercise a two-node join tree as well.
        F = Predicate("F", 2)
        database = Database(
            [
                Atom(self.E, (Constant(1), Constant("m"))),
                Atom(self.E, (Constant("1"), Constant("m"))),
                Atom(F, (Constant("m"), Constant("t"))),
            ]
        )
        query = ConjunctiveQuery(
            (Variable("x"), Variable("z")),
            [
                Atom(self.E, (Variable("x"), Variable("y"))),
                Atom(F, (Variable("y"), Variable("z"))),
            ],
        )
        expected = evaluate_generic(query, database)
        assert len(expected) == 2
        assert evaluate_acyclic(query, database) == expected
        assert DictYannakakisEvaluator(query).evaluate(database) == expected


class TestRepeatedHeadVariables:
    def test_head_repetition_is_preserved(self):
        E = Predicate("E", 2)
        database = Database([Atom(E, (Constant("a"), Constant("b")))])
        x, y = Variable("x"), Variable("y")
        query = ConjunctiveQuery((x, x, y), [Atom(E, (x, y))])
        expected = {(Constant("a"), Constant("a"), Constant("b"))}
        assert evaluate_generic(query, database) == expected
        assert evaluate_acyclic(query, database) == expected
        assert evaluate_with_plan(query, database) == expected
