"""Tests for the Datalog-like parser and the pretty-printers."""

import pytest

from repro.datamodel import Constant, Predicate, Schema, Variable
from repro.dependencies import EGD, TGD
from repro.parser import (
    ParseError,
    format_atom,
    format_dependency,
    format_egd,
    format_instance,
    format_query,
    format_tgd,
    format_ucq,
    parse_atom,
    parse_conjunction,
    parse_dependency,
    parse_egd,
    parse_program,
    parse_query,
    parse_tgd,
    parse_ucq,
)


class TestParsing:
    def test_parse_atom_terms(self):
        atom = parse_atom("R(x, 'a', 3)")
        assert atom.predicate == Predicate("R", 3)
        assert atom.terms == (Variable("x"), Constant("a"), Constant(3))

    def test_parse_nullary_atom(self):
        atom = parse_atom("Flag()")
        assert atom.predicate.arity == 0

    def test_malformed_atoms(self):
        for text in ["R(x", "R x)", "R(x,)", "(x, y)", "R(x y)"]:
            with pytest.raises(ParseError):
                parse_atom(text)

    def test_parse_conjunction_splits_on_top_level_commas(self):
        atoms = parse_conjunction("R(x, y), S(y, z, w), T(x)")
        assert [a.predicate.name for a in atoms] == ["R", "S", "T"]

    def test_parse_boolean_query(self):
        query = parse_query("R(x, y), S(y, z, w)")
        assert query.is_boolean()
        assert len(query) == 2

    def test_parse_query_with_head(self):
        query = parse_query("answer(x, z) :- R(x, y), R(y, z)")
        assert query.name == "answer"
        assert query.head == (Variable("x"), Variable("z"))

    def test_head_constants_are_rejected(self):
        with pytest.raises(ParseError):
            parse_query("q(x, 'a') :- R(x, y)")

    def test_parse_ucq(self):
        ucq = parse_ucq("q(x) :- R(x, y) ; q(x) :- S(x)")
        assert len(ucq) == 2
        assert ucq.arity == 1

    def test_parse_tgd(self):
        tgd = parse_tgd("R(x, y), S(y) -> T(x, z)")
        assert isinstance(tgd, TGD)
        assert tgd.existential_variables() == {Variable("z")}

    def test_parse_egd(self):
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        assert isinstance(egd, EGD)
        assert {egd.left, egd.right} == {Variable("y"), Variable("z")}

    def test_parse_dependency_dispatch(self):
        assert isinstance(parse_dependency("R(x, y) -> S(x)"), TGD)
        assert isinstance(parse_dependency("R(x, y), R(x, z) -> y = z"), EGD)

    def test_parse_program(self):
        program = parse_program(
            """
            % keys and inclusions
            R(x, y), R(x, z) -> y = z
            R(x, y) -> S(x)
            """
        )
        assert len(program) == 2
        assert isinstance(program[0], EGD)
        assert isinstance(program[1], TGD)

    def test_schema_checks_arities(self):
        schema = Schema([Predicate("R", 2)])
        with pytest.raises(ValueError):
            parse_atom("R(x, y, z)", schema)

    def test_missing_arrow_errors(self):
        with pytest.raises(ParseError):
            parse_tgd("R(x, y)")
        with pytest.raises(ParseError):
            parse_egd("R(x, y) -> S(x)")
        with pytest.raises(ParseError):
            parse_dependency("R(x, y)")


class TestFormattingRoundTrips:
    def test_atom_round_trip(self):
        atom = parse_atom("R(x, 'a', 3)")
        assert parse_atom(format_atom(atom)) == atom

    def test_query_round_trip(self):
        query = parse_query("q(x, z) :- R(x, y), R(y, z)")
        assert parse_query(format_query(query)) == query

    def test_boolean_query_round_trip(self):
        query = parse_query("R(x, y), S(y, z, w)")
        assert parse_query(format_query(query)) == query

    def test_tgd_round_trip(self):
        tgd = parse_tgd("R(x, y), S(y) -> T(x, z)")
        assert parse_tgd(format_tgd(tgd)) == tgd

    def test_egd_round_trip(self):
        egd = parse_egd("R(x, y), R(x, z) -> y = z")
        assert parse_egd(format_egd(egd)) == egd
        assert "=" in format_dependency(egd)

    def test_ucq_round_trip(self):
        ucq = parse_ucq("q(x) :- R(x, y) ; q(x) :- S(x)")
        assert parse_ucq(format_ucq(ucq)) == ucq

    def test_format_instance_is_deterministic(self):
        query = parse_query("R(x, y), S(y, z, w)")
        database = query.canonical_database()
        assert format_instance(database) == format_instance(database.copy())
