"""Tuple-generating dependencies (tgds).

A tgd is an expression ``∀x̄∀ȳ (φ(x̄, ȳ) → ∃z̄ ψ(x̄, z̄))`` where ``φ`` (the
body) and ``ψ`` (the head) are conjunctions of atoms (Section 2).  The class
below exposes the structural notions needed by the classification machinery
(frontier / existential variables, guards, linearity, connectivity) and the
logical reading used by the chase (applicability and satisfaction).
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Atom,
    Constant,
    Instance,
    Predicate,
    Schema,
    Term,
    Variable,
    atoms_predicates,
    atoms_variables,
)
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import homomorphisms


class TGD:
    """A tuple-generating dependency ``body → ∃z̄ head``."""

    def __init__(
        self,
        body: Iterable[Atom],
        head: Iterable[Atom],
        label: Optional[str] = None,
    ) -> None:
        self._body: Tuple[Atom, ...] = tuple(body)
        self._head: Tuple[Atom, ...] = tuple(head)
        self.label = label or "tgd"
        if not self._body:
            raise ValueError("a tgd needs at least one body atom")
        if not self._head:
            raise ValueError("a tgd needs at least one head atom")
        for atom in self._body + self._head:
            if atom.nulls():
                raise ValueError(f"tgds must not contain nulls: {atom}")

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def body(self) -> Tuple[Atom, ...]:
        return self._body

    @property
    def head(self) -> Tuple[Atom, ...]:
        return self._head

    def body_variables(self) -> Set[Variable]:
        """Variables occurring in the body (the ``x̄ ∪ ȳ`` of the definition)."""
        return atoms_variables(self._body)

    def head_variables(self) -> Set[Variable]:
        """Variables occurring in the head."""
        return atoms_variables(self._head)

    def frontier_variables(self) -> Set[Variable]:
        """Variables shared between body and head (the ``x̄``)."""
        return self.body_variables() & self.head_variables()

    def existential_variables(self) -> Set[Variable]:
        """Head variables that do not occur in the body (the ``z̄``)."""
        return self.head_variables() - self.body_variables()

    def predicates(self) -> Set[Predicate]:
        return atoms_predicates(self._body + self._head)

    def body_predicates(self) -> Set[Predicate]:
        return atoms_predicates(self._body)

    def head_predicates(self) -> Set[Predicate]:
        return atoms_predicates(self._head)

    def schema(self) -> Schema:
        return Schema(self.predicates())

    # ------------------------------------------------------------------
    # Syntactic classes (per-tgd notions; set-level notions live in
    # ``repro.dependencies.classification``)
    # ------------------------------------------------------------------
    def is_full(self) -> bool:
        """Full tgds have no existentially quantified head variables."""
        return not self.existential_variables()

    def guards(self) -> List[Atom]:
        """Return the body atoms that contain every body variable."""
        body_variables = self.body_variables()
        return [atom for atom in self._body if body_variables <= atom.variables()]

    def is_guarded(self) -> bool:
        """Guarded tgds have a body atom containing all body variables."""
        return bool(self.guards())

    def guard(self) -> Atom:
        """Return one guard atom.

        Raises:
            ValueError: if the tgd is not guarded.
        """
        guards = self.guards()
        if not guards:
            raise ValueError(f"tgd {self} is not guarded")
        return guards[0]

    def is_linear(self) -> bool:
        """Linear tgds have a single body atom."""
        return len(self._body) == 1

    def is_inclusion_dependency(self) -> bool:
        """Inclusion dependencies: linear, single head atom, no repeated variables.

        Neither the body atom nor the head atom may repeat a variable, and no
        constants are allowed.
        """
        if not self.is_linear() or len(self._head) != 1:
            return False
        body_atom = self._body[0]
        head_atom = self._head[0]
        for atom in (body_atom, head_atom):
            if atom.constants():
                return False
            if len(set(atom.terms)) != len(atom.terms):
                return False
        return True

    def is_body_connected(self) -> bool:
        """Return ``True`` iff the Gaifman graph of the body is connected."""
        return ConjunctiveQuery((), self._body, name="body").is_connected()

    # ------------------------------------------------------------------
    # Logical reading
    # ------------------------------------------------------------------
    def body_query(self) -> ConjunctiveQuery:
        """The CQ ``q_φ(x̄) = ∃ȳ φ(x̄, ȳ)`` with the frontier as free variables."""
        frontier = sorted(self.frontier_variables(), key=str)
        return ConjunctiveQuery(frontier, self._body, name=f"{self.label}_body")

    def head_query(self) -> ConjunctiveQuery:
        """The CQ ``q_ψ(x̄) = ∃z̄ ψ(x̄, z̄)`` with the frontier as free variables."""
        frontier = sorted(self.frontier_variables(), key=str)
        return ConjunctiveQuery(frontier, self._head, name=f"{self.label}_head")

    def triggers(self, instance: Instance) -> Iterable[Dict[Term, Term]]:
        """Yield every homomorphism from the body into ``instance`` (the triggers)."""
        return homomorphisms(self._body, instance)

    def is_satisfied_by(self, instance: Instance) -> bool:
        """Return ``True`` iff ``instance`` satisfies the tgd.

        An instance satisfies ``φ → ∃z̄ ψ`` iff every trigger extends to a
        homomorphism of the head (equivalently ``q_φ(I) ⊆ q_ψ(I)``).
        """
        for trigger in self.triggers(instance):
            restricted = {
                variable: trigger[variable]
                for variable in self.frontier_variables()
            }
            satisfied = False
            for _ in homomorphisms(self._head, instance, seed=restricted):
                satisfied = True
                break
            if not satisfied:
                return False
        return True

    # ------------------------------------------------------------------
    def rename_apart(self, taken: Iterable[Variable], suffix: str = "_t") -> "TGD":
        """Return a variant of the tgd whose variables avoid ``taken``."""
        taken_names = {variable.name for variable in taken}
        mapping: Dict[Term, Term] = {}
        for variable in sorted(self.body_variables() | self.head_variables(), key=str):
            if variable.name in taken_names:
                candidate = variable.name + suffix
                counter = 0
                while candidate in taken_names:
                    counter += 1
                    candidate = f"{variable.name}{suffix}{counter}"
                taken_names.add(candidate)
                mapping[variable] = Variable(candidate)
        if not mapping:
            return self
        return TGD(
            [atom.apply(mapping) for atom in self._body],
            [atom.apply(mapping) for atom in self._head],
            label=self.label,
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TGD):
            return NotImplemented
        return set(self._body) == set(other._body) and set(self._head) == set(other._head)

    def __hash__(self) -> int:
        return hash((frozenset(self._body), frozenset(self._head)))

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._body)
        head = ", ".join(str(a) for a in self._head)
        existential = sorted(self.existential_variables(), key=str)
        prefix = f"∃{','.join(str(v) for v in existential)} " if existential else ""
        return f"{body} → {prefix}{head}"

    def __repr__(self) -> str:
        return f"TGD({self})"


def tgd_set_variables(tgds: Iterable[TGD]) -> Set[Variable]:
    """All variables used across a set of tgds."""
    result: Set[Variable] = set()
    for tgd in tgds:
        result.update(tgd.body_variables())
        result.update(tgd.head_variables())
    return result


def tgd_set_predicates(tgds: Iterable[TGD]) -> Set[Predicate]:
    """All predicates used across a set of tgds."""
    result: Set[Predicate] = set()
    for tgd in tgds:
        result.update(tgd.predicates())
    return result


def tgd_set_schema(tgds: Iterable[TGD]) -> Schema:
    """The schema induced by a set of tgds."""
    return Schema(tgd_set_predicates(tgds))


def max_body_size(tgds: Iterable[TGD]) -> int:
    """The maximum number of body atoms over the set (the ``b_Σ`` of Section 5.1)."""
    sizes = [len(tgd.body) for tgd in tgds]
    return max(sizes) if sizes else 0
