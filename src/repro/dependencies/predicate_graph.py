"""Predicate and position dependency graphs of tgd sets.

Two graphs drive the "weak" notions of Section 2:

* the **predicate graph** has an edge from every body predicate to every head
  predicate of each tgd; a set of tgds is *non-recursive* iff this graph has
  no directed cycle;
* the **position dependency graph** of Fagin et al. has the positions
  ``(predicate, index)`` as nodes, with regular and *special* edges induced
  by the propagation of universally quantified variables and the creation of
  existential values; a set is *weakly acyclic* iff no cycle goes through a
  special edge.

The module also computes the set of **affected positions** (positions that
may host labelled nulls during the chase), which underlies weak guardedness
and weak stickiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..datamodel import Predicate, Variable
from .tgd import TGD


Position = Tuple[Predicate, int]


# ----------------------------------------------------------------------
# Predicate graph / non-recursiveness
# ----------------------------------------------------------------------
def predicate_graph(tgds: Iterable[TGD]) -> Dict[Predicate, Set[Predicate]]:
    """Directed graph with an edge body-predicate → head-predicate per tgd."""
    graph: Dict[Predicate, Set[Predicate]] = {}
    for tgd in tgds:
        for source in tgd.body_predicates():
            graph.setdefault(source, set())
            for target in tgd.head_predicates():
                graph.setdefault(target, set())
                graph[source].add(target)
    return graph


def _has_directed_cycle(graph: Dict[object, Set[object]]) -> bool:
    """Standard three-colour DFS cycle detection."""
    WHITE, GREY, BLACK = 0, 1, 2
    colour: Dict[object, int] = {node: WHITE for node in graph}

    def visit(node: object) -> bool:
        colour[node] = GREY
        for neighbour in graph.get(node, ()):  # pragma: no branch
            if colour[neighbour] == GREY:
                return True
            if colour[neighbour] == WHITE and visit(neighbour):
                return True
        colour[node] = BLACK
        return False

    return any(colour[node] == WHITE and visit(node) for node in list(graph))


def is_non_recursive(tgds: Sequence[TGD]) -> bool:
    """Non-recursive sets of tgds: acyclic predicate graph."""
    return not _has_directed_cycle(predicate_graph(tgds))


def stratification_depth(tgds: Sequence[TGD]) -> int:
    """Length of the longest path in the predicate graph (∞-free only).

    Only meaningful for non-recursive sets; used to bound the number of
    rounds of the chase and of the rewriting.  Raises ``ValueError`` on
    recursive sets.
    """
    if not is_non_recursive(tgds):
        raise ValueError("stratification depth is defined for non-recursive sets only")
    graph = predicate_graph(tgds)
    depth: Dict[Predicate, int] = {}

    def longest_from(node: Predicate) -> int:
        if node in depth:
            return depth[node]
        best = 0
        for neighbour in graph.get(node, ()):  # pragma: no branch
            best = max(best, 1 + longest_from(neighbour))
        depth[node] = best
        return best

    return max((longest_from(node) for node in graph), default=0)


# ----------------------------------------------------------------------
# Position dependency graph / weak acyclicity
# ----------------------------------------------------------------------
@dataclass
class PositionGraph:
    """The position dependency graph: regular and special directed edges."""

    regular_edges: Set[Tuple[Position, Position]] = field(default_factory=set)
    special_edges: Set[Tuple[Position, Position]] = field(default_factory=set)
    positions: Set[Position] = field(default_factory=set)

    def all_edges(self) -> Set[Tuple[Position, Position]]:
        return self.regular_edges | self.special_edges


def position_dependency_graph(tgds: Iterable[TGD]) -> PositionGraph:
    """Build the Fagin et al. position dependency graph of a set of tgds."""
    graph = PositionGraph()
    for tgd in tgds:
        for atom in tuple(tgd.body) + tuple(tgd.head):
            for index in range(atom.arity):
                graph.positions.add((atom.predicate, index))
        existential = tgd.existential_variables()
        for variable in tgd.body_variables():
            body_positions = {
                (atom.predicate, index)
                for atom in tgd.body
                for index, term in enumerate(atom.terms)
                if term == variable
            }
            head_positions = {
                (atom.predicate, index)
                for atom in tgd.head
                for index, term in enumerate(atom.terms)
                if term == variable
            }
            if not head_positions:
                continue
            for source in body_positions:
                for target in head_positions:
                    graph.regular_edges.add((source, target))
                for atom in tgd.head:
                    for index, term in enumerate(atom.terms):
                        if term in existential:
                            graph.special_edges.add((source, (atom.predicate, index)))
    return graph


def is_weakly_acyclic(tgds: Sequence[TGD]) -> bool:
    """Weak acyclicity: no cycle of the position graph uses a special edge."""
    graph = position_dependency_graph(tgds)
    adjacency: Dict[Position, Set[Tuple[Position, bool]]] = {
        position: set() for position in graph.positions
    }
    for source, target in graph.regular_edges:
        adjacency[source].add((target, False))
    for source, target in graph.special_edges:
        adjacency[source].add((target, True))

    # A cycle through a special edge exists iff for some special edge (u, v),
    # u is reachable from v.
    def reachable(start: Position, goal: Position) -> bool:
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            if node == goal:
                return True
            for neighbour, _ in adjacency[node]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return False

    return not any(
        reachable(target, source) for source, target in graph.special_edges
    )


# ----------------------------------------------------------------------
# Affected positions (for the weak classes)
# ----------------------------------------------------------------------
def affected_positions(tgds: Sequence[TGD]) -> Set[Position]:
    """Positions that may host labelled nulls during the chase.

    A position is affected if an existential variable occurs there in some
    head, or (inductively) if some tgd propagates a universal variable that
    occurs *only* at affected positions in its body to that head position.
    """
    affected: Set[Position] = set()
    for tgd in tgds:
        existential = tgd.existential_variables()
        for atom in tgd.head:
            for index, term in enumerate(atom.terms):
                if term in existential:
                    affected.add((atom.predicate, index))

    changed = True
    while changed:
        changed = False
        for tgd in tgds:
            for variable in tgd.frontier_variables():
                body_positions = {
                    (atom.predicate, index)
                    for atom in tgd.body
                    for index, term in enumerate(atom.terms)
                    if term == variable
                }
                if not body_positions or not body_positions <= affected:
                    continue
                for atom in tgd.head:
                    for index, term in enumerate(atom.terms):
                        if term == variable and (atom.predicate, index) not in affected:
                            affected.add((atom.predicate, index))
                            changed = True
    return affected


def is_weakly_guarded(tgds: Sequence[TGD]) -> bool:
    """Weak guardedness: a body atom covers all affected-only body variables.

    A body variable is *harmful* for a tgd if every body position where it
    occurs is affected; the tgd is weakly guarded if some body atom contains
    every harmful variable (a plain guard trivially qualifies).
    """
    affected = affected_positions(tgds)
    for tgd in tgds:
        harmful: Set[Variable] = set()
        for variable in tgd.body_variables():
            positions = {
                (atom.predicate, index)
                for atom in tgd.body
                for index, term in enumerate(atom.terms)
                if term == variable
            }
            if positions and positions <= affected:
                harmful.add(variable)
        if not harmful:
            continue
        if not any(harmful <= atom.variables() for atom in tgd.body):
            return False
    return True


def is_weakly_sticky(tgds: Sequence[TGD]) -> bool:
    """Weak stickiness: repeated marked body variables must touch a safe position.

    A position is *safe* when it is not affected (only finitely many values
    can ever appear there during the chase).  A set is weakly sticky if, for
    every tgd, every variable that occurs more than once in its body is
    either unmarked or occurs at some safe position.
    """
    from .marking import compute_marking

    affected = affected_positions(tgds)
    marking = compute_marking(tgds)
    for index, tgd in enumerate(tgds):
        occurrences: Dict[Variable, List[Position]] = {}
        for atom in tgd.body:
            for position_index, term in enumerate(atom.terms):
                if isinstance(term, Variable):
                    occurrences.setdefault(term, []).append(
                        (atom.predicate, position_index)
                    )
        for variable, positions in occurrences.items():
            if len(positions) < 2:
                continue
            if variable not in marking.marked_variables.get(index, set()):
                continue
            if all(position in affected for position in positions):
                return False
    return True
