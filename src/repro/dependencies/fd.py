"""Functional dependencies and keys, compiled to egds.

A functional dependency ``R : A → B`` over an ``n``-ary relation ``R`` (with
``A, B ⊆ {1, ..., n}``, positions counted from 1 as in the paper) asserts
that the values of the attributes in ``B`` are determined by those in ``A``.
A key is an FD with ``A ∪ B = {1, ..., n}``.  The paper's positive results
for egds concern keys over unary and binary predicates (the class ``K2``,
Theorem 23) and unary FDs (FDs with ``|A| = 1``, the Figueira extension).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..datamodel import Atom, Predicate, Variable
from .egd import EGD


@dataclass(frozen=True)
class FunctionalDependency:
    """A functional dependency ``R : A → B`` (1-based attribute positions)."""

    predicate: Predicate
    determinant: FrozenSet[int]
    dependent: FrozenSet[int]

    def __post_init__(self) -> None:
        arity = self.predicate.arity
        positions = set(self.determinant) | set(self.dependent)
        if not positions <= set(range(1, arity + 1)):
            raise ValueError(
                f"attribute positions {sorted(positions)} outside 1..{arity} "
                f"for predicate {self.predicate}"
            )
        if not self.determinant:
            raise ValueError("the determinant of an FD must be non-empty")
        if not self.dependent:
            raise ValueError("the dependent set of an FD must be non-empty")

    # ------------------------------------------------------------------
    @staticmethod
    def of(
        predicate: Predicate,
        determinant: Iterable[int],
        dependent: Iterable[int],
    ) -> "FunctionalDependency":
        """Convenience constructor accepting any iterables of positions."""
        return FunctionalDependency(
            predicate, frozenset(determinant), frozenset(dependent)
        )

    # ------------------------------------------------------------------
    def is_key(self) -> bool:
        """Return ``True`` iff ``A ∪ B = {1, ..., n}`` (the FD is a key)."""
        return set(self.determinant) | set(self.dependent) == set(
            range(1, self.predicate.arity + 1)
        )

    def is_unary(self) -> bool:
        """Return ``True`` iff the determinant consists of a single attribute."""
        return len(self.determinant) == 1

    def over_low_arity(self, max_arity: int = 2) -> bool:
        """Return ``True`` iff the underlying predicate has arity ≤ ``max_arity``."""
        return self.predicate.arity <= max_arity

    # ------------------------------------------------------------------
    def to_egds(self) -> List[EGD]:
        """Compile the FD into one egd per dependent attribute.

        ``R : A → B`` becomes, for each ``b ∈ B \\ A``, the egd
        ``R(x̄), R(x̄') → x_b = x'_b`` where ``x̄`` and ``x̄'`` agree exactly on
        the positions of ``A``.
        """
        arity = self.predicate.arity
        first = [Variable(f"x{i}") for i in range(1, arity + 1)]
        second = [
            first[i - 1] if i in self.determinant else Variable(f"y{i}")
            for i in range(1, arity + 1)
        ]
        body = [Atom(self.predicate, tuple(first)), Atom(self.predicate, tuple(second))]
        egds: List[EGD] = []
        for position in sorted(set(self.dependent) - set(self.determinant)):
            egds.append(
                EGD(
                    body,
                    first[position - 1],
                    second[position - 1],
                    label=f"{self.predicate.name}:{sorted(self.determinant)}->{position}",
                )
            )
        if not egds:
            # B ⊆ A: the FD is trivial; emit a tautological egd equating a
            # determinant position with itself is pointless, so return nothing.
            return []
        return egds

    def __str__(self) -> str:
        return (
            f"{self.predicate.name}: "
            f"{{{', '.join(map(str, sorted(self.determinant)))}}} → "
            f"{{{', '.join(map(str, sorted(self.dependent)))}}}"
        )


def key(predicate: Predicate, key_positions: Iterable[int]) -> FunctionalDependency:
    """Build the key FD of ``predicate`` with the given key attributes."""
    key_set = frozenset(key_positions)
    others = frozenset(range(1, predicate.arity + 1)) - key_set
    if not others:
        raise ValueError(
            "a key over all attributes is trivial; give a proper subset"
        )
    return FunctionalDependency(predicate, key_set, others)


def fds_to_egds(fds: Iterable[FunctionalDependency]) -> List[EGD]:
    """Compile a collection of FDs into a flat list of egds."""
    egds: List[EGD] = []
    for fd in fds:
        egds.extend(fd.to_egds())
    return egds


def all_keys(fds: Iterable[FunctionalDependency]) -> bool:
    """Return ``True`` iff every FD in the collection is a key."""
    return all(fd.is_key() for fd in fds)


def all_unary(fds: Iterable[FunctionalDependency]) -> bool:
    """Return ``True`` iff every FD in the collection is unary (|A| = 1)."""
    return all(fd.is_unary() for fd in fds)


def all_over_low_arity(fds: Iterable[FunctionalDependency], max_arity: int = 2) -> bool:
    """Return ``True`` iff every FD concerns predicates of arity ≤ ``max_arity``."""
    return all(fd.over_low_arity(max_arity) for fd in fds)


def is_k2_set(fds: Iterable[FunctionalDependency]) -> bool:
    """The class ``K2`` of Theorem 23: keys over unary and binary predicates."""
    fd_list = list(fds)
    return all_keys(fd_list) and all_over_low_arity(fd_list, max_arity=2)
