"""The connecting operator ``c(·)`` of Section 4.

Given an acyclic Boolean CQ ``q``, a Boolean CQ ``q'`` and a finite set ``Σ``
of tgds, the connecting operator produces ``(c(q), c(q'), c(Σ))`` such that

* ``c(q)`` is acyclic and connected,
* ``c(q')`` is connected and *not* semantically acyclic under ``c(Σ)``
  (it contains an ``aux``-triangle),
* ``c(Σ)`` is a set of body-connected tgds, and
* ``q ⊆_Σ q'`` iff ``c(q) ⊆_{c(Σ)} c(q')``.

This is the generic reduction from ``AcBoolCont`` to ``RestCont`` used for
all the lower bounds (Proposition 13); the library uses it both in tests (to
validate the reduction on decidable instances) and to construct hard
instances for the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from ..datamodel import Atom, Predicate, Variable
from ..queries.cq import ConjunctiveQuery
from .tgd import TGD


#: The auxiliary binary predicate introduced by the operator.
AUX_PREDICATE = Predicate("aux__c", 2)


def _starred(predicate: Predicate) -> Predicate:
    """The predicate ``R⋆`` with one extra (connecting) position."""
    return Predicate(f"{predicate.name}__star", predicate.arity + 1)


def _fresh_variable(base: str, taken: set) -> Variable:
    candidate = base
    counter = 0
    while candidate in taken:
        counter += 1
        candidate = f"{base}{counter}"
    taken.add(candidate)
    return Variable(candidate)


@dataclass(frozen=True)
class ConnectedInstance:
    """The output of the connecting operator."""

    left_query: ConjunctiveQuery
    right_query: ConjunctiveQuery
    tgds: Tuple[TGD, ...]


def connect_query_simple(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return ``c(q)``: starred atoms sharing a fresh variable plus ``aux(w, w)``."""
    if query.head:
        raise ValueError("the connecting operator is defined for Boolean CQs")
    taken = {variable.name for variable in query.variables()}
    w = _fresh_variable("w__c", taken)
    body: List[Atom] = [
        Atom(_starred(atom.predicate), atom.terms + (w,)) for atom in query.body
    ]
    body.append(Atom(AUX_PREDICATE, (w, w)))
    return ConjunctiveQuery((), body, name=f"c({query.name})")


def connect_query_triangle(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return ``c(q')``: starred atoms plus an ``aux`` triangle ``w → u → v → w``."""
    if query.head:
        raise ValueError("the connecting operator is defined for Boolean CQs")
    taken = {variable.name for variable in query.variables()}
    w = _fresh_variable("w__c", taken)
    u = _fresh_variable("u__c", taken)
    v = _fresh_variable("v__c", taken)
    body: List[Atom] = [
        Atom(_starred(atom.predicate), atom.terms + (w,)) for atom in query.body
    ]
    body.extend(
        [
            Atom(AUX_PREDICATE, (w, u)),
            Atom(AUX_PREDICATE, (u, v)),
            Atom(AUX_PREDICATE, (v, w)),
        ]
    )
    return ConjunctiveQuery((), body, name=f"c({query.name})")


def connect_tgd(tgd: TGD) -> TGD:
    """Return ``c(τ)``: every atom gains the same fresh connecting variable."""
    taken = {variable.name for variable in tgd.body_variables() | tgd.head_variables()}
    w = _fresh_variable("w__c", taken)
    body = [Atom(_starred(atom.predicate), atom.terms + (w,)) for atom in tgd.body]
    head = [Atom(_starred(atom.predicate), atom.terms + (w,)) for atom in tgd.head]
    return TGD(body, head, label=f"c({tgd.label})")


def connect(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
) -> ConnectedInstance:
    """Apply the connecting operator to an ``AcBoolCont`` instance.

    Args:
        acyclic_query: the acyclic Boolean CQ ``q`` (left-hand side).
        other_query: the Boolean CQ ``q'`` (right-hand side).
        tgds: the set ``Σ``.

    Returns:
        The connected triple ``(c(q), c(q'), c(Σ))``.
    """
    return ConnectedInstance(
        left_query=connect_query_simple(acyclic_query),
        right_query=connect_query_triangle(other_query),
        tgds=tuple(connect_tgd(tgd) for tgd in tgds),
    )


def is_closed_under_connecting(tgds: Sequence[TGD], check) -> bool:
    """Check that a class membership test survives the connecting operator.

    ``check`` is a predicate over lists of tgds (e.g.
    :func:`repro.dependencies.classification.is_guarded_set`); the function
    returns ``True`` iff the connected set still satisfies it.  Used by tests
    to confirm the closure claims of Section 4 for G, L, ID, NR and S.
    """
    connected = [connect_tgd(tgd) for tgd in tgds]
    return bool(check(connected))
