"""Set-level classification of tgd sets into the paper's syntactic classes.

Section 2 recalls the classes for which CQ containment is decidable:
guarded (G), linear (L), inclusion dependencies (ID), non-recursive (NR),
sticky (S) and the "weak" relaxations (weakly acyclic, weakly guarded,
weakly sticky), plus the class F of full tgds for which Theorem 7 proves
semantic acyclicity undecidable.  This module bundles the per-tgd and
graph-based checks into a single classification facility used by the
SemAc dispatcher.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, Iterable, List, Sequence, Set

from .marking import is_sticky
from .predicate_graph import (
    is_non_recursive,
    is_weakly_acyclic,
    is_weakly_guarded,
    is_weakly_sticky,
)
from .tgd import TGD


class DependencyClass(Enum):
    """The syntactic classes of sets of tgds considered in the paper."""

    FULL = "full"
    GUARDED = "guarded"
    LINEAR = "linear"
    INCLUSION = "inclusion"
    NON_RECURSIVE = "non-recursive"
    STICKY = "sticky"
    WEAKLY_ACYCLIC = "weakly-acyclic"
    WEAKLY_GUARDED = "weakly-guarded"
    WEAKLY_STICKY = "weakly-sticky"
    BODY_CONNECTED = "body-connected"


def is_full_set(tgds: Sequence[TGD]) -> bool:
    """The class F: every tgd is full (no existential head variables)."""
    return all(tgd.is_full() for tgd in tgds)


def is_guarded_set(tgds: Sequence[TGD]) -> bool:
    """The class G: every tgd has a guard."""
    return all(tgd.is_guarded() for tgd in tgds)


def is_linear_set(tgds: Sequence[TGD]) -> bool:
    """The class L: every tgd has a single body atom."""
    return all(tgd.is_linear() for tgd in tgds)


def is_inclusion_set(tgds: Sequence[TGD]) -> bool:
    """The class ID: every tgd is an inclusion dependency."""
    return all(tgd.is_inclusion_dependency() for tgd in tgds)


def is_non_recursive_set(tgds: Sequence[TGD]) -> bool:
    """The class NR: acyclic predicate graph."""
    return is_non_recursive(tgds)


def is_sticky_set(tgds: Sequence[TGD]) -> bool:
    """The class S: the marking procedure leaves all join variables unmarked."""
    return is_sticky(tgds)


def is_body_connected_set(tgds: Sequence[TGD]) -> bool:
    """Every tgd has a connected body (the hypothesis of Proposition 5)."""
    return all(tgd.is_body_connected() for tgd in tgds)


_CHECKS = {
    DependencyClass.FULL: is_full_set,
    DependencyClass.GUARDED: is_guarded_set,
    DependencyClass.LINEAR: is_linear_set,
    DependencyClass.INCLUSION: is_inclusion_set,
    DependencyClass.NON_RECURSIVE: is_non_recursive_set,
    DependencyClass.STICKY: is_sticky_set,
    DependencyClass.WEAKLY_ACYCLIC: is_weakly_acyclic,
    DependencyClass.WEAKLY_GUARDED: is_weakly_guarded,
    DependencyClass.WEAKLY_STICKY: is_weakly_sticky,
    DependencyClass.BODY_CONNECTED: is_body_connected_set,
}


def classify(tgds: Sequence[TGD]) -> Set[DependencyClass]:
    """Return every class (among the supported ones) the tgd set belongs to."""
    tgd_list = list(tgds)
    return {cls for cls, check in _CHECKS.items() if check(tgd_list)}


def belongs_to(tgds: Sequence[TGD], dependency_class: DependencyClass) -> bool:
    """Return ``True`` iff the set belongs to the requested class."""
    return _CHECKS[dependency_class](list(tgds))


def decidable_semac_classes(tgds: Sequence[TGD]) -> Set[DependencyClass]:
    """Classes of the set for which the paper proves SemAc decidable.

    These are guarded (and its subclasses linear / inclusion), non-recursive
    and sticky.  Full tgds and the weak relaxations are excluded (Theorem 7).
    """
    found = classify(tgds)
    decidable = {
        DependencyClass.GUARDED,
        DependencyClass.LINEAR,
        DependencyClass.INCLUSION,
        DependencyClass.NON_RECURSIVE,
        DependencyClass.STICKY,
    }
    return found & decidable


def describe(tgds: Sequence[TGD]) -> str:
    """Human-readable one-line description of the classification."""
    names = sorted(cls.value for cls in classify(tgds))
    return ", ".join(names) if names else "(none of the supported classes)"
