"""The sticky marking procedure (Figure 1(b), following Calì–Gottlob–Pieris).

Stickiness is defined through an inductive marking of body-variable
occurrences:

* **Base step** — for every tgd ``σ`` and body variable ``v`` of ``σ``: if
  some head atom of ``σ`` does not mention ``v``, mark every occurrence of
  ``v`` in the body of ``σ``.
* **Propagation step** (to fixpoint) — whenever a marked variable occurs in
  the body of some tgd at position ``π = (predicate, index)``, then for every
  tgd ``σ'`` and every body variable ``v`` of ``σ'`` occurring in the *head*
  of ``σ'`` at position ``π``, mark every occurrence of ``v`` in the body of
  ``σ'``.

A finite set of tgds is **sticky** iff no tgd contains two occurrences of a
marked variable in its body (i.e. all join variables end up unmarked).

Note on Figure 1: the paper's figure contrasts the set whose first rule is
``T(x,y,z) → ∃w S(y,w)`` (sticky — the join variable ``y`` of the second rule
is propagated to every inferred atom) with the set whose first rule is
``T(x,y,z) → ∃w S(x,w)`` (not sticky — ``y`` is dropped by ``S``).  Both sets
are available in :mod:`repro.workloads.paper_examples` and the benchmark
``bench_fig1_stickiness.py`` regenerates the markings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..datamodel import Predicate, Variable
from .tgd import TGD


#: A position is a (predicate, 0-based argument index) pair.
Position = Tuple[Predicate, int]


@dataclass
class MarkingResult:
    """Result of running the sticky marking procedure over a set of tgds."""

    #: For each tgd (by list index), the set of marked body variables.
    marked_variables: Dict[int, Set[Variable]] = field(default_factory=dict)
    #: Positions at which some marked variable occurs in some body.
    marked_positions: Set[Position] = field(default_factory=set)
    #: The tgds, in the order they were supplied.
    tgds: List[TGD] = field(default_factory=list)

    def is_sticky(self) -> bool:
        """Sticky iff no tgd repeats a marked variable in its body."""
        for index, tgd in enumerate(self.tgds):
            marked = self.marked_variables.get(index, set())
            occurrences: Dict[Variable, int] = {}
            for atom in tgd.body:
                for term in atom.terms:
                    if isinstance(term, Variable):
                        occurrences[term] = occurrences.get(term, 0) + 1
            for variable in marked:
                if occurrences.get(variable, 0) >= 2:
                    return False
        return True

    def violating_tgds(self) -> List[int]:
        """Indexes of tgds that repeat a marked variable in their body."""
        violations: List[int] = []
        for index, tgd in enumerate(self.tgds):
            marked = self.marked_variables.get(index, set())
            occurrences: Dict[Variable, int] = {}
            for atom in tgd.body:
                for term in atom.terms:
                    if isinstance(term, Variable):
                        occurrences[term] = occurrences.get(term, 0) + 1
            if any(occurrences.get(variable, 0) >= 2 for variable in marked):
                violations.append(index)
        return violations


def _body_positions_of(tgd: TGD, variable: Variable) -> Set[Position]:
    """Positions at which ``variable`` occurs in the body of ``tgd``."""
    positions: Set[Position] = set()
    for atom in tgd.body:
        for index, term in enumerate(atom.terms):
            if term == variable:
                positions.add((atom.predicate, index))
    return positions


def _head_positions_of(tgd: TGD, variable: Variable) -> Set[Position]:
    """Positions at which ``variable`` occurs in the head of ``tgd``."""
    positions: Set[Position] = set()
    for atom in tgd.head:
        for index, term in enumerate(atom.terms):
            if term == variable:
                positions.add((atom.predicate, index))
    return positions


def compute_marking(tgds: Sequence[TGD]) -> MarkingResult:
    """Run the sticky marking procedure and return the full marking."""
    tgd_list = list(tgds)
    result = MarkingResult(tgds=tgd_list)
    marked: Dict[int, Set[Variable]] = {index: set() for index in range(len(tgd_list))}

    # Base step: body variables missing from some head atom.
    for index, tgd in enumerate(tgd_list):
        for variable in tgd.body_variables():
            if any(variable not in atom.variables() for atom in tgd.head):
                marked[index].add(variable)

    # Propagation to fixpoint.
    changed = True
    while changed:
        changed = False
        marked_positions: Set[Position] = set()
        for index, tgd in enumerate(tgd_list):
            for variable in marked[index]:
                marked_positions |= _body_positions_of(tgd, variable)
        for index, tgd in enumerate(tgd_list):
            for variable in tgd.body_variables():
                if variable in marked[index]:
                    continue
                head_positions = _head_positions_of(tgd, variable)
                if head_positions & marked_positions:
                    marked[index].add(variable)
                    changed = True

    result.marked_variables = marked
    final_positions: Set[Position] = set()
    for index, tgd in enumerate(tgd_list):
        for variable in marked[index]:
            final_positions |= _body_positions_of(tgd, variable)
    result.marked_positions = final_positions
    return result


def is_sticky(tgds: Sequence[TGD]) -> bool:
    """Return ``True`` iff the set of tgds is sticky."""
    return compute_marking(tgds).is_sticky()
