"""Equality-generating dependencies (egds).

An egd is an expression ``∀x̄ (φ(x̄) → x_i = x_j)`` (Section 2).  Egds
subsume functional dependencies and keys; those higher-level notions live in
:mod:`repro.dependencies.fd` and compile down to this class.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datamodel import (
    Atom,
    Instance,
    Predicate,
    Schema,
    Term,
    Variable,
    atoms_predicates,
    atoms_variables,
)
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import homomorphisms


class EGD:
    """An equality-generating dependency ``body → left = right``."""

    def __init__(
        self,
        body: Iterable[Atom],
        left: Variable,
        right: Variable,
        label: Optional[str] = None,
    ) -> None:
        self._body: Tuple[Atom, ...] = tuple(body)
        self._left = left
        self._right = right
        self.label = label or "egd"
        if not self._body:
            raise ValueError("an egd needs at least one body atom")
        body_variables = atoms_variables(self._body)
        for variable in (left, right):
            if variable not in body_variables:
                raise ValueError(
                    f"equated variable {variable} does not occur in the body"
                )
        for atom in self._body:
            if atom.nulls():
                raise ValueError(f"egds must not contain nulls: {atom}")

    # ------------------------------------------------------------------
    @property
    def body(self) -> Tuple[Atom, ...]:
        return self._body

    @property
    def left(self) -> Variable:
        return self._left

    @property
    def right(self) -> Variable:
        return self._right

    def body_variables(self) -> Set[Variable]:
        return atoms_variables(self._body)

    def predicates(self) -> Set[Predicate]:
        return atoms_predicates(self._body)

    def schema(self) -> Schema:
        return Schema(self.predicates())

    def max_arity(self) -> int:
        """Maximum arity of the predicates mentioned by the egd."""
        return max(p.arity for p in self.predicates())

    def is_body_connected(self) -> bool:
        """Return ``True`` iff the Gaifman graph of the body is connected."""
        return ConjunctiveQuery((), self._body, name="body").is_connected()

    def body_query(self) -> ConjunctiveQuery:
        """The Boolean CQ made of the egd's body."""
        return ConjunctiveQuery((), self._body, name=f"{self.label}_body")

    # ------------------------------------------------------------------
    # Logical reading
    # ------------------------------------------------------------------
    def violations(self, instance: Instance) -> Iterable[Dict[Term, Term]]:
        """Yield triggers ``h`` with ``h(left) != h(right)`` (egd violations)."""
        for mapping in homomorphisms(self._body, instance):
            if mapping[self._left] != mapping[self._right]:
                yield mapping

    def is_satisfied_by(self, instance: Instance) -> bool:
        """Return ``True`` iff ``instance`` satisfies the egd."""
        for _ in self.violations(instance):
            return False
        return True

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, EGD):
            return NotImplemented
        return (
            set(self._body) == set(other._body)
            and {self._left, self._right} == {other._left, other._right}
        )

    def __hash__(self) -> int:
        return hash((frozenset(self._body), frozenset((self._left, self._right))))

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self._body)
        return f"{body} → {self._left} = {self._right}"

    def __repr__(self) -> str:
        return f"EGD({self})"


def egd_set_predicates(egds: Iterable[EGD]) -> Set[Predicate]:
    """All predicates used across a set of egds."""
    result: Set[Predicate] = set()
    for egd in egds:
        result.update(egd.predicates())
    return result


def egd_set_schema(egds: Iterable[EGD]) -> Schema:
    """The schema induced by a set of egds."""
    return Schema(egd_set_predicates(egds))


def max_arity_of(egds: Iterable[EGD]) -> int:
    """Maximum predicate arity across a set of egds (0 when empty)."""
    predicates = egd_set_predicates(egds)
    return max((p.arity for p in predicates), default=0)
