"""repro — Semantic Acyclicity Under Constraints (Barceló, Gottlob, Pieris, PODS 2016).

A from-scratch implementation of the paper's machinery: conjunctive queries
and their hypergraphs, tgds/egds with the chase, containment and UCQ
rewriting, and on top of those the semantic-acyclicity decision procedures,
acyclic approximations and the evaluation algorithms for semantically acyclic
queries.

Quick start::

    from repro import parse_query, parse_tgd, decide_semantic_acyclicity

    q = parse_query("q(x, y) :- Interest(x, z), Class(y, z), Owns(x, y)")
    tgd = parse_tgd("Interest(x, z), Class(y, z) -> Owns(x, y)")
    decision = decide_semantic_acyclicity(q, [tgd])
    print(decision.semantically_acyclic, decision.witness)
"""

from .datamodel import (
    Atom,
    Constant,
    Database,
    Instance,
    Null,
    Predicate,
    Schema,
    Variable,
)
from .queries import ConjunctiveQuery, UnionOfConjunctiveQueries, core
from .dependencies import (
    EGD,
    TGD,
    DependencyClass,
    FunctionalDependency,
    classify,
    is_guarded_set,
    is_non_recursive_set,
    is_sticky_set,
)
from .chase import chase, chase_query, egd_chase, egd_chase_query
from .containment import (
    ContainmentOutcome,
    contained_under_egds,
    contained_under_tgds,
    cq_contained_in,
    cq_equivalent,
    equivalent_under_egds,
    equivalent_under_tgds,
)
from .rewriting import rewrite, ucq_rewritable_height_bound
from .evaluation import (
    BatchEvaluator,
    Relation,
    ScanCache,
    YannakakisEvaluator,
    evaluate_acyclic,
    evaluate_batch,
    evaluate_generic,
    evaluate_iter,
    explain,
    query_covers_database,
)
from .analysis import (
    Diagnostic,
    PlanVerificationError,
    Severity,
    check_dependencies,
    check_query,
    check_workload,
    verify_plan,
)
from .core import (
    SemAcConfig,
    SemAcDecision,
    acyclic_approximations,
    decide_semantic_acyclicity,
    decide_semantic_acyclicity_egds,
    decide_semantic_acyclicity_fds,
    decide_semantic_acyclicity_tgds,
    decide_ucq_semantic_acyclicity,
    find_acyclic_reformulation_tgds,
    is_semantically_acyclic,
)
from .parser import (
    parse_atom,
    parse_dependency,
    parse_egd,
    parse_program,
    parse_query,
    parse_tgd,
    parse_ucq,
)

__version__ = "1.0.0"

__all__ = [
    "Atom",
    "ConjunctiveQuery",
    "Constant",
    "ContainmentOutcome",
    "Database",
    "DependencyClass",
    "Diagnostic",
    "EGD",
    "FunctionalDependency",
    "Instance",
    "Null",
    "PlanVerificationError",
    "Predicate",
    "Relation",
    "Schema",
    "Severity",
    "SemAcConfig",
    "SemAcDecision",
    "TGD",
    "UnionOfConjunctiveQueries",
    "Variable",
    "BatchEvaluator",
    "ScanCache",
    "YannakakisEvaluator",
    "acyclic_approximations",
    "chase",
    "chase_query",
    "check_dependencies",
    "check_query",
    "check_workload",
    "classify",
    "contained_under_egds",
    "contained_under_tgds",
    "core",
    "cq_contained_in",
    "cq_equivalent",
    "decide_semantic_acyclicity",
    "decide_semantic_acyclicity_egds",
    "decide_semantic_acyclicity_fds",
    "decide_semantic_acyclicity_tgds",
    "decide_ucq_semantic_acyclicity",
    "egd_chase",
    "egd_chase_query",
    "equivalent_under_egds",
    "equivalent_under_tgds",
    "evaluate_acyclic",
    "evaluate_batch",
    "evaluate_generic",
    "evaluate_iter",
    "explain",
    "find_acyclic_reformulation_tgds",
    "is_guarded_set",
    "is_non_recursive_set",
    "is_semantically_acyclic",
    "is_sticky_set",
    "parse_atom",
    "parse_dependency",
    "parse_egd",
    "parse_program",
    "parse_query",
    "parse_tgd",
    "parse_ucq",
    "query_covers_database",
    "rewrite",
    "ucq_rewritable_height_bound",
    "verify_plan",
    "__version__",
]
