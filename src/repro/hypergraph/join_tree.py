"""Join trees of acyclic atom collections.

A join tree of an instance ``I`` (Section 2) is a tree whose nodes are
labelled with the atoms of ``I`` such that every atom labels some node and,
for every connector term (null / variable), the nodes containing that term
form a connected subtree.  This module builds join trees out of the GYO
reduction, verifies the join-tree property explicitly (used by the property
based tests) and offers the rooted-tree navigation that Lemma 9 and
Yannakakis' algorithm need.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Instance, Term
from .hypergraph import (
    ConnectorPolicy,
    Hypergraph,
    hypergraph_of_instance,
    hypergraph_of_query_atoms,
    instance_connectors,
    query_connectors,
)
from .gyo import GYOResult, gyo_reduction


class JoinTreeError(ValueError):
    """Raised when a join tree is requested for a cyclic atom collection."""


@dataclass
class JoinTreeNode:
    """A node of a join tree: an identifier, its atom and its connector vertices."""

    identifier: int
    atom: Atom
    vertices: FrozenSet[Term]


class JoinTree:
    """A rooted join tree over a collection of atoms.

    The tree is stored with parent pointers plus child adjacency; node ``0``
    is not necessarily the root — use :attr:`root`.
    """

    def __init__(
        self,
        nodes: Dict[int, JoinTreeNode],
        parent: Dict[int, Optional[int]],
    ) -> None:
        self._nodes = dict(nodes)
        self._parent = dict(parent)
        self._children: Dict[int, List[int]] = {identifier: [] for identifier in nodes}
        roots = [identifier for identifier, p in parent.items() if p is None]
        if len(roots) != 1:
            raise ValueError(f"a join tree needs exactly one root, got {len(roots)}")
        self._root = roots[0]
        for identifier, parent_id in parent.items():
            if parent_id is not None:
                self._children[parent_id].append(identifier)

    # ------------------------------------------------------------------
    @property
    def root(self) -> int:
        return self._root

    def node(self, identifier: int) -> JoinTreeNode:
        return self._nodes[identifier]

    def nodes(self) -> List[JoinTreeNode]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node_ids(self) -> List[int]:
        return sorted(self._nodes)

    def atoms(self) -> List[Atom]:
        return [node.atom for node in self.nodes()]

    def parent(self, identifier: int) -> Optional[int]:
        return self._parent[identifier]

    def children(self, identifier: int) -> List[int]:
        return list(self._children[identifier])

    def shared_with_parent(self, identifier: int) -> FrozenSet[Term]:
        """The connector terms a node shares with its parent (∅ at the root).

        These are exactly the probe-key variables of the node in the
        operator IR of :mod:`repro.evaluation.operators`: the parent's
        rows fix their values, and the node's relation is partitioned by
        them for both the semi-join reduction and the streaming cursors.
        """
        parent = self._parent[identifier]
        if parent is None:
            return frozenset()
        return self._nodes[identifier].vertices & self._nodes[parent].vertices

    def __len__(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def ancestors(self, identifier: int) -> List[int]:
        """Return the ancestors of a node, closest first (excluding itself)."""
        result: List[int] = []
        current = self._parent[identifier]
        while current is not None:
            result.append(current)
            current = self._parent[current]
        return result

    def descendants(self, identifier: int) -> List[int]:
        """Return every node in the subtree rooted at ``identifier`` (excluding it)."""
        result: List[int] = []
        stack = list(self._children[identifier])
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(self._children[node])
        return result

    def leaves(self) -> List[int]:
        return [identifier for identifier in self._nodes if not self._children[identifier]]

    def bottom_up_order(self) -> List[int]:
        """Return node ids so that every node appears before its parent."""
        order: List[int] = []
        visited: Set[int] = set()

        def visit(identifier: int) -> None:
            for child in self._children[identifier]:
                visit(child)
            order.append(identifier)
            visited.add(identifier)

        visit(self._root)
        return order

    def top_down_order(self) -> List[int]:
        """Return node ids so that every node appears after its parent."""
        return list(reversed(self.bottom_up_order()))

    def edges(self) -> List[Tuple[int, int]]:
        """Return the (parent, child) edges of the tree."""
        return [
            (parent_id, identifier)
            for identifier, parent_id in self._parent.items()
            if parent_id is not None
        ]

    def path(self, source: int, target: int) -> List[int]:
        """Return the unique path between two nodes (inclusive)."""
        source_ancestry = [source] + self.ancestors(source)
        target_ancestry = [target] + self.ancestors(target)
        ancestor_positions = {node: depth for depth, node in enumerate(target_ancestry)}
        for depth, node in enumerate(source_ancestry):
            if node in ancestor_positions:
                upward = source_ancestry[: depth + 1]
                downward = target_ancestry[: ancestor_positions[node]]
                return upward + list(reversed(downward))
        raise ValueError("nodes are not connected")  # pragma: no cover

    def __str__(self) -> str:
        lines: List[str] = []

        def render(identifier: int, depth: int) -> None:
            lines.append("  " * depth + str(self._nodes[identifier].atom))
            for child in self._children[identifier]:
                render(child, depth + 1)

        render(self._root, 0)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Construction
# ----------------------------------------------------------------------
def build_join_tree(
    atoms: Iterable[Atom],
    connector_policy: ConnectorPolicy = query_connectors,
) -> JoinTree:
    """Build a join tree for ``atoms``.

    Raises:
        JoinTreeError: if the atoms are not acyclic under the given policy.
    """
    atom_list = list(atoms)
    if not atom_list:
        raise JoinTreeError("cannot build a join tree for an empty set of atoms")
    hypergraph = Hypergraph(atom_list, connector_policy)
    result = gyo_reduction(hypergraph)
    if not result.acyclic:
        raise JoinTreeError("the atom collection is cyclic")

    nodes: Dict[int, JoinTreeNode] = {
        edge.index: JoinTreeNode(edge.index, edge.atom, edge.vertices)
        for edge in hypergraph.edges
    }
    parent: Dict[int, Optional[int]] = {index: None for index in nodes}
    for child, witness in result.parents.items():
        parent[child] = witness

    # If several components survive (disconnected acyclic hypergraph), chain
    # their roots: the roots share no connector vertices, so attaching one
    # root under another preserves the join-tree property.
    roots = [index for index, parent_id in parent.items() if parent_id is None]
    roots.sort()
    for previous, current in zip(roots, roots[1:]):
        parent[current] = previous

    return JoinTree(nodes, parent)


def join_tree_of_query_atoms(atoms: Iterable[Atom]) -> JoinTree:
    """Join tree of a query body (variables as connectors)."""
    return build_join_tree(atoms, query_connectors)


def join_tree_of_instance(instance: Instance) -> JoinTree:
    """Join tree of an instance (nulls / frozen constants as connectors)."""
    return build_join_tree(instance.sorted_atoms(), instance_connectors)


# ----------------------------------------------------------------------
# Verification (used heavily by the test suite)
# ----------------------------------------------------------------------
def is_valid_join_tree(
    tree: JoinTree,
    atoms: Iterable[Atom],
    connector_policy: ConnectorPolicy = query_connectors,
) -> bool:
    """Check the join-tree property of ``tree`` against ``atoms``.

    The check mirrors the definition in Section 2: every atom labels some
    node, and for every connector term the nodes whose atom contains it form
    a connected subtree.
    """
    atom_list = list(atoms)
    labelled = {node.atom for node in tree.nodes()}
    if not set(atom_list) <= labelled:
        return False

    # Connectivity of each connector term.
    term_nodes: Dict[Term, Set[int]] = {}
    for node in tree.nodes():
        for term in node.atom.terms:
            if connector_policy(term):
                term_nodes.setdefault(term, set()).add(node.identifier)

    adjacency: Dict[int, Set[int]] = {identifier: set() for identifier in tree.node_ids()}
    for parent_id, child_id in tree.edges():
        adjacency[parent_id].add(child_id)
        adjacency[child_id].add(parent_id)

    for term, wanted in term_nodes.items():
        start = next(iter(wanted))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbour in adjacency[current]:
                if neighbour in wanted and neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        if seen != wanted:
            return False
    return True
