"""GYO reduction: deciding (alpha-)acyclicity and extracting join forests.

The Graham / Yu–Özsoyoğlu reduction repeatedly applies two operations to a
hypergraph until neither applies:

1. delete a vertex that occurs in exactly one hyperedge (an *ear vertex*);
2. delete a hyperedge whose (remaining) vertex set is contained in another
   hyperedge, recording that other hyperedge as the *witness*.

The hypergraph is acyclic iff the reduction ends with at most one non-empty
hyperedge per connected component (equivalently: every hyperedge is
eventually deleted or reduced to the empty vertex set).  The recorded
witnesses induce a join forest, which :mod:`repro.hypergraph.join_tree`
assembles into an explicit join tree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from ..datamodel import Atom, Instance, Term
from .hypergraph import (
    ConnectorPolicy,
    HyperEdge,
    Hypergraph,
    hypergraph_of_instance,
    hypergraph_of_query_atoms,
    instance_connectors,
    query_connectors,
)


@dataclass
class GYOResult:
    """Outcome of running the GYO reduction on a hypergraph."""

    #: Whether the hypergraph is acyclic.
    acyclic: bool
    #: For each deleted hyperedge index, the index of the witness edge it was
    #: absorbed into (the parent in the join forest).  Surviving edges (the
    #: forest roots) are absent from this mapping.
    parents: Dict[int, int] = field(default_factory=dict)
    #: The indexes of the edges that survived the reduction (forest roots).
    roots: List[int] = field(default_factory=list)
    #: The order in which edges were deleted (children before parents).
    elimination_order: List[int] = field(default_factory=list)


def gyo_reduction(hypergraph: Hypergraph) -> GYOResult:
    """Run the GYO reduction and report acyclicity plus the join forest."""
    edges: Dict[int, Set[Term]] = {
        edge.index: set(edge.vertices) for edge in hypergraph.edges
    }
    original: Dict[int, FrozenSet[Term]] = {
        edge.index: edge.vertices for edge in hypergraph.edges
    }
    parents: Dict[int, int] = {}
    elimination: List[int] = []

    changed = True
    while changed and len(edges) > 1:
        changed = False

        # Step 1: drop ear vertices (vertices occurring in a single edge).
        occurrences: Dict[Term, List[int]] = {}
        for index, vertices in edges.items():
            for vertex in vertices:
                occurrences.setdefault(vertex, []).append(index)
        for vertex, where in occurrences.items():
            if len(where) == 1:
                edges[where[0]].discard(vertex)
                changed = True

        # Step 2: absorb an edge contained in another edge.
        indexes = sorted(edges)
        absorbed: Optional[Tuple[int, int]] = None
        for child in indexes:
            for parent in indexes:
                if child == parent:
                    continue
                if edges[child] <= edges[parent]:
                    absorbed = (child, parent)
                    break
            if absorbed:
                break
        if absorbed:
            child, parent = absorbed
            parents[child] = parent
            elimination.append(child)
            del edges[child]
            changed = True

    # The hypergraph is acyclic iff every surviving edge has an empty vertex
    # set or there is a single survivor whose vertices are all private now.
    roots = sorted(edges)
    if len(edges) <= 1:
        acyclic = True
    else:
        # More than one survivor: acyclic only if all survivors are pairwise
        # vertex-disjoint *and* each is itself fully reduced (no shared
        # vertices remain at all, i.e. every remaining vertex occurs once).
        remaining_occurrences: Dict[Term, int] = {}
        for vertices in edges.values():
            for vertex in vertices:
                remaining_occurrences[vertex] = remaining_occurrences.get(vertex, 0) + 1
        acyclic = all(count == 1 for count in remaining_occurrences.values())
        if acyclic:
            # Disconnected acyclic components; nothing more to reduce.
            pass

    return GYOResult(
        acyclic=acyclic,
        parents=parents,
        roots=roots,
        elimination_order=elimination,
    )


def is_acyclic_hypergraph(hypergraph: Hypergraph) -> bool:
    """Return ``True`` iff ``hypergraph`` passes the GYO reduction."""
    return gyo_reduction(hypergraph).acyclic


def is_acyclic_atoms(atoms: Iterable[Atom]) -> bool:
    """Acyclicity of a query body (variables are the connectors)."""
    return is_acyclic_hypergraph(hypergraph_of_query_atoms(list(atoms)))


def is_acyclic_instance(instance: Instance) -> bool:
    """Acyclicity of an instance (nulls / frozen constants are the connectors)."""
    return is_acyclic_hypergraph(hypergraph_of_instance(instance))
