"""Hypergraphs of atom collections.

The hypergraph of a set of atoms has one hyperedge per atom; the vertices of
a hyperedge are the atom's *connector* terms.  Which terms count as
connectors depends on the context (Section 2):

* for a **query** body, the connectors are the variables — constants are
  rigid and need not induce connected subtrees of a join tree;
* for an **instance**, the connectors are the labelled nulls — and, when the
  instance is the chase of a query, also the frozen constants ``c(x)`` that
  stand for the query's variables (they were variables before freezing and
  are "treated as nulls", as the paper puts it).

The module therefore exposes connector policies alongside a small immutable
``Hypergraph`` value object used by the GYO reduction and the join-tree
builder.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Hashable, Iterable, Iterator, List, Sequence, Set, Tuple

from ..datamodel import Atom, Constant, Instance, Null, Term, Variable, is_frozen_constant


#: A connector policy decides which terms of an atom act as hypergraph vertices.
ConnectorPolicy = Callable[[Term], bool]


def query_connectors(term: Term) -> bool:
    """Connector policy for query bodies: variables (and stray nulls)."""
    return isinstance(term, (Variable, Null))


def instance_connectors(term: Term) -> bool:
    """Connector policy for instances: nulls and frozen query variables."""
    if isinstance(term, Null):
        return True
    return isinstance(term, Constant) and is_frozen_constant(term)


def all_term_connectors(term: Term) -> bool:
    """Connector policy that treats every term as a vertex."""
    return True


@dataclass(frozen=True)
class HyperEdge:
    """A hyperedge: the originating atom plus its connector-vertex set."""

    atom: Atom
    vertices: FrozenSet[Term]
    index: int

    def __str__(self) -> str:
        return f"{self.atom}@{self.index}"


class Hypergraph:
    """The hypergraph of a finite collection of atoms.

    Each atom contributes exactly one hyperedge (atoms may repeat across
    indexes if the input contains duplicates — callers typically pass sets).
    """

    def __init__(
        self,
        atoms: Iterable[Atom],
        connector_policy: ConnectorPolicy = query_connectors,
    ) -> None:
        self._edges: List[HyperEdge] = []
        self._policy = connector_policy
        for index, atom in enumerate(atoms):
            vertices = frozenset(t for t in atom.terms if connector_policy(t))
            self._edges.append(HyperEdge(atom, vertices, index))

    # ------------------------------------------------------------------
    @property
    def edges(self) -> Tuple[HyperEdge, ...]:
        return tuple(self._edges)

    @property
    def connector_policy(self) -> ConnectorPolicy:
        return self._policy

    def atoms(self) -> List[Atom]:
        return [edge.atom for edge in self._edges]

    def vertices(self) -> Set[Term]:
        result: Set[Term] = set()
        for edge in self._edges:
            result.update(edge.vertices)
        return result

    def __len__(self) -> int:
        return len(self._edges)

    def __iter__(self) -> Iterator[HyperEdge]:
        return iter(self._edges)

    def vertex_occurrences(self) -> Dict[Term, Set[int]]:
        """Map each vertex to the indexes of the hyperedges containing it."""
        occurrences: Dict[Term, Set[int]] = {}
        for edge in self._edges:
            for vertex in edge.vertices:
                occurrences.setdefault(vertex, set()).add(edge.index)
        return occurrences

    def __str__(self) -> str:
        return "Hypergraph[" + "; ".join(str(e) for e in self._edges) + "]"


def hypergraph_of_query_atoms(atoms: Iterable[Atom]) -> Hypergraph:
    """Hypergraph of a query body (variables as vertices)."""
    return Hypergraph(atoms, query_connectors)


def hypergraph_of_instance(instance: Instance) -> Hypergraph:
    """Hypergraph of an instance (nulls and frozen constants as vertices)."""
    return Hypergraph(instance.sorted_atoms(), instance_connectors)
