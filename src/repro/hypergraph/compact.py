"""The compact acyclic query construction of Lemma 9 / Figure 3.

Given a CQ ``q(x̄)``, an acyclic instance ``I`` and a tuple ``c̄`` of
constants such that ``q(c̄)`` holds in ``I``, Lemma 9 produces an acyclic CQ
``q'(x̄)`` with at most ``2·|q|`` atoms such that ``q' ⊆ q`` and ``q'(c̄)``
holds in ``I``.  This is the technical core of every small-query property in
the paper (Propositions 8 and 15) and therefore of every decision procedure
for semantic acyclicity.

The construction follows the paper:

1. pick a homomorphism ``h`` mapping ``q`` into ``I`` with ``h(x̄) = c̄``;
2. build a join tree ``T`` of ``I`` and take the subtree ``T_q`` induced by
   the nodes labelled with image atoms together with their ancestors;
3. keep only the *interesting* nodes of ``T_q`` — image nodes, the root and
   every node with at least two children — and connect them by contracting
   the in-between paths;
4. read the kept atoms back as a conjunctive query, renaming nulls and frozen
   constants to fresh variables (genuine constants survive unchanged).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Atom,
    Constant,
    Instance,
    Term,
    Variable,
    is_frozen_constant,
)
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import find_homomorphism
from .hypergraph import instance_connectors
from .join_tree import JoinTree, JoinTreeError, build_join_tree


def _term_renaming(atoms: Iterable[Atom]) -> Dict[Term, Term]:
    """Rename nulls / frozen constants to fresh variables; keep genuine constants."""
    renaming: Dict[Term, Term] = {}
    counter = 0
    for atom in atoms:
        for term in atom.terms:
            if term in renaming:
                continue
            if isinstance(term, Constant) and not is_frozen_constant(term):
                renaming[term] = term
            else:
                renaming[term] = Variable(f"W{counter}")
                counter += 1
    return renaming


def compact_acyclic_subinstance(
    query: ConjunctiveQuery,
    instance: Instance,
    homomorphism: Mapping[Term, Term],
    join_tree: Optional[JoinTree] = None,
) -> List[Atom]:
    """Return the atoms of the compact acyclic sub-instance ``J ⊆ I`` (Lemma 27).

    ``J`` contains the image of ``query`` under ``homomorphism``, has at most
    ``2·|query|`` atoms and is itself acyclic.
    """
    if join_tree is None:
        join_tree = build_join_tree(instance.sorted_atoms(), instance_connectors)

    image_atoms = {atom.apply(dict(homomorphism)) for atom in query.body}
    image_nodes = {
        node.identifier for node in join_tree.nodes() if node.atom in image_atoms
    }
    if not image_nodes and query.body:
        raise ValueError("the homomorphism image does not appear in the join tree")

    # T_q: image nodes plus their ancestors.
    subtree: Set[int] = set(image_nodes)
    for identifier in list(image_nodes):
        subtree.update(join_tree.ancestors(identifier))

    # Children counts within T_q.
    children_in_subtree: Dict[int, int] = {identifier: 0 for identifier in subtree}
    for identifier in subtree:
        parent = join_tree.parent(identifier)
        if parent is not None and parent in subtree:
            children_in_subtree[parent] += 1

    # Kept nodes: image nodes, the root(s) of T_q and branching nodes.
    kept: Set[int] = set(image_nodes)
    for identifier in subtree:
        parent = join_tree.parent(identifier)
        if parent is None or parent not in subtree:
            kept.add(identifier)  # root of T_q
        if children_in_subtree[identifier] >= 2:
            kept.add(identifier)

    return [join_tree.node(identifier).atom for identifier in sorted(kept)]


def compact_acyclic_query(
    query: ConjunctiveQuery,
    instance: Instance,
    answer: Optional[Sequence[Constant]] = None,
    join_tree: Optional[JoinTree] = None,
    name: str = "compact",
) -> Optional[ConjunctiveQuery]:
    """Apply Lemma 9: return a small acyclic ``q' ⊆ q`` with ``q'(c̄)`` true in ``I``.

    Args:
        query: the CQ ``q(x̄)``.
        instance: an acyclic instance ``I`` (acyclicity is assumed, not
            re-checked here; pass a join tree if one is already available).
        answer: the tuple ``c̄`` the query must produce; defaults to the
            frozen head of ``query`` when ``None`` and the query is Boolean
            the empty tuple is used.
        join_tree: optionally, a pre-computed join tree of ``instance``.

    Returns:
        The compact acyclic query, or ``None`` when ``q(c̄)`` does not hold in
        ``I`` (no homomorphism exists).
    """
    if answer is None:
        answer = ()
    if len(answer) != len(query.head):
        raise ValueError(
            f"answer tuple has arity {len(answer)}, query has {len(query.head)} "
            f"free variables"
        )

    seed = {variable: value for variable, value in zip(query.head, answer)}
    homomorphism = find_homomorphism(query.body, instance, seed=seed)
    if homomorphism is None:
        return None

    if join_tree is None:
        try:
            join_tree = build_join_tree(instance.sorted_atoms(), instance_connectors)
        except JoinTreeError as error:
            raise ValueError("instance is not acyclic") from error

    kept_atoms = compact_acyclic_subinstance(query, instance, homomorphism, join_tree)
    renaming = _term_renaming(kept_atoms)
    body = [atom.map_terms(lambda t: renaming[t]) for atom in kept_atoms]

    head: List[Variable] = []
    for value in answer:
        image = renaming.get(value)
        if image is None or not isinstance(image, Variable):
            # The answer constant does not occur in the kept atoms as a
            # renameable term (e.g. a genuine constant); such queries fall
            # outside Lemma 9's hypotheses (distinct constants occurring in I).
            raise ValueError(
                f"answer term {value} does not occur as a renameable term of "
                f"the compact sub-instance"
            )
        head.append(image)

    return ConjunctiveQuery(head, body, name=name)
