"""Tree and (generalized) hypertree decompositions.

The paper repeatedly appeals to structural width measures beyond plain
acyclicity: Example 2 shows that chasing with non-recursive / sticky tgds can
blow the (hyper)tree width of a query up to ``n`` (an ``n``-clique), Example 5
does the same with keys (an ``n × n`` grid), and footnote 4 notes that
guarded tgds over bounded-arity schemas *preserve* bounded hypertree width.
This module provides the machinery those observations need:

* :class:`TreeDecomposition` — a tree of bags over the Gaifman graph, with a
  full validity check (vertex coverage, edge coverage, running intersection);
* elimination-order construction (min-fill and min-degree heuristics, plus an
  exact branch-and-bound search for small graphs);
* :class:`HypertreeDecomposition` — bags guarded by hyperedge covers, giving
  the generalized hypertree width; acyclic hypergraphs get width 1 straight
  from their join tree.

Everything works on the ``AdjacencyGraph`` dictionaries produced by
:mod:`repro.queries.gaifman` and the :class:`~repro.hypergraph.Hypergraph`
objects produced from atoms, so queries, instances and chase results can all
be measured uniformly.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Hashable, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Instance
from ..queries.gaifman import gaifman_graph_of_atoms, gaifman_graph_of_instance
from .hypergraph import ConnectorPolicy, Hypergraph, hypergraph_of_query_atoms, query_connectors
from .gyo import gyo_reduction
from .join_tree import JoinTree, JoinTreeError, build_join_tree


#: Adjacency representation shared with :mod:`repro.queries.gaifman`.
AdjacencyGraph = Dict[Hashable, Set[Hashable]]


# ----------------------------------------------------------------------
# Tree decompositions
# ----------------------------------------------------------------------
class TreeDecomposition:
    """A tree decomposition: a tree of *bags* of graph vertices.

    The decomposition is stored as a mapping from node identifiers to bags
    (frozen sets of vertices) plus an undirected edge list over those
    identifiers.  The three defining conditions (every vertex in some bag,
    every graph edge inside some bag, and the bags containing any fixed
    vertex forming a connected subtree) are checked by :meth:`is_valid_for`.
    """

    def __init__(
        self,
        bags: Mapping[int, Iterable[Hashable]],
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self._bags: Dict[int, FrozenSet[Hashable]] = {
            node: frozenset(bag) for node, bag in bags.items()
        }
        if not self._bags:
            raise ValueError("a tree decomposition needs at least one bag")
        self._adjacency: Dict[int, Set[int]] = {node: set() for node in self._bags}
        for left, right in edges:
            if left not in self._bags or right not in self._bags:
                raise ValueError(f"edge ({left}, {right}) mentions an unknown bag")
            if left == right:
                raise ValueError("self-loops are not allowed in a tree decomposition")
            self._adjacency[left].add(right)
            self._adjacency[right].add(left)
        if not self._is_tree():
            raise ValueError("the bag graph must be a tree (connected and acyclic)")

    # ------------------------------------------------------------------
    @property
    def bags(self) -> Dict[int, FrozenSet[Hashable]]:
        """The bags, keyed by node identifier."""
        return dict(self._bags)

    def bag(self, node: int) -> FrozenSet[Hashable]:
        """Return the bag of a node."""
        return self._bags[node]

    def nodes(self) -> List[int]:
        """Return the node identifiers in sorted order."""
        return sorted(self._bags)

    def edges(self) -> List[Tuple[int, int]]:
        """Return each undirected edge once, as an ordered pair."""
        result: List[Tuple[int, int]] = []
        for node in sorted(self._adjacency):
            for neighbour in sorted(self._adjacency[node]):
                if node < neighbour:
                    result.append((node, neighbour))
        return result

    def neighbours(self, node: int) -> Set[int]:
        """Return the bags adjacent to ``node``."""
        return set(self._adjacency[node])

    def __len__(self) -> int:
        return len(self._bags)

    @property
    def width(self) -> int:
        """The width: the size of the largest bag minus one."""
        return max(len(bag) for bag in self._bags.values()) - 1

    def vertices(self) -> Set[Hashable]:
        """The union of all bags."""
        result: Set[Hashable] = set()
        for bag in self._bags.values():
            result.update(bag)
        return result

    # ------------------------------------------------------------------
    def _is_tree(self) -> bool:
        if len(self._bags) == 1:
            return not any(self._adjacency.values())
        edge_count = sum(len(n) for n in self._adjacency.values()) // 2
        if edge_count != len(self._bags) - 1:
            return False
        start = next(iter(self._bags))
        seen = {start}
        stack = [start]
        while stack:
            current = stack.pop()
            for neighbour in self._adjacency[current]:
                if neighbour not in seen:
                    seen.add(neighbour)
                    stack.append(neighbour)
        return len(seen) == len(self._bags)

    def is_valid_for(self, graph: AdjacencyGraph) -> bool:
        """Check the three tree-decomposition conditions against ``graph``."""
        # (1) Every vertex of the graph occurs in some bag.
        if not set(graph) <= self.vertices():
            return False
        # (2) Every edge of the graph is covered by some bag.
        for vertex, neighbours in graph.items():
            for neighbour in neighbours:
                if not any(
                    vertex in bag and neighbour in bag for bag in self._bags.values()
                ):
                    return False
        # (3) Running intersection: the bags containing a vertex are connected.
        for vertex in self.vertices():
            holding = {node for node, bag in self._bags.items() if vertex in bag}
            start = next(iter(holding))
            seen = {start}
            stack = [start]
            while stack:
                current = stack.pop()
                for neighbour in self._adjacency[current]:
                    if neighbour in holding and neighbour not in seen:
                        seen.add(neighbour)
                        stack.append(neighbour)
            if seen != holding:
                return False
        return True

    def __str__(self) -> str:
        parts = []
        for node in self.nodes():
            inner = ", ".join(sorted(str(v) for v in self._bags[node]))
            parts.append(f"{node}:{{{inner}}}")
        return "TreeDecomposition[" + "; ".join(parts) + "]"

    def __repr__(self) -> str:
        return f"TreeDecomposition({len(self._bags)} bags, width {self.width})"


# ----------------------------------------------------------------------
# Elimination orders
# ----------------------------------------------------------------------
def min_degree_order(graph: AdjacencyGraph) -> List[Hashable]:
    """Elimination order choosing, at each step, a vertex of minimum degree."""
    working = {node: set(neighbours) for node, neighbours in graph.items()}
    order: List[Hashable] = []
    while working:
        node = min(sorted(working, key=str), key=lambda n: len(working[n]))
        order.append(node)
        _eliminate(working, node)
    return order


def min_fill_order(graph: AdjacencyGraph) -> List[Hashable]:
    """Elimination order choosing, at each step, a vertex of minimum fill-in."""
    working = {node: set(neighbours) for node, neighbours in graph.items()}
    order: List[Hashable] = []
    while working:
        def fill_in(node: Hashable) -> int:
            neighbours = list(working[node])
            missing = 0
            for i, left in enumerate(neighbours):
                for right in neighbours[i + 1:]:
                    if right not in working[left]:
                        missing += 1
            return missing

        node = min(sorted(working, key=str), key=fill_in)
        order.append(node)
        _eliminate(working, node)
    return order


def _eliminate(working: Dict[Hashable, Set[Hashable]], node: Hashable) -> None:
    """Eliminate ``node`` in place: connect its neighbourhood, then remove it."""
    neighbours = list(working[node])
    for i, left in enumerate(neighbours):
        for right in neighbours[i + 1:]:
            working[left].add(right)
            working[right].add(left)
    for neighbour in neighbours:
        working[neighbour].discard(node)
    del working[node]


def decomposition_from_elimination_order(
    graph: AdjacencyGraph,
    order: Sequence[Hashable],
) -> TreeDecomposition:
    """Build a tree decomposition from an elimination order.

    Each eliminated vertex contributes a bag (the vertex plus its remaining
    neighbourhood at elimination time); the bag is attached to the bag of the
    first later-eliminated vertex it contains, which yields a valid
    decomposition for any order (the classical construction).
    """
    if set(order) != set(graph):
        raise ValueError("the elimination order must list every graph vertex exactly once")
    working = {node: set(neighbours) for node, neighbours in graph.items()}
    position = {vertex: index for index, vertex in enumerate(order)}
    bags: Dict[int, Set[Hashable]] = {}
    for index, vertex in enumerate(order):
        bags[index] = {vertex} | set(working[vertex])
        _eliminate(working, vertex)

    edges: List[Tuple[int, int]] = []
    for index, vertex in enumerate(order):
        later = [v for v in bags[index] if v != vertex]
        if not later:
            # Attach isolated bags to the last bag to keep the result a tree.
            if index + 1 < len(order):
                edges.append((index, index + 1))
            continue
        parent_vertex = min(later, key=lambda v: position[v])
        edges.append((index, position[parent_vertex]))

    if not bags:
        bags = {0: set()}
    return TreeDecomposition(bags, edges)


def tree_decomposition_min_fill(graph: AdjacencyGraph) -> TreeDecomposition:
    """Tree decomposition via the min-fill heuristic (good general-purpose bound)."""
    if not graph:
        return TreeDecomposition({0: frozenset()})
    return decomposition_from_elimination_order(graph, min_fill_order(graph))


def tree_decomposition_min_degree(graph: AdjacencyGraph) -> TreeDecomposition:
    """Tree decomposition via the min-degree heuristic (cheaper, often wider)."""
    if not graph:
        return TreeDecomposition({0: frozenset()})
    return decomposition_from_elimination_order(graph, min_degree_order(graph))


def treewidth_upper_bound(graph: AdjacencyGraph) -> int:
    """Best of the min-fill and min-degree bounds on the treewidth."""
    if not graph:
        return 0
    return min(
        tree_decomposition_min_fill(graph).width,
        tree_decomposition_min_degree(graph).width,
    )


# ----------------------------------------------------------------------
# Exact treewidth (small graphs)
# ----------------------------------------------------------------------
def treewidth_exact(graph: AdjacencyGraph, max_vertices: int = 14) -> int:
    """Exact treewidth via branch-and-bound over elimination orders.

    The search explores elimination orders with memoisation on the set of
    already-eliminated vertices; it is exponential and therefore guarded by
    ``max_vertices``.

    Raises:
        ValueError: if the graph has more than ``max_vertices`` vertices.
    """
    vertices = sorted(graph, key=str)
    if len(vertices) > max_vertices:
        raise ValueError(
            f"exact treewidth limited to {max_vertices} vertices, got {len(vertices)}"
        )
    if not vertices:
        return 0

    upper = treewidth_upper_bound(graph)
    if upper <= 1:
        # Heuristics are exact on trees/forests (and the empty graph).
        return upper

    index_of = {vertex: i for i, vertex in enumerate(vertices)}
    neighbour_masks = [0] * len(vertices)
    for vertex, neighbours in graph.items():
        for neighbour in neighbours:
            neighbour_masks[index_of[vertex]] |= 1 << index_of[neighbour]

    best = upper
    memo: Dict[Tuple[int, Tuple[int, ...]], int] = {}

    def search(eliminated: int, masks: Tuple[int, ...], width_so_far: int) -> int:
        nonlocal best
        if width_so_far >= best:
            return best
        remaining = [i for i in range(len(vertices)) if not eliminated & (1 << i)]
        if not remaining:
            best = min(best, width_so_far)
            return width_so_far
        key = (eliminated, masks)
        cached = memo.get(key)
        if cached is not None and cached <= width_so_far:
            return best
        memo[key] = width_so_far

        for i in remaining:
            degree = bin(masks[i] & ~eliminated).count("1")
            new_width = max(width_so_far, degree)
            if new_width >= best:
                continue
            new_masks = list(masks)
            live_neighbours = [
                j for j in range(len(vertices))
                if masks[i] & (1 << j) and not eliminated & (1 << j)
            ]
            for a in live_neighbours:
                for b in live_neighbours:
                    if a != b:
                        new_masks[a] |= 1 << b
            search(eliminated | (1 << i), tuple(new_masks), new_width)
        return best

    search(0, tuple(neighbour_masks), 0)
    return best


# ----------------------------------------------------------------------
# Hypertree decompositions
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HypertreeNode:
    """One node of a hypertree decomposition: a bag plus its guard cover."""

    identifier: int
    bag: FrozenSet[Hashable]
    guards: Tuple[Atom, ...]


class HypertreeDecomposition:
    """A generalized hypertree decomposition.

    Each node carries a bag of vertices and a *guard* set of hyperedges
    (atoms) whose vertices cover the bag; the width is the maximum number of
    guards over all nodes.  Acyclic hypergraphs admit width 1 (one atom per
    bag — exactly a join tree).
    """

    def __init__(
        self,
        nodes: Mapping[int, HypertreeNode],
        edges: Iterable[Tuple[int, int]] = (),
    ) -> None:
        self._nodes: Dict[int, HypertreeNode] = dict(nodes)
        if not self._nodes:
            raise ValueError("a hypertree decomposition needs at least one node")
        self._tree = TreeDecomposition(
            {identifier: node.bag for identifier, node in self._nodes.items()},
            edges,
        )

    # ------------------------------------------------------------------
    @property
    def width(self) -> int:
        """The generalized hypertree width: the largest guard set."""
        return max(len(node.guards) for node in self._nodes.values())

    def nodes(self) -> List[HypertreeNode]:
        return [self._nodes[i] for i in sorted(self._nodes)]

    def node(self, identifier: int) -> HypertreeNode:
        return self._nodes[identifier]

    def edges(self) -> List[Tuple[int, int]]:
        return self._tree.edges()

    def tree_decomposition(self) -> TreeDecomposition:
        """The underlying tree decomposition (ignoring guards)."""
        return self._tree

    def __len__(self) -> int:
        return len(self._nodes)

    def is_valid_for(
        self,
        atoms: Iterable[Atom],
        connector_policy: ConnectorPolicy = query_connectors,
    ) -> bool:
        """Check bag validity against the Gaifman graph and guard coverage."""
        atom_list = list(atoms)
        hypergraph = Hypergraph(atom_list, connector_policy)
        graph: AdjacencyGraph = {}
        for edge in hypergraph.edges:
            members = sorted(edge.vertices, key=str)
            for vertex in members:
                graph.setdefault(vertex, set())
            for i, left in enumerate(members):
                for right in members[i + 1:]:
                    graph[left].add(right)
                    graph[right].add(left)
        if not self._tree.is_valid_for(graph):
            return False
        # Guard coverage: each bag must be covered by its guards' vertices,
        # and each guard must be one of the hypergraph's atoms.
        available = set(atom_list)
        for node in self._nodes.values():
            if any(guard not in available for guard in node.guards):
                return False
            covered: Set[Hashable] = set()
            for guard in node.guards:
                covered.update(t for t in guard.terms if connector_policy(t))
            if not set(node.bag) <= covered:
                return False
        return True

    def __repr__(self) -> str:
        return f"HypertreeDecomposition({len(self._nodes)} nodes, width {self.width})"


def _cover_bag_greedily(
    bag: FrozenSet[Hashable],
    hypergraph: Hypergraph,
) -> Tuple[Atom, ...]:
    """Greedy set cover of a bag by hyperedges (guards)."""
    uncovered = set(bag)
    guards: List[Atom] = []
    edges = sorted(hypergraph.edges, key=lambda e: str(e.atom))
    while uncovered:
        best_edge = max(edges, key=lambda e: len(e.vertices & uncovered))
        gained = best_edge.vertices & uncovered
        if not gained:
            # Bag vertices not present in any hyperedge (cannot happen for
            # Gaifman graphs of the same atoms, but keep the loop safe).
            break
        guards.append(best_edge.atom)
        uncovered -= gained
    return tuple(guards)


def hypertree_from_tree_decomposition(
    atoms: Iterable[Atom],
    decomposition: TreeDecomposition,
    connector_policy: ConnectorPolicy = query_connectors,
) -> HypertreeDecomposition:
    """Turn a tree decomposition into a generalized hypertree decomposition.

    Each bag is covered greedily by hyperedges of the atoms' hypergraph; the
    result is a valid generalized hypertree decomposition whose width is an
    upper bound on the generalized hypertree width.
    """
    hypergraph = Hypergraph(list(atoms), connector_policy)
    nodes: Dict[int, HypertreeNode] = {}
    for identifier, bag in decomposition.bags.items():
        guards = _cover_bag_greedily(bag, hypergraph)
        nodes[identifier] = HypertreeNode(identifier, bag, guards)
    return HypertreeDecomposition(nodes, decomposition.edges())


def hypertree_from_join_tree(join_tree: JoinTree) -> HypertreeDecomposition:
    """Width-1 hypertree decomposition of an acyclic atom collection."""
    nodes: Dict[int, HypertreeNode] = {}
    for tree_node in join_tree.nodes():
        nodes[tree_node.identifier] = HypertreeNode(
            tree_node.identifier,
            frozenset(tree_node.vertices),
            (tree_node.atom,),
        )
    edges = [(parent, child) for parent, child in join_tree.edges()]
    return HypertreeDecomposition(nodes, edges)


def hypertree_decomposition_of_atoms(
    atoms: Iterable[Atom],
    connector_policy: ConnectorPolicy = query_connectors,
) -> HypertreeDecomposition:
    """Best-effort generalized hypertree decomposition of a set of atoms.

    Acyclic inputs get the exact width-1 decomposition from their join tree;
    cyclic inputs get the greedy cover of a min-fill tree decomposition
    (an upper bound on the generalized hypertree width).
    """
    atom_list = list(atoms)
    if not atom_list:
        raise ValueError("cannot decompose an empty set of atoms")
    try:
        join_tree = build_join_tree(atom_list, connector_policy)
    except JoinTreeError:
        pass
    else:
        return hypertree_from_join_tree(join_tree)

    hypergraph = Hypergraph(atom_list, connector_policy)
    graph: AdjacencyGraph = {}
    for edge in hypergraph.edges:
        members = sorted(edge.vertices, key=str)
        for vertex in members:
            graph.setdefault(vertex, set())
        for i, left in enumerate(members):
            for right in members[i + 1:]:
                graph[left].add(right)
                graph[right].add(left)
    decomposition = tree_decomposition_min_fill(graph)
    return hypertree_from_tree_decomposition(atom_list, decomposition, connector_policy)


def hypertree_width_upper_bound(
    atoms: Iterable[Atom],
    connector_policy: ConnectorPolicy = query_connectors,
) -> int:
    """Upper bound on the generalized hypertree width of a set of atoms.

    Acyclic sets report exactly 1 (Yannakakis-evaluable); Example 2's chased
    clique reports roughly ``n / 2`` (every guard is a binary atom), and the
    Example 5 grid grows with the grid side — matching the paper's remark
    that those chases destroy bounded hypertree width.
    """
    return hypertree_decomposition_of_atoms(list(atoms), connector_policy).width


# ----------------------------------------------------------------------
# Convenience entry points for queries, instances and chase results
# ----------------------------------------------------------------------
def query_treewidth(atoms: Iterable[Atom], exact_limit: int = 0) -> int:
    """Treewidth (bound) of a query body's Gaifman graph.

    Args:
        atoms: the query body.
        exact_limit: when positive and the graph has at most this many
            vertices, the exact branch-and-bound search is used; otherwise
            the heuristic upper bound is returned.
    """
    graph = gaifman_graph_of_atoms(list(atoms))
    if exact_limit and len(graph) <= exact_limit:
        return treewidth_exact(graph, max_vertices=exact_limit)
    return treewidth_upper_bound(graph)


def instance_treewidth(instance: Instance, exact_limit: int = 0) -> int:
    """Treewidth (bound) of an instance's Gaifman graph (all terms as nodes)."""
    graph = gaifman_graph_of_instance(instance)
    if exact_limit and len(graph) <= exact_limit:
        return treewidth_exact(graph, max_vertices=exact_limit)
    return treewidth_upper_bound(graph)
