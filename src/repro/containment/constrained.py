"""CQ containment and equivalence under tgds and egds (Lemma 1).

``q ⊆_Σ q'`` iff ``c(x̄) ∈ q'(chase(q, Σ))``.  For egds the chase always
terminates, so the check is a decision procedure.  For tgds the chase may be
infinite; the functions below therefore return a three-valued
:class:`ContainmentOutcome`:

* ``TRUE`` — a homomorphism witnessing the containment was found (sound for
  any chase prefix, hence always correct);
* ``FALSE`` — the chase terminated and no witness exists (correct);
* ``UNKNOWN`` — the step/depth budget was exhausted before either of the
  above; callers may retry with a larger budget or switch to the
  rewriting-based procedure (exact for the UCQ-rewritable classes).

For the classes used in the paper's positive results the outcome is always
definite in practice: non-recursive and weakly-acyclic sets have terminating
chases, sticky sets are handled through UCQ rewriting, and guarded examples
terminate within generous budgets (the default budget can be raised).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Union

from ..chase.egd_chase import egd_chase_query
from ..chase.tgd_chase import chase
from ..datamodel import TermFactory, freeze_variable
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .cq_containment import cq_contained_in


class ContainmentOutcome(enum.Enum):
    """Three-valued outcome of a chase-based containment check."""

    TRUE = "true"
    FALSE = "false"
    UNKNOWN = "unknown"

    def __bool__(self) -> bool:
        return self is ContainmentOutcome.TRUE

    @property
    def is_definite(self) -> bool:
        return self is not ContainmentOutcome.UNKNOWN


@dataclass
class ContainmentConfig:
    """Budgets for the chase-based containment procedures."""

    max_steps: int = 10_000
    max_depth: Optional[int] = None
    chase_variant: str = "restricted"
    #: The right-hand query is evaluated every ``check_interval`` chase steps,
    #: so positive containments are detected long before the step budget is
    #: spent even when the chase does not terminate (TRUE is sound on any
    #: chase prefix).
    check_interval: int = 200


DEFAULT_CONFIG = ContainmentConfig()


def _chase_until_witness(
    left: ConjunctiveQuery,
    right_holds,
    tgds: Sequence[TGD],
    config: ContainmentConfig,
) -> ContainmentOutcome:
    """Shared incremental loop behind the chase-based containment checks.

    The canonical database of ``left`` is chased in chunks of
    ``config.check_interval`` steps; after every chunk the witness test
    ``right_holds(instance)`` is evaluated.  A positive test on any prefix is
    sound (the prefix embeds into every chase result), a negative test on a
    terminated chase is exact, and running out of budget yields ``UNKNOWN``.
    """
    database, _ = left.freeze()
    instance = database
    steps_used = 0
    terminated = False
    # A single factory across all chunks keeps the invented nulls globally
    # fresh when the chase is resumed on the previous chunk's result.
    factory = TermFactory(null_prefix="cont_n")
    while True:
        if right_holds(instance):
            return ContainmentOutcome.TRUE
        if terminated:
            return ContainmentOutcome.FALSE
        if steps_used >= config.max_steps:
            return ContainmentOutcome.UNKNOWN
        chunk = min(max(config.check_interval, 1), config.max_steps - steps_used)
        result = chase(
            instance,
            list(tgds),
            variant=config.chase_variant,
            max_steps=chunk,
            max_depth=config.max_depth,
            term_factory=factory,
        )
        instance = result.instance
        terminated = result.terminated
        if result.step_count == 0 and not terminated:
            # No step fired yet the chase is not a fixpoint: the depth budget
            # suppressed every remaining trigger, so no progress is possible.
            return (
                ContainmentOutcome.TRUE
                if right_holds(instance)
                else ContainmentOutcome.UNKNOWN
            )
        steps_used += max(result.step_count, 1)


def contained_under_tgds(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide ``left ⊆_Σ right`` for a set of tgds via the chase (Lemma 1)."""
    if len(left.head) != len(right.head):
        return ContainmentOutcome.FALSE
    if not tgds:
        return (
            ContainmentOutcome.TRUE
            if cq_contained_in(left, right)
            else ContainmentOutcome.FALSE
        )
    answer = tuple(freeze_variable(v) for v in left.head)
    return _chase_until_witness(
        left, lambda instance: right.holds_in(instance, answer), tgds, config
    )


def equivalent_under_tgds(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide ``left ≡_Σ right`` under tgds (conjunction of two containments)."""
    forward = contained_under_tgds(left, right, tgds, config)
    if forward is ContainmentOutcome.FALSE:
        return ContainmentOutcome.FALSE
    backward = contained_under_tgds(right, left, tgds, config)
    if backward is ContainmentOutcome.FALSE:
        return ContainmentOutcome.FALSE
    if forward is ContainmentOutcome.TRUE and backward is ContainmentOutcome.TRUE:
        return ContainmentOutcome.TRUE
    return ContainmentOutcome.UNKNOWN


def contained_under_egds(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    egds: Sequence[EGD],
) -> bool:
    """Decide ``left ⊆_Σ right`` for a set of egds (always terminating).

    A failing chase means the canonical database of ``left`` cannot satisfy
    the egds at all; in that case ``left`` is unsatisfiable w.r.t. ``Σ`` over
    consistent databases and the containment holds vacuously.
    """
    if len(left.head) != len(right.head):
        return False
    if not egds:
        return cq_contained_in(left, right)
    result, freezing = egd_chase_query(left, egds, on_failure="return")
    if result.failed:
        return True
    answer = tuple(result.resolve(freezing[v]) for v in left.head)
    return right.holds_in(result.instance, answer)


def equivalent_under_egds(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    egds: Sequence[EGD],
) -> bool:
    """Decide ``left ≡_Σ right`` under egds."""
    return contained_under_egds(left, right, egds) and contained_under_egds(
        right, left, egds
    )


def cq_contained_in_ucq_under_tgds(
    left: ConjunctiveQuery,
    right: UnionOfConjunctiveQueries,
    tgds: Sequence[TGD],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide ``left ⊆_Σ Q`` for a UCQ ``Q`` under tgds via the chase."""
    if len(left.head) != right.arity:
        return ContainmentOutcome.FALSE
    if not tgds:
        from .cq_containment import cq_contained_in_ucq

        return (
            ContainmentOutcome.TRUE
            if cq_contained_in_ucq(left, right)
            else ContainmentOutcome.FALSE
        )
    answer = tuple(freeze_variable(v) for v in left.head)
    return _chase_until_witness(
        left, lambda instance: right.holds_in(instance, answer), tgds, config
    )
