"""UCQ containment and equivalence under tgds (Section 8.1 support).

Containment of UCQs under a set of tgds reduces to CQ-in-UCQ containment
disjunct by disjunct: ``Q ⊆_Σ Q'`` iff every disjunct of ``Q`` is contained
in ``Q'`` under ``Σ``.  The functions below lift the chase-based procedures
of :mod:`repro.containment.constrained` accordingly and are used by the UCQ
variant of semantic acyclicity.
"""

from __future__ import annotations

from typing import Sequence

from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.ucq import UnionOfConjunctiveQueries
from .constrained import (
    ContainmentConfig,
    ContainmentOutcome,
    DEFAULT_CONFIG,
    contained_under_egds,
    cq_contained_in_ucq_under_tgds,
)


def ucq_contained_under_tgds(
    left: UnionOfConjunctiveQueries,
    right: UnionOfConjunctiveQueries,
    tgds: Sequence[TGD],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide ``Q ⊆_Σ Q'`` under a set of tgds, disjunct by disjunct."""
    saw_unknown = False
    for disjunct in left:
        outcome = cq_contained_in_ucq_under_tgds(disjunct, right, tgds, config)
        if outcome is ContainmentOutcome.FALSE:
            return ContainmentOutcome.FALSE
        if outcome is ContainmentOutcome.UNKNOWN:
            saw_unknown = True
    return ContainmentOutcome.UNKNOWN if saw_unknown else ContainmentOutcome.TRUE


def ucq_equivalent_under_tgds(
    left: UnionOfConjunctiveQueries,
    right: UnionOfConjunctiveQueries,
    tgds: Sequence[TGD],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide ``Q ≡_Σ Q'`` under a set of tgds."""
    forward = ucq_contained_under_tgds(left, right, tgds, config)
    if forward is ContainmentOutcome.FALSE:
        return ContainmentOutcome.FALSE
    backward = ucq_contained_under_tgds(right, left, tgds, config)
    if backward is ContainmentOutcome.FALSE:
        return ContainmentOutcome.FALSE
    if forward is ContainmentOutcome.TRUE and backward is ContainmentOutcome.TRUE:
        return ContainmentOutcome.TRUE
    return ContainmentOutcome.UNKNOWN


def ucq_contained_under_egds(
    left: UnionOfConjunctiveQueries,
    right: UnionOfConjunctiveQueries,
    egds: Sequence[EGD],
) -> bool:
    """Decide ``Q ⊆_Σ Q'`` under a set of egds (always terminating)."""
    for left_disjunct in left:
        if not any(
            contained_under_egds(left_disjunct, right_disjunct, egds)
            for right_disjunct in right
        ):
            # Fall back to the precise check: containment of a CQ in a UCQ is
            # not equivalent to containment in some disjunct in general, but
            # under egds the chase of the left disjunct is a single finite
            # instance, so we check the UCQ against it directly.
            from ..chase.egd_chase import egd_chase_query

            result, freezing = egd_chase_query(left_disjunct, egds, on_failure="return")
            if result.failed:
                continue
            answer = tuple(result.resolve(freezing[v]) for v in left_disjunct.head)
            if not right.holds_in(result.instance, answer):
                return False
    return True


def ucq_equivalent_under_egds(
    left: UnionOfConjunctiveQueries,
    right: UnionOfConjunctiveQueries,
    egds: Sequence[EGD],
) -> bool:
    """Decide ``Q ≡_Σ Q'`` under a set of egds."""
    return ucq_contained_under_egds(left, right, egds) and ucq_contained_under_egds(
        right, left, egds
    )
