"""Logical implication between dependencies, via the chase [25].

The paper's toolbox rests on the classical result of Maier, Mendelzon and
Sagiv (reference [25]) that implication of tgds/egds can be tested with the
chase: ``Σ ⊨ σ`` iff chasing the canonical (frozen) body of ``σ`` with ``Σ``
satisfies the head of ``σ``.  This module implements that test together with
the two uses query optimisers make of it:

* detecting *redundant* dependencies in a constraint set, and
* computing a *minimal cover* (a subset of ``Σ`` implying all of it).

Both are useful preprocessing steps before the semantic-acyclicity search:
smaller constraint sets mean smaller chases, smaller rewritings and fewer
candidate verifications.

The test is exact whenever the chase of the body terminates (always for
egds, and for tgd sets with a termination certificate); otherwise the
outcome is three-valued, like the containment checks it generalises.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..chase.egd_chase import egd_chase
from ..chase.tgd_chase import chase
from ..datamodel import Constant, Instance, TermFactory, Variable, freeze_variable
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.homomorphism import find_homomorphism
from .constrained import ContainmentConfig, ContainmentOutcome, DEFAULT_CONFIG


Dependency = Union[TGD, EGD]


def _frozen_body(dependency: Dependency) -> Tuple[Instance, Dict[Variable, Constant]]:
    """The canonical database of the dependency's body plus the freezing map."""
    if isinstance(dependency, TGD):
        variables = dependency.body_variables()
        body = dependency.body
    else:
        variables = set()
        for atom in dependency.body:
            variables |= atom.variables()
        body = dependency.body
    freezing = {variable: freeze_variable(variable) for variable in variables}
    instance = Instance(atom.apply(freezing) for atom in body)
    return instance, freezing


def _saturate(
    instance: Instance,
    tgds: Sequence[TGD],
    egds: Sequence[EGD],
    config: ContainmentConfig,
):
    """Alternate tgd and egd chase rounds until a joint fixpoint (or budget).

    Returns ``(instance, resolve, failed, exhausted)`` where ``resolve`` maps
    any term to its representative after all egd identifications.
    """
    substitution: Dict = {}
    factory = TermFactory(null_prefix="impl_n")
    steps_left = config.max_steps
    exhausted = False
    current = instance
    while True:
        changed = False
        if tgds:
            tgd_result = chase(
                current,
                list(tgds),
                variant=config.chase_variant,
                max_steps=max(steps_left, 1),
                term_factory=factory,
            )
            if tgd_result.step_count:
                changed = True
            steps_left -= tgd_result.step_count
            current = tgd_result.instance
            if not tgd_result.terminated:
                exhausted = True
        if egds:
            egd_result = egd_chase(current, list(egds), on_failure="return")
            if egd_result.failed:
                return current, substitution, True, exhausted
            if egd_result.steps:
                changed = True
                current = egd_result.instance
                for source, target in egd_result.substitution.items():
                    substitution[source] = egd_result.resolve(target)
        if not changed or exhausted or steps_left <= 0:
            if steps_left <= 0:
                exhausted = True
            break
    return current, substitution, False, exhausted


def _resolve(substitution: Dict, term):
    seen = set()
    while term in substitution and term not in seen:
        seen.add(term)
        term = substitution[term]
    return term


def dependency_implied(
    sigma: Sequence[Dependency],
    candidate: Dependency,
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> ContainmentOutcome:
    """Decide whether ``Σ ⊨ candidate`` (chase the frozen body, check the head).

    The outcome is ``TRUE``/``FALSE`` whenever the chase reaches a fixpoint
    within the budget and ``UNKNOWN`` otherwise; a failing egd chase means
    the candidate's body is unsatisfiable on databases satisfying ``Σ``, so
    the implication holds vacuously.
    """
    tgds = [d for d in sigma if isinstance(d, TGD)]
    egds = [d for d in sigma if isinstance(d, EGD)]
    body_instance, freezing = _frozen_body(candidate)
    chased, substitution, failed, exhausted = _saturate(body_instance, tgds, egds, config)
    if failed:
        return ContainmentOutcome.TRUE

    if isinstance(candidate, EGD):
        left = _resolve(substitution, freezing[candidate.left])
        right = _resolve(substitution, freezing[candidate.right])
        if left == right:
            return ContainmentOutcome.TRUE
        return ContainmentOutcome.UNKNOWN if exhausted else ContainmentOutcome.FALSE

    seed = {
        variable: _resolve(substitution, freezing[variable])
        for variable in candidate.frontier_variables()
    }
    if find_homomorphism(candidate.head, chased, seed=seed) is not None:
        return ContainmentOutcome.TRUE
    return ContainmentOutcome.UNKNOWN if exhausted else ContainmentOutcome.FALSE


def redundant_dependencies(
    sigma: Sequence[Dependency],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> List[int]:
    """Indexes of dependencies implied by the *rest* of the set (definite only)."""
    redundant: List[int] = []
    for index, dependency in enumerate(sigma):
        rest = [d for position, d in enumerate(sigma) if position != index]
        if dependency_implied(rest, dependency, config) is ContainmentOutcome.TRUE:
            redundant.append(index)
    return redundant


def minimal_cover(
    sigma: Sequence[Dependency],
    config: ContainmentConfig = DEFAULT_CONFIG,
) -> List[Dependency]:
    """A subset of ``Σ`` that implies every dropped dependency.

    Dependencies are dropped greedily (in input order) whenever the remaining
    set still implies them; the result is minimal with respect to this
    one-at-a-time removal, which is the standard notion of a cover.  Only
    definite (``TRUE``) implications justify a removal, so the cover is
    always equivalent to the input set.
    """
    kept: List[Dependency] = list(sigma)
    index = 0
    while index < len(kept):
        candidate = kept[index]
        rest = kept[:index] + kept[index + 1:]
        if rest and dependency_implied(rest, candidate, config) is ContainmentOutcome.TRUE:
            kept = rest
        else:
            index += 1
    return kept
