"""Containment and equivalence of CQs and UCQs, with and without constraints."""

from .cq_containment import (
    canonical_database_and_answer,
    cq_contained_in,
    cq_contained_in_ucq,
    cq_equivalent,
    ucq_contained_in_ucq,
    ucq_equivalent,
)
from .constrained import (
    ContainmentConfig,
    ContainmentOutcome,
    DEFAULT_CONFIG,
    contained_under_egds,
    contained_under_tgds,
    cq_contained_in_ucq_under_tgds,
    equivalent_under_egds,
    equivalent_under_tgds,
)
from .ucq_containment import (
    ucq_contained_under_egds,
    ucq_contained_under_tgds,
    ucq_equivalent_under_egds,
    ucq_equivalent_under_tgds,
)
from .implication import (
    dependency_implied,
    minimal_cover,
    redundant_dependencies,
)

__all__ = [
    "ContainmentConfig",
    "ContainmentOutcome",
    "DEFAULT_CONFIG",
    "canonical_database_and_answer",
    "contained_under_egds",
    "contained_under_tgds",
    "cq_contained_in",
    "dependency_implied",
    "minimal_cover",
    "redundant_dependencies",
    "cq_contained_in_ucq",
    "cq_contained_in_ucq_under_tgds",
    "cq_equivalent",
    "equivalent_under_egds",
    "equivalent_under_tgds",
    "ucq_contained_in_ucq",
    "ucq_contained_under_egds",
    "ucq_contained_under_tgds",
    "ucq_equivalent",
    "ucq_equivalent_under_egds",
    "ucq_equivalent_under_tgds",
]
