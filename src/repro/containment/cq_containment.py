"""Classical (constraint-free) CQ and UCQ containment.

Chandra–Merlin: ``q ⊆ q'`` over all databases iff the frozen head ``c(x̄)``
of ``q`` belongs to ``q'(D_q)`` where ``D_q`` is the canonical database of
``q``.  These checks are the base case of everything done under constraints
and are also the workhorse of the rewriting-based procedures (Definition 2
reduces containment under Σ to UCQ evaluation over canonical databases).
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..datamodel import Constant, Database
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries


def canonical_database_and_answer(
    query: ConjunctiveQuery,
) -> Tuple[Database, Tuple[Constant, ...]]:
    """Return ``(D_q, c(x̄))`` for a CQ ``q(x̄)``."""
    database, freezing = query.freeze()
    answer = tuple(freezing[v] for v in query.head)
    return database, answer


def cq_contained_in(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """``left ⊆ right`` over all databases (no constraints)."""
    if len(left.head) != len(right.head):
        return False
    database, answer = canonical_database_and_answer(left)
    return right.holds_in(database, answer)


def cq_equivalent(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """``left ≡ right`` over all databases (no constraints)."""
    return cq_contained_in(left, right) and cq_contained_in(right, left)


def cq_contained_in_ucq(left: ConjunctiveQuery, right: UnionOfConjunctiveQueries) -> bool:
    """``left ⊆ Q`` for a UCQ ``Q``: some disjunct of ``Q`` maps into ``D_left``."""
    if len(left.head) != right.arity:
        return False
    database, answer = canonical_database_and_answer(left)
    return right.holds_in(database, answer)


def ucq_contained_in_ucq(
    left: UnionOfConjunctiveQueries, right: UnionOfConjunctiveQueries
) -> bool:
    """``Q ⊆ Q'`` for UCQs: every disjunct of ``Q`` is contained in ``Q'``."""
    return all(cq_contained_in_ucq(disjunct, right) for disjunct in left)


def ucq_equivalent(
    left: UnionOfConjunctiveQueries, right: UnionOfConjunctiveQueries
) -> bool:
    """``Q ≡ Q'`` for UCQs over all databases."""
    return ucq_contained_in_ucq(left, right) and ucq_contained_in_ucq(right, left)
