"""Datalog-like parser and pretty-printers."""

from .parser import (
    ParseError,
    parse_atom,
    parse_conjunction,
    parse_dependency,
    parse_egd,
    parse_program,
    parse_query,
    parse_tgd,
    parse_ucq,
)
from .formatting import (
    format_atom,
    format_conjunction,
    format_dependency,
    format_egd,
    format_instance,
    format_query,
    format_tgd,
    format_term,
    format_ucq,
)

__all__ = [
    "ParseError",
    "format_atom",
    "format_conjunction",
    "format_dependency",
    "format_egd",
    "format_instance",
    "format_query",
    "format_tgd",
    "format_term",
    "format_ucq",
    "parse_atom",
    "parse_conjunction",
    "parse_dependency",
    "parse_egd",
    "parse_program",
    "parse_query",
    "parse_tgd",
    "parse_ucq",
]
