"""Pretty-printers producing the same surface syntax the parser accepts."""

from __future__ import annotations

from typing import Iterable, Union

from ..datamodel import Atom, Constant, Instance, Term, Variable
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries


def format_term(term: Term) -> str:
    """Render a term in parser-compatible syntax."""
    if isinstance(term, Constant):
        if isinstance(term.name, int):
            return str(term.name)
        return f"'{term.name}'"
    return str(term)


def format_atom(atom: Atom) -> str:
    """Render an atom in parser-compatible syntax."""
    return f"{atom.predicate.name}({', '.join(format_term(t) for t in atom.terms)})"


def format_conjunction(atoms: Iterable[Atom]) -> str:
    return ", ".join(format_atom(atom) for atom in atoms)


def format_query(query: ConjunctiveQuery) -> str:
    """Render a CQ as ``name(x, y) :- body`` (Boolean queries omit the head)."""
    body = format_conjunction(query.body)
    if not query.head:
        return body
    head = f"{query.name}({', '.join(str(v) for v in query.head)})"
    return f"{head} :- {body}"


def format_ucq(ucq: UnionOfConjunctiveQueries) -> str:
    """Render a UCQ with ``;`` separated disjuncts."""
    return " ; ".join(format_query(q) for q in ucq)


def format_tgd(tgd: TGD) -> str:
    """Render a tgd as ``body -> head``."""
    return f"{format_conjunction(tgd.body)} -> {format_conjunction(tgd.head)}"


def format_egd(egd: EGD) -> str:
    """Render an egd as ``body -> x = y``."""
    return f"{format_conjunction(egd.body)} -> {egd.left} = {egd.right}"


def format_dependency(dependency: Union[TGD, EGD]) -> str:
    if isinstance(dependency, TGD):
        return format_tgd(dependency)
    return format_egd(dependency)


def format_instance(instance: Instance) -> str:
    """Render an instance one fact per line (deterministic order)."""
    return "\n".join(format_atom(atom) for atom in instance.sorted_atoms())
