"""A small Datalog-like surface syntax for queries and dependencies.

The syntax is deliberately minimal but convenient for examples and tests:

* atoms: ``R(x, y)`` — bare identifiers are variables, numbers and quoted
  strings are constants;
* conjunctive queries: ``q(x, y) :- R(x, z), S(z, y)`` (Boolean queries can
  omit the head entirely: ``R(x, z), S(z, y)``);
* unions of CQs: disjuncts separated by ``;``;
* tgds: ``R(x, y), S(y, z) -> T(x, z), U(z, w)`` (variables appearing only in
  the head are read as existentially quantified);
* egds: ``R(x, y), R(x, z) -> y = z``.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..datamodel import Atom, Constant, Predicate, Schema, Term, Variable
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries


class ParseError(ValueError):
    """Raised on malformed input."""


_ATOM_PATTERN = re.compile(r"\s*([A-Za-z_][A-Za-z0-9_]*)\s*\(([^()]*)\)\s*")
_NUMBER_PATTERN = re.compile(r"^-?\d+$")


def _parse_term(token: str) -> Term:
    token = token.strip()
    if not token:
        raise ParseError("empty term")
    if _NUMBER_PATTERN.match(token):
        return Constant(int(token))
    if (token.startswith("'") and token.endswith("'")) or (
        token.startswith('"') and token.endswith('"')
    ):
        return Constant(token[1:-1])
    if not re.match(r"^[A-Za-z_][A-Za-z0-9_]*$", token):
        raise ParseError(f"invalid term {token!r}")
    return Variable(token)


def parse_atom(text: str, schema: Optional[Schema] = None) -> Atom:
    """Parse a single atom such as ``R(x, 'a', 3)``."""
    match = _ATOM_PATTERN.fullmatch(text)
    if match is None:
        raise ParseError(f"malformed atom {text!r}")
    name, arguments = match.group(1), match.group(2)
    terms = (
        tuple(_parse_term(part) for part in arguments.split(",")) if arguments.strip() else ()
    )
    predicate = Predicate(name, len(terms))
    if schema is not None:
        predicate = schema.predicate(name, len(terms))
    return Atom(predicate, terms)


def _split_atoms(text: str) -> List[str]:
    """Split a comma-separated conjunction of atoms, respecting parentheses."""
    parts: List[str] = []
    depth = 0
    current: List[str] = []
    for character in text:
        if character == "(":
            depth += 1
        elif character == ")":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced parentheses in {text!r}")
        if character == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(character)
    if depth != 0:
        raise ParseError(f"unbalanced parentheses in {text!r}")
    if "".join(current).strip():
        parts.append("".join(current))
    return parts


def parse_conjunction(text: str, schema: Optional[Schema] = None) -> List[Atom]:
    """Parse a comma-separated conjunction of atoms."""
    return [parse_atom(part, schema) for part in _split_atoms(text)]


def parse_query(text: str, schema: Optional[Schema] = None, name: str = "q") -> ConjunctiveQuery:
    """Parse a CQ.

    Accepted forms: ``q(x, y) :- body`` / ``() :- body`` / just ``body``
    (Boolean query).
    """
    text = text.strip()
    head_variables: Tuple[Variable, ...] = ()
    query_name = name
    if ":-" in text:
        head_text, body_text = text.split(":-", 1)
        head_text = head_text.strip()
        if head_text and head_text != "()":
            match = _ATOM_PATTERN.fullmatch(head_text)
            if match is None:
                raise ParseError(f"malformed query head {head_text!r}")
            query_name = match.group(1)
            arguments = match.group(2)
            if arguments.strip():
                head_terms = [_parse_term(part) for part in arguments.split(",")]
                for term in head_terms:
                    if not isinstance(term, Variable):
                        raise ParseError("query heads may only contain variables")
                head_variables = tuple(head_terms)  # type: ignore[arg-type]
    else:
        body_text = text
    body = parse_conjunction(body_text, schema)
    return ConjunctiveQuery(head_variables, body, name=query_name)


def parse_ucq(text: str, schema: Optional[Schema] = None, name: str = "Q") -> UnionOfConjunctiveQueries:
    """Parse a UCQ whose disjuncts are separated by ``;``."""
    disjunct_texts = [part for part in text.split(";") if part.strip()]
    disjuncts = [
        parse_query(part, schema, name=f"{name}_{index}")
        for index, part in enumerate(disjunct_texts)
    ]
    return UnionOfConjunctiveQueries(disjuncts, name=name)


def parse_tgd(text: str, schema: Optional[Schema] = None, label: Optional[str] = None) -> TGD:
    """Parse a tgd ``body -> head`` (head variables not in the body are existential)."""
    if "->" not in text:
        raise ParseError(f"a tgd needs a '->': {text!r}")
    body_text, head_text = text.split("->", 1)
    body = parse_conjunction(body_text, schema)
    head = parse_conjunction(head_text, schema)
    return TGD(body, head, label=label)


def parse_egd(text: str, schema: Optional[Schema] = None, label: Optional[str] = None) -> EGD:
    """Parse an egd ``body -> x = y``."""
    if "->" not in text:
        raise ParseError(f"an egd needs a '->': {text!r}")
    body_text, equality_text = text.split("->", 1)
    if "=" not in equality_text:
        raise ParseError(f"an egd needs an equality in its head: {text!r}")
    left_text, right_text = equality_text.split("=", 1)
    left = _parse_term(left_text)
    right = _parse_term(right_text)
    if not isinstance(left, Variable) or not isinstance(right, Variable):
        raise ParseError("egds equate two variables")
    return EGD(parse_conjunction(body_text, schema), left, right, label=label)


def parse_dependency(text: str, schema: Optional[Schema] = None) -> Union[TGD, EGD]:
    """Parse either a tgd or an egd, deciding by the shape of the head."""
    if "->" not in text:
        raise ParseError(f"a dependency needs a '->': {text!r}")
    _, head_text = text.split("->", 1)
    if "=" in head_text and "(" not in head_text:
        return parse_egd(text, schema)
    return parse_tgd(text, schema)


def parse_program(
    text: str, schema: Optional[Schema] = None
) -> List[Union[TGD, EGD]]:
    """Parse a newline/period-separated list of dependencies (``%`` comments allowed)."""
    dependencies: List[Union[TGD, EGD]] = []
    for raw_line in re.split(r"[\n.]+", text):
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            continue
        dependencies.append(parse_dependency(line, schema))
    return dependencies
