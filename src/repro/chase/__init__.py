"""Chase engines for tgds and egds, plus the guarded chase forest."""

from .tgd_chase import (
    ChaseBudgetExceeded,
    ChaseResult,
    ChaseStep,
    chase,
    chase_query,
    chase_terminates,
)
from .egd_chase import (
    EGDChaseFailure,
    EGDChaseResult,
    EGDChaseStep,
    chased_query,
    egd_chase,
    egd_chase_query,
    fd_chase_query,
)
from .guarded_forest import (
    GuardedChaseForest,
    guarded_chase_forest,
    guarded_chase_join_tree,
)
from .preservation import (
    PreservationReport,
    egd_chase_preserves_acyclicity,
    tgd_chase_preserves_acyclicity,
)
from .termination import (
    ChaseComparison,
    TerminationCertificate,
    certify_termination,
    chase_depth_bound,
    compare_chase_variants,
    full_chase_size_bound,
    recommended_step_budget,
)

__all__ = [
    "ChaseBudgetExceeded",
    "ChaseComparison",
    "ChaseResult",
    "ChaseStep",
    "EGDChaseFailure",
    "EGDChaseResult",
    "EGDChaseStep",
    "GuardedChaseForest",
    "PreservationReport",
    "TerminationCertificate",
    "certify_termination",
    "chase",
    "chase_depth_bound",
    "chase_query",
    "chase_terminates",
    "chased_query",
    "compare_chase_variants",
    "egd_chase",
    "egd_chase_query",
    "egd_chase_preserves_acyclicity",
    "fd_chase_query",
    "full_chase_size_bound",
    "guarded_chase_forest",
    "guarded_chase_join_tree",
    "recommended_step_budget",
    "tgd_chase_preserves_acyclicity",
]
