"""Acyclicity-preservation instrumentation for the chase (Definition 1).

A class of dependencies has *acyclicity-preserving chase* when chasing an
acyclic CQ can never produce a cyclic instance.  The paper proves that
guarded tgds (Proposition 12) and keys over unary/binary predicates
(Proposition 22) enjoy the property, while non-recursive and sticky sets
(Example 2) and keys over higher arities (Examples 4/5) do not.

This module offers empirical checks of the property for concrete inputs:
chase the query, then test the acyclicity of the result.  The benchmarks use
them to regenerate the paper's examples and to measure how often randomly
generated sets preserve acyclicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..hypergraph import is_acyclic_instance
from ..queries.cq import ConjunctiveQuery
from .egd_chase import EGDChaseResult, egd_chase_query
from .tgd_chase import ChaseResult, chase_query


@dataclass
class PreservationReport:
    """Outcome of an acyclicity-preservation experiment on one query."""

    query_acyclic: bool
    chase_acyclic: bool
    chase_terminated: bool
    chase_size: int

    @property
    def preserved(self) -> bool:
        """Acyclicity preserved (only meaningful when the query was acyclic)."""
        return (not self.query_acyclic) or self.chase_acyclic


def tgd_chase_preserves_acyclicity(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    max_steps: int = 5_000,
    max_depth: Optional[int] = None,
) -> PreservationReport:
    """Chase an acyclic CQ with tgds and check whether acyclicity survived.

    When the chase does not terminate within the budget the report still
    checks the truncated result; a cyclic truncated chase already refutes
    preservation (the truncated chase is a subset of every chase result only
    up to homomorphism, but cycles found among the produced atoms are
    genuine products of the chase steps performed).
    """
    result, _ = chase_query(query, tgds, max_steps=max_steps, max_depth=max_depth)
    return PreservationReport(
        query_acyclic=query.is_acyclic(),
        chase_acyclic=is_acyclic_instance(result.instance),
        chase_terminated=result.terminated,
        chase_size=len(result.instance),
    )


def egd_chase_preserves_acyclicity(
    query: ConjunctiveQuery,
    egds: Sequence[EGD],
) -> PreservationReport:
    """Chase an acyclic CQ with egds and check whether acyclicity survived."""
    result, _ = egd_chase_query(query, egds, on_failure="return")
    return PreservationReport(
        query_acyclic=query.is_acyclic(),
        chase_acyclic=is_acyclic_instance(result.instance),
        chase_terminated=not result.failed,
        chase_size=len(result.instance),
    )
