"""The guarded chase forest (proof device of Proposition 12).

For a guarded set of tgds, every chase step is anchored at the image of the
guard atom of the fired tgd; the *guarded chase forest* has the atoms of the
chase as nodes, the atoms of the initial instance as roots and, for every
derived atom, the guard image of the producing step as its parent.  Attaching
these trees to a join tree of the initial (acyclic) query yields a join tree
of the whole chase, which is exactly how the paper proves that guarded sets
have acyclicity-preserving chase.

This module materialises the construction: it runs a (restricted) chase,
records the guard anchoring and assembles an explicit join tree of the chase
result.  The join tree is verified in the tests with
:func:`repro.hypergraph.is_valid_join_tree`, giving an executable version of
Proposition 12.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Constant, Instance, Variable
from ..dependencies.tgd import TGD
from ..dependencies.classification import is_guarded_set
from ..hypergraph import (
    JoinTree,
    JoinTreeNode,
    build_join_tree,
    instance_connectors,
)
from ..queries.cq import ConjunctiveQuery
from .tgd_chase import ChaseResult, chase_query


@dataclass
class GuardedChaseForest:
    """The chase result together with guard-anchored parent links."""

    chase: ChaseResult
    #: Freezing map of the chased query.
    freezing: Dict[Variable, Constant]
    #: Parent atom of every derived atom (the guard image of the producing step).
    parent_atom: Dict[Atom, Atom] = field(default_factory=dict)
    #: Atoms of the initial (frozen) query — the roots of the forest.
    roots: Tuple[Atom, ...] = ()

    def depth_of(self, atom: Atom) -> int:
        """Distance of ``atom`` from its root in the forest."""
        depth = 0
        current = atom
        while current in self.parent_atom:
            current = self.parent_atom[current]
            depth += 1
        return depth


def guarded_chase_forest(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    max_steps: int = 10_000,
    max_depth: Optional[int] = None,
    require_guarded: bool = True,
) -> GuardedChaseForest:
    """Chase ``query`` with guarded ``tgds`` and record the guard anchoring.

    Args:
        query: the CQ to chase (its variables are frozen first).
        tgds: a guarded set of tgds (checked unless ``require_guarded=False``).
        max_steps / max_depth: chase budgets (see :func:`repro.chase.chase`).
        require_guarded: raise ``ValueError`` when the set is not guarded.
    """
    tgd_list = list(tgds)
    if require_guarded and not is_guarded_set(tgd_list):
        raise ValueError("the guarded chase forest requires a guarded set of tgds")

    result, freezing = chase_query(
        query, tgd_list, variant="restricted", max_steps=max_steps, max_depth=max_depth
    )
    forest = GuardedChaseForest(
        chase=result,
        freezing=freezing,
        roots=tuple(query.canonical_database().sorted_atoms()),
    )

    initial_atoms = set(forest.roots)
    for step in result.steps:
        guard = step.tgd.guard() if step.tgd.is_guarded() else step.tgd.body[0]
        anchor = guard.apply(step.trigger)
        for atom in step.new_atoms:
            if atom in initial_atoms:
                continue
            forest.parent_atom.setdefault(atom, anchor)
    return forest


def guarded_chase_join_tree(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    max_steps: int = 10_000,
    max_depth: Optional[int] = None,
) -> Tuple[JoinTree, GuardedChaseForest]:
    """Build an explicit join tree of ``chase(query, tgds)`` (Proposition 12).

    The query must be acyclic; the returned join tree covers every atom of
    the chase result and witnesses its acyclicity.

    Raises:
        ValueError: if the query is cyclic, the set is not guarded, or an
            anchoring atom is missing (which would contradict guardedness).
    """
    if not query.is_acyclic():
        raise ValueError("the construction of Proposition 12 starts from an acyclic CQ")

    forest = guarded_chase_forest(
        query, tgds, max_steps=max_steps, max_depth=max_depth
    )

    # Join tree of the frozen query (its connectors are the frozen constants).
    base_atoms = list(forest.roots)
    base_tree = build_join_tree(base_atoms, instance_connectors)

    nodes: Dict[int, JoinTreeNode] = {}
    parent: Dict[int, Optional[int]] = {}
    atom_to_id: Dict[Atom, int] = {}

    for node in base_tree.nodes():
        identifier = node.identifier
        nodes[identifier] = JoinTreeNode(identifier, node.atom, node.vertices)
        parent[identifier] = base_tree.parent(node.identifier)
        atom_to_id.setdefault(node.atom, identifier)

    next_id = max(nodes) + 1 if nodes else 0

    # Attach derived atoms below their guard anchors, processed in production
    # order so that parents are always present.
    ordered = sorted(
        forest.parent_atom,
        key=lambda atom: forest.chase.produced_by.get(atom, 0),
    )
    for atom in ordered:
        if atom in atom_to_id:
            continue
        anchor = forest.parent_atom[atom]
        anchor_id = atom_to_id.get(anchor)
        if anchor_id is None:
            raise ValueError(
                f"anchor atom {anchor} of derived atom {atom} is not in the tree"
            )
        vertices = frozenset(t for t in atom.terms if instance_connectors(t))
        nodes[next_id] = JoinTreeNode(next_id, atom, vertices)
        parent[next_id] = anchor_id
        atom_to_id[atom] = next_id
        next_id += 1

    return JoinTree(nodes, parent), forest
