"""Chase termination certificates and budget estimation.

The chase under arbitrary tgds need not terminate, and whether it does is
undecidable in general.  The classes of tgds the paper works with, however,
come with well-known *sufficient* termination conditions:

* **full** sets (no existential variables) never invent fresh nulls, so the
  chase stops after at most ``|schema|·|adom|^arity`` atoms;
* **non-recursive** sets (Section 2) have an acyclic predicate graph, so the
  chase proceeds stratum by stratum and stops after ``stratification_depth``
  rounds;
* **weakly acyclic** sets (Fagin et al., used by the paper to delimit the
  undecidable territory of Theorem 7) bound the "rank" of every null by the
  number of positions of the schema, which again forces termination.

This module turns those observations into explicit, testable
:class:`TerminationCertificate` objects, provides step/size budget estimates
that the SemAc procedures and the benchmarks can use instead of guessing
budgets, and offers a side-by-side comparison of the restricted and
oblivious chase variants (the ablation called out in ``DESIGN.md``).

A certificate with ``guaranteed=False`` means "no sufficient condition
applies", never "the chase diverges".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from ..datamodel import Instance
from ..dependencies.predicate_graph import (
    is_non_recursive,
    is_weakly_acyclic,
    position_dependency_graph,
    stratification_depth,
)
from ..dependencies.tgd import TGD, tgd_set_predicates
from ..queries.cq import ConjunctiveQuery
from .tgd_chase import ChaseResult, chase


# ----------------------------------------------------------------------
# Certificates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TerminationCertificate:
    """A sufficient-condition certificate that the chase terminates.

    Attributes:
        guaranteed: ``True`` iff some sufficient condition applies.
        reason: which condition fired (``"empty"``, ``"full"``,
            ``"non-recursive"``, ``"weakly-acyclic"``) or ``"none"``.
        depth_bound: when available, a bound on the derivation depth of every
            chase atom (``None`` when the condition bounds the size but not
            the depth, or when no condition applies).
        explanation: a human-readable sentence describing the certificate.
    """

    guaranteed: bool
    reason: str
    depth_bound: Optional[int] = None
    explanation: str = ""

    def __bool__(self) -> bool:
        return self.guaranteed


def certify_termination(tgds: Sequence[TGD]) -> TerminationCertificate:
    """Return the strongest applicable termination certificate for ``tgds``.

    The conditions are checked from the most informative to the most general:
    empty set, non-recursive set (which yields a depth bound), full set,
    weakly acyclic set.
    """
    tgd_list = list(tgds)
    if not tgd_list:
        return TerminationCertificate(
            guaranteed=True,
            reason="empty",
            depth_bound=0,
            explanation="an empty set of tgds never fires a chase step",
        )

    if is_non_recursive(tgd_list):
        depth = stratification_depth(tgd_list)
        return TerminationCertificate(
            guaranteed=True,
            reason="non-recursive",
            depth_bound=depth,
            explanation=(
                f"the predicate graph is acyclic with stratification depth "
                f"{depth}, so the chase proceeds through at most {depth} strata"
            ),
        )

    if all(tgd.is_full() for tgd in tgd_list):
        return TerminationCertificate(
            guaranteed=True,
            reason="full",
            depth_bound=None,
            explanation=(
                "full tgds create no nulls, so the chase stops once every "
                "derivable atom over the active domain has been added"
            ),
        )

    if is_weakly_acyclic(tgd_list):
        positions = len(position_dependency_graph(tgd_list).positions)
        return TerminationCertificate(
            guaranteed=True,
            reason="weakly-acyclic",
            depth_bound=positions,
            explanation=(
                "no cycle of the position dependency graph uses a special "
                f"edge, so the rank of every null is bounded by the {positions} "
                "positions of the schema"
            ),
        )

    return TerminationCertificate(
        guaranteed=False,
        reason="none",
        depth_bound=None,
        explanation=(
            "no sufficient termination condition applies (the chase may still "
            "terminate on particular instances)"
        ),
    )


def chase_depth_bound(tgds: Sequence[TGD]) -> Optional[int]:
    """Return a depth bound for the chase, if a certificate provides one."""
    return certify_termination(tgds).depth_bound


# ----------------------------------------------------------------------
# Size / step budget estimation
# ----------------------------------------------------------------------
def full_chase_size_bound(instance_or_query, tgds: Sequence[TGD]) -> int:
    """Upper bound on ``|chase(I, Σ)|`` when ``Σ`` is a set of full tgds.

    Full tgds never extend the active domain, so the chase result is a subset
    of all atoms over the predicates of ``I ∪ Σ`` and the active domain of
    ``I``; the bound is ``Σ_R |adom|^{arity(R)}``.

    Raises:
        ValueError: if some tgd is not full (the bound would be wrong).
    """
    tgd_list = list(tgds)
    if any(not tgd.is_full() for tgd in tgd_list):
        raise ValueError("full_chase_size_bound requires a set of full tgds")
    if isinstance(instance_or_query, ConjunctiveQuery):
        domain_size = len(instance_or_query.terms())
        predicates = instance_or_query.predicates() | tgd_set_predicates(tgd_list)
    else:
        domain_size = len(instance_or_query.active_domain())
        predicates = set(instance_or_query.predicates()) | tgd_set_predicates(tgd_list)
    return sum(domain_size ** predicate.arity for predicate in predicates)


def recommended_step_budget(
    instance_or_query,
    tgds: Sequence[TGD],
    default: int = 10_000,
    cap: int = 1_000_000,
) -> int:
    """A step budget that is provably sufficient when a certificate applies.

    For full sets the budget is the size bound of :func:`full_chase_size_bound`
    (every productive step adds at least one atom); for the other certified
    classes the default is kept (their bounds are instance-independent and
    already generous); uncertified sets also keep the default.  The result is
    capped so that callers never accidentally ask for an astronomically large
    budget.
    """
    certificate = certify_termination(tgds)
    if certificate.reason == "full":
        return min(max(default, full_chase_size_bound(instance_or_query, tgds) + 1), cap)
    return min(default, cap)


# ----------------------------------------------------------------------
# Restricted vs oblivious comparison (ablation support)
# ----------------------------------------------------------------------
@dataclass
class ChaseComparison:
    """Side-by-side outcome of the restricted and oblivious chase variants."""

    restricted: ChaseResult
    oblivious: ChaseResult

    @property
    def both_terminated(self) -> bool:
        return self.restricted.terminated and self.oblivious.terminated

    @property
    def restricted_size(self) -> int:
        return len(self.restricted.instance)

    @property
    def oblivious_size(self) -> int:
        return len(self.oblivious.instance)

    @property
    def restricted_steps(self) -> int:
        return self.restricted.step_count

    @property
    def oblivious_steps(self) -> int:
        return self.oblivious.step_count

    def oblivious_overhead(self) -> float:
        """Size of the oblivious result relative to the restricted one (≥ 1.0)."""
        if self.restricted_size == 0:
            return 1.0
        return self.oblivious_size / self.restricted_size

    def summary(self) -> str:
        return (
            f"restricted: {self.restricted_size} atoms / {self.restricted_steps} steps; "
            f"oblivious: {self.oblivious_size} atoms / {self.oblivious_steps} steps"
        )


def compare_chase_variants(
    instance: Instance,
    tgds: Sequence[TGD],
    max_steps: int = 10_000,
    max_depth: Optional[int] = None,
) -> ChaseComparison:
    """Run both chase variants on the same input and package the results.

    The oblivious chase fires every trigger exactly once regardless of
    whether the head is already satisfied, so its result is never smaller
    than the restricted one; the comparison quantifies that overhead, which
    is what the restricted-vs-oblivious ablation in the benchmarks reports.
    """
    restricted = chase(
        instance, list(tgds), variant="restricted", max_steps=max_steps, max_depth=max_depth
    )
    oblivious = chase(
        instance, list(tgds), variant="oblivious", max_steps=max_steps, max_depth=max_depth
    )
    return ChaseComparison(restricted=restricted, oblivious=oblivious)
