"""The chase procedure for tuple-generating dependencies.

The module implements the two standard chase variants:

* the **restricted** chase fires a trigger only when the head is not already
  satisfied with the same frontier binding (this is the variant the paper
  uses throughout);
* the **oblivious** chase fires every trigger exactly once regardless of
  satisfaction (useful as an ablation and for the guarded chase forest).

Both variants chase either an instance or a CQ (whose variables are frozen
into the canonical constants ``c(x)`` of Lemma 1).  Since the chase need not
terminate for arbitrary tgds, every run takes a step budget and an optional
depth budget; the result records whether a genuine fixpoint was reached.
Chases that terminate within the budget are exact; truncated chases are
still sound under-approximations of ``chase(I, Σ)`` (every atom they contain
belongs to every chase result).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Atom,
    Constant,
    Database,
    Instance,
    Term,
    TermFactory,
    Variable,
)
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import homomorphisms


class ChaseBudgetExceeded(RuntimeError):
    """Raised by :func:`chase` when ``on_budget='raise'`` and the budget runs out."""


@dataclass
class ChaseStep:
    """A single tgd chase step ``I --(τ, trigger)--> J``."""

    tgd_index: int
    tgd: TGD
    trigger: Dict[Term, Term]
    new_atoms: Tuple[Atom, ...]
    #: The image of the tgd body under the trigger (the atoms that fired it).
    premise_atoms: Tuple[Atom, ...]
    #: 1 + maximal depth of the premise atoms.
    depth: int


@dataclass
class ChaseResult:
    """Result of chasing an instance with a set of tgds."""

    instance: Instance
    steps: List[ChaseStep] = field(default_factory=list)
    #: ``True`` iff a fixpoint was reached (the result satisfies the tgds).
    terminated: bool = True
    #: ``True`` iff the step or depth budget stopped the chase early.
    budget_exhausted: bool = False
    #: Depth of each atom (0 for the initial atoms).
    atom_depth: Dict[Atom, int] = field(default_factory=dict)
    #: For derived atoms, the step that produced them (guarded-forest support).
    produced_by: Dict[Atom, int] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.instance)

    @property
    def step_count(self) -> int:
        return len(self.steps)

    def max_depth(self) -> int:
        return max(self.atom_depth.values(), default=0)

    def satisfies(self, tgds: Iterable[TGD]) -> bool:
        """Check that the result satisfies every tgd (true iff ``terminated``)."""
        return all(tgd.is_satisfied_by(self.instance) for tgd in tgds)


def _frontier_binding(tgd: TGD, trigger: Mapping[Term, Term]) -> Dict[Term, Term]:
    return {variable: trigger[variable] for variable in tgd.frontier_variables()}


def _head_satisfied(tgd: TGD, instance: Instance, trigger: Mapping[Term, Term]) -> bool:
    seed = _frontier_binding(tgd, trigger)
    for _ in homomorphisms(tgd.head, instance, seed=seed):
        return True
    return False


def _trigger_key(tgd_index: int, tgd: TGD, trigger: Mapping[Term, Term]) -> Tuple:
    ordered = tuple(
        (variable.name, trigger[variable])
        for variable in sorted(tgd.body_variables(), key=str)
    )
    return (tgd_index, ordered)


def _unify_atom(pattern: Atom, fact: Atom) -> Optional[Dict[Term, Term]]:
    """Match a (variable-carrying) body atom against a ground fact."""
    if pattern.predicate != fact.predicate:
        return None
    binding: Dict[Term, Term] = {}
    for pattern_term, fact_term in zip(pattern.terms, fact.terms):
        if isinstance(pattern_term, Constant):
            if pattern_term != fact_term:
                return None
            continue
        bound = binding.get(pattern_term)
        if bound is None:
            binding[pattern_term] = fact_term
        elif bound != fact_term:
            return None
    return binding


def _triggers_touching(
    tgd: TGD,
    instance: Instance,
    delta: Optional[Set[Atom]],
) -> List[Dict[Term, Term]]:
    """Enumerate the triggers of ``tgd`` whose premise uses an atom of ``delta``.

    ``delta=None`` means "no restriction" (used for the first chase round).
    The enumeration is the semi-naive step of the chase: since instances only
    grow and satisfied heads stay satisfied, every trigger that became
    applicable after the previous round must read at least one freshly added
    atom, so restricting the premise to touch ``delta`` loses nothing.
    """
    if delta is None:
        return list(homomorphisms(tgd.body, instance))

    triggers: List[Dict[Term, Term]] = []
    seen: Set[Tuple] = set()
    body = tgd.body
    ordered_variables = sorted(tgd.body_variables(), key=str)
    for position, pattern in enumerate(body):
        for fact in delta:
            seed = _unify_atom(pattern, fact)
            if seed is None:
                continue
            for trigger in homomorphisms(body, instance, seed=seed):
                key = tuple((v.name, trigger[v]) for v in ordered_variables)
                if key in seen:
                    continue
                seen.add(key)
                triggers.append(trigger)
    return triggers


def chase(
    instance: Instance,
    tgds: Sequence[TGD],
    variant: str = "restricted",
    max_steps: int = 10_000,
    max_depth: Optional[int] = None,
    on_budget: str = "return",
    term_factory: Optional[TermFactory] = None,
) -> ChaseResult:
    """Chase ``instance`` with ``tgds``.

    Args:
        instance: the instance ``I`` to chase (it is not modified).
        tgds: the finite set ``Σ``.
        variant: ``"restricted"`` (default) or ``"oblivious"``.
        max_steps: maximum number of chase steps before giving up.
        max_depth: if given, triggers whose premise atoms already sit at this
            depth are not fired (bounded / level-wise chase).
        on_budget: ``"return"`` (default) returns a truncated result with
            ``budget_exhausted=True``; ``"raise"`` raises
            :class:`ChaseBudgetExceeded`.
        term_factory: source of fresh nulls (a private one is created if omitted).

    Returns:
        A :class:`ChaseResult`; ``result.terminated`` tells whether the
        result is an actual chase fixpoint.
    """
    if variant not in ("restricted", "oblivious"):
        raise ValueError(f"unknown chase variant {variant!r}")
    factory = term_factory or TermFactory(null_prefix="chase_n")

    result = ChaseResult(instance=instance.copy())
    for atom in result.instance:
        result.atom_depth[atom] = 0

    fired: Set[Tuple] = set()
    steps_taken = 0

    # Semi-naive trigger enumeration: after the first round only triggers
    # whose premise reads an atom added in the previous round are considered.
    # This is complete because instances only grow (a trigger skipped earlier
    # was either already fired or had a satisfied head, and satisfied heads
    # stay satisfied), and it keeps long chains of firings linear instead of
    # quadratic in the number of steps.
    delta: Optional[Set[Atom]] = None

    while True:
        progressed = False
        added_this_round: Set[Atom] = set()
        for tgd_index, tgd in enumerate(tgds):
            triggers = _triggers_touching(tgd, result.instance, delta)
            for trigger in triggers:
                if steps_taken >= max_steps:
                    result.terminated = False
                    result.budget_exhausted = True
                    if on_budget == "raise":
                        raise ChaseBudgetExceeded(
                            f"chase exceeded {max_steps} steps"
                        )
                    return result

                premise = tuple(atom.apply(trigger) for atom in tgd.body)
                depth = 1 + max(
                    (result.atom_depth.get(atom, 0) for atom in premise), default=0
                )
                if max_depth is not None and depth > max_depth:
                    # Respect the depth budget: this trigger is never fired,
                    # so the result may not be a fixpoint.
                    result.terminated = False
                    result.budget_exhausted = True
                    continue

                if variant == "oblivious":
                    key = _trigger_key(tgd_index, tgd, trigger)
                    if key in fired:
                        continue
                else:
                    if _head_satisfied(tgd, result.instance, trigger):
                        continue

                # Fire the trigger.
                substitution: Dict[Term, Term] = dict(_frontier_binding(tgd, trigger))
                for existential in sorted(tgd.existential_variables(), key=str):
                    substitution[existential] = factory.fresh_null()
                new_atoms = tuple(atom.apply(substitution) for atom in tgd.head)

                added_any = False
                for atom in new_atoms:
                    if result.instance.add(atom):
                        added_any = True
                        added_this_round.add(atom)
                        result.atom_depth[atom] = depth
                        result.produced_by[atom] = len(result.steps)
                    else:
                        result.atom_depth[atom] = min(
                            result.atom_depth.get(atom, depth), depth
                        )

                if variant == "oblivious":
                    fired.add(_trigger_key(tgd_index, tgd, trigger))

                result.steps.append(
                    ChaseStep(
                        tgd_index=tgd_index,
                        tgd=tgd,
                        trigger=dict(trigger),
                        new_atoms=new_atoms,
                        premise_atoms=premise,
                        depth=depth,
                    )
                )
                steps_taken += 1
                if added_any or variant == "oblivious":
                    progressed = True
        if not progressed:
            break
        delta = added_this_round

    # If the depth budget suppressed triggers, ``terminated`` was already set
    # to False above; otherwise we reached a genuine fixpoint.
    if not result.budget_exhausted:
        result.terminated = True
    return result


def chase_query(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    variant: str = "restricted",
    max_steps: int = 10_000,
    max_depth: Optional[int] = None,
    on_budget: str = "return",
) -> Tuple[ChaseResult, Dict[Variable, Constant]]:
    """Chase a CQ: freeze its variables into ``c(x)`` constants and chase.

    Returns the chase result together with the freezing map, so that callers
    can recover the tuple ``c(x̄)`` needed by Lemma 1.
    """
    database, freezing = query.freeze()
    result = chase(
        database,
        tgds,
        variant=variant,
        max_steps=max_steps,
        max_depth=max_depth,
        on_budget=on_budget,
    )
    return result, freezing


def chase_terminates(
    instance: Instance,
    tgds: Sequence[TGD],
    max_steps: int = 10_000,
) -> bool:
    """Return ``True`` iff the restricted chase reaches a fixpoint within budget."""
    return chase(instance, tgds, max_steps=max_steps).terminated
