"""The chase procedure for equality-generating dependencies.

Applying an egd ``φ(x̄) → x_i = x_j`` to an instance identifies the two
images ``h(x_i)`` and ``h(x_j)`` whenever a violating homomorphism ``h``
exists.  If both images are (genuine) constants the chase **fails**; if one
is a constant the null is replaced by it; if both are nulls one replaces the
other.  Frozen query constants ``c(x)`` are treated as nulls, exactly as the
paper prescribes for chasing queries with egds.

The egd chase always terminates (every step strictly decreases the number of
distinct terms) and is unique up to null renaming, so no budgets are needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Atom,
    Constant,
    GroundTerm,
    Instance,
    Null,
    Term,
    Variable,
    is_frozen_constant,
)
from ..dependencies.egd import EGD
from ..dependencies.fd import FunctionalDependency, fds_to_egds
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import homomorphisms


class EGDChaseFailure(RuntimeError):
    """Raised when an egd tries to identify two distinct genuine constants."""


@dataclass
class EGDChaseStep:
    """A single egd chase step: the egd, the violating trigger, the merge."""

    egd_index: int
    egd: EGD
    kept: GroundTerm
    replaced: GroundTerm


@dataclass
class EGDChaseResult:
    """Result of chasing an instance with a set of egds."""

    instance: Instance
    steps: List[EGDChaseStep] = field(default_factory=list)
    #: Composition of all merges applied so far: original term → representative.
    substitution: Dict[GroundTerm, GroundTerm] = field(default_factory=dict)
    failed: bool = False

    def resolve(self, term: GroundTerm) -> GroundTerm:
        """Return the representative of ``term`` after all identifications."""
        current = term
        seen = set()
        while current in self.substitution and current not in seen:
            seen.add(current)
            current = self.substitution[current]
        return current


def _is_rigid(term: GroundTerm) -> bool:
    """Genuine constants cannot be renamed by the egd chase."""
    return isinstance(term, Constant) and not is_frozen_constant(term)


def _choose_representative(left: GroundTerm, right: GroundTerm) -> Tuple[GroundTerm, GroundTerm]:
    """Decide which of two identified terms survives (kept, replaced).

    Preference: genuine constants > frozen constants > nulls; ties are broken
    by string order for determinism.
    """
    def rank(term: GroundTerm) -> int:
        if _is_rigid(term):
            return 0
        if isinstance(term, Constant):
            return 1
        return 2

    left_rank, right_rank = rank(left), rank(right)
    if left_rank < right_rank:
        return left, right
    if right_rank < left_rank:
        return right, left
    return (left, right) if str(left) <= str(right) else (right, left)


def egd_chase(
    instance: Instance,
    egds: Sequence[EGD],
    on_failure: str = "raise",
) -> EGDChaseResult:
    """Chase ``instance`` with ``egds`` until no violation remains.

    Args:
        instance: the instance to chase (not modified).
        egds: the egds to enforce.
        on_failure: ``"raise"`` (default) raises :class:`EGDChaseFailure` when
            two genuine constants must be identified; ``"return"`` returns a
            result with ``failed=True`` instead.
    """
    result = EGDChaseResult(instance=instance.copy())

    changed = True
    while changed:
        changed = False
        for egd_index, egd in enumerate(egds):
            violation: Optional[Dict[Term, Term]] = None
            for mapping in homomorphisms(egd.body, result.instance):
                if mapping[egd.left] != mapping[egd.right]:
                    violation = mapping
                    break
            if violation is None:
                continue

            left_value = violation[egd.left]
            right_value = violation[egd.right]
            if _is_rigid(left_value) and _is_rigid(right_value):
                result.failed = True
                if on_failure == "raise":
                    raise EGDChaseFailure(
                        f"egd {egd} requires identifying distinct constants "
                        f"{left_value} and {right_value}"
                    )
                return result

            kept, replaced = _choose_representative(left_value, right_value)
            result.instance = result.instance.apply({replaced: kept})
            result.substitution[replaced] = kept
            result.steps.append(
                EGDChaseStep(egd_index=egd_index, egd=egd, kept=kept, replaced=replaced)
            )
            changed = True
            break  # restart the scan on the updated instance
    return result


def egd_chase_query(
    query: ConjunctiveQuery,
    egds: Sequence[EGD],
    on_failure: str = "raise",
) -> Tuple[EGDChaseResult, Dict[Variable, Constant]]:
    """Chase a CQ with egds: freeze the query, then run the egd chase.

    Frozen constants are treated as nulls by the chase, per Section 2.
    Returns the chase result plus the freezing map.
    """
    database, freezing = query.freeze()
    result = egd_chase(database, egds, on_failure=on_failure)
    return result, freezing


def fd_chase_query(
    query: ConjunctiveQuery,
    fds: Iterable[FunctionalDependency],
    on_failure: str = "raise",
) -> Tuple[EGDChaseResult, Dict[Variable, Constant]]:
    """Convenience wrapper: chase a CQ with functional dependencies."""
    return egd_chase_query(query, fds_to_egds(fds), on_failure=on_failure)


def chased_query(
    query: ConjunctiveQuery,
    egds: Sequence[EGD],
    name: Optional[str] = None,
) -> ConjunctiveQuery:
    """Return the CQ obtained by chasing ``query`` with ``egds``.

    The chased instance is translated back into a query: frozen constants
    become variables again (their original names where possible) and the
    head follows the identifications made by the chase.  This is the "apply
    the key on the query" operation of Examples 4 and 5.
    """
    result, freezing = egd_chase_query(query, egds)
    reverse: Dict[Term, Variable] = {}
    for variable, constant in freezing.items():
        representative = result.resolve(constant)
        if representative not in reverse:
            if is_frozen_constant(representative):
                reverse[representative] = variable
    # Nulls never appear here (egds introduce no fresh terms) but genuine
    # constants may: keep them as constants.
    counter = 0
    body: List[Atom] = []
    for atom in result.instance.sorted_atoms():
        terms: List[Term] = []
        for term in atom.terms:
            if _is_rigid(term):
                terms.append(term)
                continue
            if term not in reverse:
                reverse[term] = Variable(f"merged_{counter}")
                counter += 1
            terms.append(reverse[term])
        body.append(Atom(atom.predicate, tuple(terms)))

    head: List[Variable] = []
    for variable in query.head:
        representative = result.resolve(freezing[variable])
        image = reverse.get(representative)
        if image is None:
            raise ValueError(
                f"free variable {variable} was identified with a constant; "
                f"the chased query cannot be expressed without constants in the head"
            )
        head.append(image)
    return ConjunctiveQuery(head, body, name=name or f"{query.name}_chased")
