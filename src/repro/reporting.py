"""Plain-text reporting helpers shared by the benchmark harness.

Every benchmark in ``benchmarks/`` regenerates one of the paper's artefacts
(an example, a figure, or the algorithmic content of a theorem) and prints
the rows/series it measured.  This module keeps that output uniform:

* :class:`Table` — a fixed-column ASCII/markdown table with typed cells;
* :class:`Series` — a named sequence of ``(x, y)`` measurements with a
  compact rendering (used for scaling experiments);
* :class:`ExperimentRecord` — one paper-artefact-versus-measured entry, plus
  :func:`render_experiment_records` which produces the markdown blocks that
  ``EXPERIMENTS.md`` is assembled from;
* :class:`BenchSnapshot` — the persisted perf trajectory: each
  ``make bench-*`` run writes one ``BENCH_<name>.json`` with the measured
  series (sizes, growth factors, probe counts, backend ratios), so
  re-anchoring can diff performance across PRs instead of re-running
  history.

Nothing here depends on the rest of the library; the benchmarks import it,
and the tests exercise the formatting directly.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple, Union


Cell = Union[str, int, float, bool, None]


def format_cell(value: Cell, float_digits: int = 3) -> str:
    """Render one table cell: floats get fixed precision, ``None`` a dash."""
    if value is None:
        return "—"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{float_digits}f}"
    return str(value)


class Table:
    """A small fixed-column table renderable as ASCII or markdown."""

    def __init__(self, columns: Sequence[str], title: Optional[str] = None) -> None:
        if not columns:
            raise ValueError("a table needs at least one column")
        self.columns = list(columns)
        self.title = title
        self._rows: List[List[str]] = []

    def add_row(self, *values: Cell, **named: Cell) -> None:
        """Add a row either positionally or by column name (not both)."""
        if values and named:
            raise ValueError("pass the row positionally or by name, not both")
        if named:
            unknown = set(named) - set(self.columns)
            if unknown:
                raise ValueError(f"unknown columns: {sorted(unknown)}")
            values = tuple(named.get(column) for column in self.columns)
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self._rows.append([format_cell(value) for value in values])

    @property
    def rows(self) -> List[List[str]]:
        return [list(row) for row in self._rows]

    def __len__(self) -> int:
        return len(self._rows)

    # ------------------------------------------------------------------
    def _widths(self) -> List[int]:
        widths = [len(column) for column in self.columns]
        for row in self._rows:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        return widths

    def render(self) -> str:
        """ASCII rendering with aligned columns (used by ``pytest -s`` output)."""
        widths = self._widths()
        lines: List[str] = []
        if self.title:
            lines.append(self.title)
        header = "  ".join(
            column.ljust(width) for column, width in zip(self.columns, widths)
        )
        lines.append(header)
        lines.append("  ".join("-" * width for width in widths))
        for row in self._rows:
            lines.append("  ".join(cell.ljust(width) for cell, width in zip(row, widths)))
        return "\n".join(lines)

    def to_markdown(self) -> str:
        """GitHub-flavoured markdown rendering (used to assemble EXPERIMENTS.md)."""
        lines: List[str] = []
        if self.title:
            lines.append(f"**{self.title}**")
            lines.append("")
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self._rows:
            lines.append("| " + " | ".join(row) + " |")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


@dataclass
class Series:
    """A named series of ``(x, y)`` measurements (scaling experiments)."""

    name: str
    points: List[Tuple[Cell, Cell]] = field(default_factory=list)

    def add(self, x: Cell, y: Cell) -> None:
        self.points.append((x, y))

    def xs(self) -> List[Cell]:
        return [x for x, _ in self.points]

    def ys(self) -> List[Cell]:
        return [y for _, y in self.points]

    def render(self) -> str:
        body = ", ".join(
            f"{format_cell(x)}→{format_cell(y)}" for x, y in self.points
        )
        return f"{self.name}: {body}"

    def is_monotone_nondecreasing(self) -> bool:
        """``True`` iff the numeric ``y`` values never decrease (trend check)."""
        numeric = [y for _, y in self.points if isinstance(y, (int, float))]
        return all(later >= earlier for earlier, later in zip(numeric, numeric[1:]))

    def __str__(self) -> str:
        return self.render()


@dataclass
class ExperimentRecord:
    """One paper artefact together with what the harness measured."""

    experiment_id: str
    paper_artifact: str
    paper_claim: str
    measured: str
    matches: bool
    bench_target: str

    def to_markdown(self) -> str:
        status = "reproduced" if self.matches else "NOT reproduced"
        return "\n".join(
            [
                f"### {self.experiment_id} — {self.paper_artifact}",
                "",
                f"* **Paper claim:** {self.paper_claim}",
                f"* **Measured:** {self.measured}",
                f"* **Status:** {status}",
                f"* **Bench target:** `{self.bench_target}`",
            ]
        )


def render_experiment_records(records: Iterable[ExperimentRecord]) -> str:
    """Render a sequence of experiment records as markdown sections."""
    return "\n\n".join(record.to_markdown() for record in records)


#: Environment override for where :class:`BenchSnapshot` files land.  Also
#: acts as the opt-in under ``BENCH_SMOKE``: smoke runs (the tier-1 suite
#: importing the benchmark modules) never write snapshots unless a
#: directory is given explicitly.
SNAPSHOT_DIR_ENV = "BENCH_SNAPSHOT_DIR"


class BenchSnapshot:
    """One benchmark run's measurements, persisted as ``BENCH_<name>.json``.

    Usage from a benchmark module::

        snapshot = BenchSnapshot("yannakakis_scaling")
        snapshot.record("sizes", sizes)
        snapshot.record("speedup", speedup)
        snapshot.add_row("curve", {"size": 500, "hash_time": 0.01})
        path = snapshot.write()          # None when skipped (smoke mode)

    The JSON is written with sorted keys and a trailing newline so reruns
    with identical measurements produce byte-identical files.  ``write``
    resolves the target directory as: explicit argument >
    ``BENCH_SNAPSHOT_DIR`` environment variable > current directory; under
    ``BENCH_SMOKE`` it is a no-op unless ``BENCH_SNAPSHOT_DIR`` is set
    (tier-1 executes the benchmark modules on tiny inputs — those
    measurements are noise and must not clobber committed snapshots).
    """

    def __init__(self, name: str) -> None:
        if not name or any(c in name for c in "/\\"):
            raise ValueError(f"invalid snapshot name {name!r}")
        self.name = name
        self.payload: Dict[str, Any] = {"name": name}

    def record(self, key: str, value: Any) -> None:
        """Set one top-level measurement (a scalar, list or mapping)."""
        self.payload[key] = value

    def add_row(self, series: str, row: Dict[str, Any]) -> None:
        """Append one row to a named series (created on first use)."""
        self.payload.setdefault(series, []).append(dict(row))

    def filename(self) -> str:
        return f"BENCH_{self.name}.json"

    def write(self, directory: Optional[Union[str, Path]] = None) -> Optional[Path]:
        """Write the snapshot; return its path, or ``None`` when skipped."""
        env_dir = os.environ.get(SNAPSHOT_DIR_ENV, "").strip()
        if directory is None and env_dir:
            directory = env_dir
        smoke = os.environ.get("BENCH_SMOKE", "").strip().lower() not in (
            "",
            "0",
            "false",
            "no",
        )
        if smoke and directory is None:
            return None
        target = Path(directory) if directory is not None else Path.cwd()
        target.mkdir(parents=True, exist_ok=True)
        path = target / self.filename()
        rendered = json.dumps(self.payload, indent=2, sort_keys=True, default=str)
        path.write_text(rendered + "\n")
        return path
