"""Relational schemas: named collections of predicates with fixed arities."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional

from .atoms import Atom, Predicate


class Schema:
    """A relational schema ``σ``: a finite set of relation symbols.

    The schema object is deliberately lightweight — most algorithms in the
    library only need it to validate inputs, to enumerate predicates (e.g.
    when building trivial acyclic approximations, Section 8.2) and to report
    the maximum arity (the parameter ``a_{q,Σ}`` of Propositions 17/19).
    """

    def __init__(self, predicates: Iterable[Predicate] = ()) -> None:
        self._predicates: Dict[str, Predicate] = {}
        for predicate in predicates:
            self.add(predicate)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add(self, predicate: Predicate) -> Predicate:
        """Add ``predicate`` to the schema.

        Raises:
            ValueError: if a predicate with the same name but different arity
                is already present.
        """
        existing = self._predicates.get(predicate.name)
        if existing is not None and existing.arity != predicate.arity:
            raise ValueError(
                f"predicate {predicate.name} already declared with arity "
                f"{existing.arity}, cannot redeclare with arity {predicate.arity}"
            )
        self._predicates[predicate.name] = predicate
        return predicate

    def predicate(self, name: str, arity: Optional[int] = None) -> Predicate:
        """Return the predicate called ``name``, declaring it if needed.

        If ``arity`` is given and the predicate is unknown, it is declared on
        the fly; if it is known, the arity is checked.
        """
        existing = self._predicates.get(name)
        if existing is not None:
            if arity is not None and existing.arity != arity:
                raise ValueError(
                    f"predicate {name} has arity {existing.arity}, not {arity}"
                )
            return existing
        if arity is None:
            raise KeyError(f"unknown predicate {name!r} (no arity supplied)")
        return self.add(Predicate(name, arity))

    @classmethod
    def from_atoms(cls, atoms: Iterable[Atom]) -> "Schema":
        """Build the schema induced by a collection of atoms."""
        schema = cls()
        for atom in atoms:
            schema.add(atom.predicate)
        return schema

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    def __contains__(self, item: object) -> bool:
        if isinstance(item, Predicate):
            return self._predicates.get(item.name) == item
        if isinstance(item, str):
            return item in self._predicates
        return False

    def __iter__(self) -> Iterator[Predicate]:
        return iter(sorted(self._predicates.values()))

    def __len__(self) -> int:
        return len(self._predicates)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._predicates == other._predicates

    def predicates(self) -> List[Predicate]:
        """Return the predicates of the schema in a deterministic order."""
        return sorted(self._predicates.values())

    @property
    def max_arity(self) -> int:
        """Return the maximum arity over the schema (0 for an empty schema)."""
        if not self._predicates:
            return 0
        return max(p.arity for p in self._predicates.values())

    def validate_atom(self, atom: Atom) -> None:
        """Check that ``atom`` is well-formed with respect to this schema.

        Raises:
            ValueError: if the atom's predicate clashes with the schema.
        """
        declared = self._predicates.get(atom.predicate.name)
        if declared is None:
            raise ValueError(f"atom {atom} uses undeclared predicate")
        if declared.arity != atom.predicate.arity:
            raise ValueError(
                f"atom {atom} has arity {atom.predicate.arity}, schema "
                f"declares {declared.arity}"
            )

    def union(self, other: "Schema") -> "Schema":
        """Return the union of two schemas (arities must agree)."""
        result = Schema(self.predicates())
        for predicate in other.predicates():
            result.add(predicate)
        return result

    def __str__(self) -> str:
        return "{" + ", ".join(str(p) for p in self.predicates()) + "}"

    def __repr__(self) -> str:
        return f"Schema({self.predicates()!r})"
