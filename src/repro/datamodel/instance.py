"""Instances and databases: sets of ground atoms over constants and nulls.

An *instance* is a (here: finite, since we materialise it) set of atoms whose
terms are constants or labelled nulls; a *database* is a finite instance
containing constants only (the paper allows nulls in databases obtained from
queries — so we do not forbid them, we only track them).  Instances are the
inputs/outputs of the chase and the structures over which queries are
evaluated.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Set, Tuple

from .atoms import Atom, Predicate
from .terms import Constant, GroundTerm, Null, Term, Variable
from .schema import Schema


#: Shared empty result for index lookups that find nothing (never mutated).
_EMPTY_ATOM_SET: FrozenSet[Atom] = frozenset()


class Instance:
    """A finite instance: a set of ground atoms with per-predicate indexes.

    The class behaves like a set of :class:`Atom` (iteration, ``in``,
    ``len``) but also maintains an index from predicates to atoms and from
    terms to atoms, which the homomorphism search and the chase rely on.

    Every *effective* mutation (an ``add`` of a new atom, a ``discard`` of a
    present one) advances :attr:`mutation_epoch` and is appended to a
    bounded journal, so epoch-aware caches (:class:`repro.evaluation.batch
    .ScanCache`, :class:`repro.evaluation.operators.Statistics`) can detect
    staleness in O(1) and absorb the exact delta via :meth:`journal_since`
    instead of rebuilding from scratch.
    """

    #: Retained journal entries.  The journal is trimmed in chunks once it
    #: exceeds twice this limit; a cache that fell further behind than the
    #: retained window learns so via ``journal_since() is None`` and
    #: rebuilds wholesale.
    JOURNAL_LIMIT = 4096

    def __init__(self, atoms: Iterable[Atom] = ()) -> None:
        self._atoms: Set[Atom] = set()
        self._by_predicate: Dict[Predicate, Set[Atom]] = defaultdict(set)
        self._by_term: Dict[GroundTerm, Set[Atom]] = defaultdict(set)
        self._mutation_epoch = 0
        self._journal: List[Tuple[bool, Atom]] = []
        self._journal_base = 0
        self._content_token: Optional[object] = None
        for atom in atoms:
            self.add(atom)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    @property
    def mutation_epoch(self) -> int:
        """Monotone counter of effective mutations (adds and removals)."""
        return self._mutation_epoch

    def content_token(self) -> object:
        """An identity token shared by fact-identical instances (O(1)).

        The token is refreshed lazily after every mutation and propagated by
        :meth:`copy`, so ``a.content_token() is b.content_token()`` implies
        ``a`` and ``b`` hold exactly the same atoms — the O(1) test the scan
        layer uses to accept fact-identical copies.  (The converse does not
        hold: independently built equal instances carry distinct tokens.)
        """
        token = self._content_token
        if token is None:
            token = object()
            self._content_token = token
        return token

    def _record_mutation(self, added: bool, atom: Atom) -> None:
        self._mutation_epoch += 1
        self._content_token = None
        journal = self._journal
        journal.append((added, atom))
        if len(journal) > 2 * self.JOURNAL_LIMIT:
            drop = len(journal) - self.JOURNAL_LIMIT
            del journal[:drop]
            self._journal_base += drop

    def journal_since(self, epoch: int) -> Optional[List[Tuple[bool, Atom]]]:
        """The effective mutations after ``epoch``, oldest first.

        Each entry is ``(added, atom)`` with ``added`` true for an insertion
        and false for a removal; entries are *effective* (an ``add`` of a
        present atom or a ``discard`` of an absent one never appears), so
        consecutive entries for one atom always alternate.  Returns ``None``
        when the requested window was trimmed away (or ``epoch`` is ahead of
        this instance) — the caller must then resynchronise wholesale.
        """
        if epoch > self._mutation_epoch:
            return None
        start = epoch - self._journal_base
        if start < 0:
            return None
        return self._journal[start:]

    def add(self, atom: Atom) -> bool:
        """Add ``atom``; return ``True`` iff it was not already present.

        Raises:
            ValueError: if the atom contains variables (instances are ground).
        """
        if not atom.is_ground():
            raise ValueError(f"instances contain ground atoms only, got {atom}")
        if atom in self._atoms:
            return False
        self._atoms.add(atom)
        self._by_predicate[atom.predicate].add(atom)
        for term in atom.terms:
            self._by_term[term].add(atom)
        self._record_mutation(True, atom)
        return True

    def add_all(self, atoms: Iterable[Atom]) -> int:
        """Add every atom in ``atoms``; return how many were new."""
        return sum(1 for atom in atoms if self.add(atom))

    def discard(self, atom: Atom) -> bool:
        """Remove ``atom`` if present; return ``True`` iff it was present."""
        if atom not in self._atoms:
            return False
        self._atoms.discard(atom)
        self._by_predicate[atom.predicate].discard(atom)
        for term in set(atom.terms):
            self._by_term[term].discard(atom)
            if not self._by_term[term]:
                del self._by_term[term]
        if not self._by_predicate[atom.predicate]:
            del self._by_predicate[atom.predicate]
        self._record_mutation(False, atom)
        return True

    # ------------------------------------------------------------------
    # Set-like behaviour
    # ------------------------------------------------------------------
    def __contains__(self, atom: object) -> bool:
        return atom in self._atoms

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._atoms)

    def __len__(self) -> int:
        return len(self._atoms)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Instance):
            return self._atoms == other._atoms
        if isinstance(other, (set, frozenset)):
            return self._atoms == other
        return NotImplemented

    def __hash__(self) -> int:  # pragma: no cover - rarely hashed
        return hash(frozenset(self._atoms))

    def atoms(self) -> FrozenSet[Atom]:
        """Return the atoms of the instance as a frozen set."""
        return frozenset(self._atoms)

    def sorted_atoms(self) -> List[Atom]:
        """Return the atoms sorted by string representation (deterministic)."""
        return sorted(self._atoms, key=str)

    def copy(self) -> "Instance":
        """Return a shallow copy of the instance.

        The indexes are copied set-by-set instead of being re-derived atom by
        atom — the chase snapshots its input with ``copy()`` on every run, so
        this path is hot.
        """
        clone = self.__class__.__new__(self.__class__)
        clone._atoms = set(self._atoms)
        clone._by_predicate = defaultdict(set)
        for predicate, atoms in self._by_predicate.items():
            clone._by_predicate[predicate] = set(atoms)
        clone._by_term = defaultdict(set)
        for term, atoms in self._by_term.items():
            clone._by_term[term] = set(atoms)
        clone._mutation_epoch = self._mutation_epoch
        clone._content_token = self.content_token()
        clone._journal = []
        clone._journal_base = self._mutation_epoch
        return clone

    # ------------------------------------------------------------------
    # Indexed access
    # ------------------------------------------------------------------
    def atoms_with_predicate(self, predicate: Predicate) -> Set[Atom]:
        """Return the atoms over ``predicate``.

        The returned set is the live index of the instance — callers must not
        mutate it.  (Returning it directly, rather than a defensive copy,
        keeps the homomorphism search and the chase linear in the number of
        matching atoms rather than in the size of the whole relation.)
        """
        return self._by_predicate.get(predicate, _EMPTY_ATOM_SET)

    def atoms_with_predicate_name(self, name: str) -> FrozenSet[Atom]:
        """Return the atoms whose predicate is called ``name``."""
        result: Set[Atom] = set()
        for predicate, atoms in self._by_predicate.items():
            if predicate.name == name:
                result.update(atoms)
        return frozenset(result)

    def atoms_with_term(self, term: GroundTerm) -> Set[Atom]:
        """Return the atoms in which ``term`` occurs.

        As with :meth:`atoms_with_predicate`, the live index is returned and
        must not be mutated by callers.
        """
        return self._by_term.get(term, _EMPTY_ATOM_SET)

    def predicates(self) -> Set[Predicate]:
        """Return the predicates that occur in the instance."""
        return set(self._by_predicate)

    def schema(self) -> Schema:
        """Return the schema induced by the instance."""
        return Schema(self._by_predicate.keys())

    # ------------------------------------------------------------------
    # Domains
    # ------------------------------------------------------------------
    def active_domain(self) -> Set[GroundTerm]:
        """Return the set of terms (constants and nulls) occurring in the instance."""
        return set(self._by_term)

    def constants(self) -> Set[Constant]:
        """Return the constants occurring in the instance."""
        return {t for t in self._by_term if isinstance(t, Constant)}

    def nulls(self) -> Set[Null]:
        """Return the labelled nulls occurring in the instance."""
        return {t for t in self._by_term if isinstance(t, Null)}

    def is_database(self) -> bool:
        """Return ``True`` iff the instance is null-free (a plain database)."""
        return not self.nulls()

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def apply(self, mapping: Mapping[Term, Term]) -> "Instance":
        """Return the instance obtained by substituting terms via ``mapping``."""
        return Instance(atom.apply(mapping) for atom in self._atoms)

    def union(self, other: "Instance") -> "Instance":
        """Return the union of two instances."""
        result = self.copy()
        result.add_all(other)
        return result

    def restrict_to_terms(self, terms: Iterable[GroundTerm]) -> "Instance":
        """Return the restriction of the instance to atoms over ``terms`` only.

        This is the ``I(a1, ..., al)`` notation used in the existential
        1-cover game (Section 7): keep exactly the atoms all of whose terms
        belong to the given set.
        """
        allowed = set(terms)
        return Instance(
            atom for atom in self._atoms if all(t in allowed for t in atom.terms)
        )

    def restrict_to_predicates(self, predicates: Iterable[Predicate]) -> "Instance":
        """Return the sub-instance over the given predicates."""
        wanted = set(predicates)
        return Instance(
            atom for atom in self._atoms if atom.predicate in wanted
        )

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        return "{" + ", ".join(str(a) for a in self.sorted_atoms()) + "}"

    def __repr__(self) -> str:
        return f"Instance({len(self._atoms)} atoms)"


class Database(Instance):
    """A finite instance intended to be null-free.

    The distinction is purely documentary (the paper's databases may be
    treated as instances everywhere); we keep a subclass so that signatures
    such as ``SemAcEval(D, q, Σ)`` read like the paper.
    """

    def __repr__(self) -> str:
        return f"Database({len(self)} atoms)"


def instance_from_tuples(
    schema: Schema,
    tuples: Mapping[str, Iterable[Tuple[object, ...]]],
) -> Database:
    """Build a database from plain Python tuples of constant *values*.

    Example:
        >>> schema = Schema([Predicate("R", 2)])
        >>> db = instance_from_tuples(schema, {"R": [(1, 2), (2, 3)]})
        >>> len(db)
        2
    """
    database = Database()
    for name, rows in tuples.items():
        predicate = schema.predicate(name)
        for row in rows:
            if len(row) != predicate.arity:
                raise ValueError(
                    f"tuple {row!r} has {len(row)} fields, predicate "
                    f"{predicate} expects {predicate.arity}"
                )
            database.add(Atom(predicate, tuple(Constant(value) for value in row)))
    return database
