"""Relational data model: terms, atoms, schemas, instances and databases."""

from .terms import (
    Constant,
    GroundTerm,
    Null,
    Term,
    TermFactory,
    Variable,
    constants_of,
    freeze_variable,
    fresh_null,
    fresh_variable,
    is_frozen_constant,
    is_ground,
    nulls_of,
    unfreeze_constant,
    variables_of,
)
from .atoms import (
    Atom,
    Predicate,
    atoms_constants,
    atoms_nulls,
    atoms_predicates,
    atoms_terms,
    atoms_variables,
)
from .schema import Schema
from .instance import Database, Instance, instance_from_tuples

__all__ = [
    "Atom",
    "Constant",
    "Database",
    "GroundTerm",
    "Instance",
    "Null",
    "Predicate",
    "Schema",
    "Term",
    "TermFactory",
    "Variable",
    "atoms_constants",
    "atoms_nulls",
    "atoms_predicates",
    "atoms_terms",
    "atoms_variables",
    "constants_of",
    "freeze_variable",
    "fresh_null",
    "fresh_variable",
    "instance_from_tuples",
    "is_frozen_constant",
    "is_ground",
    "nulls_of",
    "unfreeze_constant",
    "variables_of",
]
