"""Terms of the relational model: constants, labelled nulls and variables.

The paper works with three countably infinite, pairwise disjoint sets of
terms (Section 2):

* ``C`` — constants, which appear in databases and queries and are rigid
  (homomorphisms are the identity on them);
* ``N`` — labelled nulls, which appear in (possibly infinite) instances and
  behave like existentially quantified placeholders;
* ``V`` — variables, which appear in queries and dependencies.

This module provides immutable, hashable classes for the three kinds of
terms, together with small factories that generate fresh nulls/variables and
the ``freeze``/``unfreeze`` helpers used when turning a query into its
canonical database (the ``c(x)`` constants of Lemma 1).
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass
from typing import Iterable, List, Set, Union


@dataclass(frozen=True, order=True)
class Constant:
    """A constant from the countably infinite set ``C``.

    Constants are rigid: every homomorphism maps a constant to itself.  The
    ``name`` may be any hashable printable value; two constants are equal iff
    their names are equal.
    """

    name: object

    def __str__(self) -> str:
        return str(self.name)

    def __repr__(self) -> str:
        return f"Constant({self.name!r})"

    @property
    def is_constant(self) -> bool:
        return True

    @property
    def is_null(self) -> bool:
        return False

    @property
    def is_variable(self) -> bool:
        return False


@dataclass(frozen=True, order=True)
class Null:
    """A labelled null from the countably infinite set ``N``.

    Nulls are produced by the chase when existential quantifiers are
    satisfied with fresh witnesses.  Two nulls are equal iff their labels are
    equal; fresh nulls should be created through :class:`TermFactory` (or
    :func:`fresh_null`) to guarantee global uniqueness.
    """

    label: object

    def __str__(self) -> str:
        return f"_:{self.label}"

    def __repr__(self) -> str:
        return f"Null({self.label!r})"

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_null(self) -> bool:
        return True

    @property
    def is_variable(self) -> bool:
        return False


@dataclass(frozen=True, order=True)
class Variable:
    """A variable from the countably infinite set ``V`` (queries and tgds)."""

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Variable({self.name!r})"

    @property
    def is_constant(self) -> bool:
        return False

    @property
    def is_null(self) -> bool:
        return False

    @property
    def is_variable(self) -> bool:
        return True


#: Any term of the relational model.
Term = Union[Constant, Null, Variable]

#: Terms that may appear in an instance (no variables).
GroundTerm = Union[Constant, Null]


class TermFactory:
    """Thread-safe factory of globally fresh nulls and variables.

    The chase and the rewriting algorithms both need a supply of terms that
    are guaranteed not to clash with anything already present; routing every
    fresh term through a single factory keeps that invariant simple.
    """

    def __init__(self, null_prefix: str = "n", variable_prefix: str = "v") -> None:
        self._null_prefix = null_prefix
        self._variable_prefix = variable_prefix
        self._null_counter = itertools.count()
        self._variable_counter = itertools.count()
        self._lock = threading.Lock()

    def fresh_null(self) -> Null:
        """Return a null that has never been returned by this factory."""
        with self._lock:
            index = next(self._null_counter)
        return Null(f"{self._null_prefix}{index}")

    def fresh_variable(self) -> Variable:
        """Return a variable that has never been returned by this factory."""
        with self._lock:
            index = next(self._variable_counter)
        return Variable(f"{self._variable_prefix}{index}")

    def fresh_nulls(self, count: int) -> List[Null]:
        """Return ``count`` distinct fresh nulls."""
        return [self.fresh_null() for _ in range(count)]

    def fresh_variables(self, count: int) -> List[Variable]:
        """Return ``count`` distinct fresh variables."""
        return [self.fresh_variable() for _ in range(count)]


_GLOBAL_FACTORY = TermFactory(null_prefix="gn", variable_prefix="gv")


def fresh_null() -> Null:
    """Return a fresh null from the module-level factory."""
    return _GLOBAL_FACTORY.fresh_null()


def fresh_variable() -> Variable:
    """Return a fresh variable from the module-level factory."""
    return _GLOBAL_FACTORY.fresh_variable()


def freeze_variable(variable: Variable) -> Constant:
    """Return the canonical constant ``c(x)`` associated with ``variable``.

    Freezing is how a CQ is turned into its canonical database (Lemma 1):
    each variable ``x`` is replaced by a distinguished constant ``c(x)``.
    The encoding is injective so that freezing can be undone with
    :func:`unfreeze_constant`.
    """
    return Constant(("__frozen__", variable.name))


def unfreeze_constant(constant: Constant) -> Variable:
    """Inverse of :func:`freeze_variable`.

    Raises:
        ValueError: if ``constant`` is not a frozen variable.
    """
    if not is_frozen_constant(constant):
        raise ValueError(f"{constant!r} is not a frozen variable")
    return Variable(constant.name[1])


def is_frozen_constant(term: Term) -> bool:
    """Return ``True`` iff ``term`` is a constant produced by freezing."""
    return (
        isinstance(term, Constant)
        and isinstance(term.name, tuple)
        and len(term.name) == 2
        and term.name[0] == "__frozen__"
    )


def constants_of(terms: Iterable[Term]) -> Set[Constant]:
    """Return the set of constants occurring in ``terms``."""
    return {t for t in terms if isinstance(t, Constant)}


def nulls_of(terms: Iterable[Term]) -> Set[Null]:
    """Return the set of nulls occurring in ``terms``."""
    return {t for t in terms if isinstance(t, Null)}


def variables_of(terms: Iterable[Term]) -> Set[Variable]:
    """Return the set of variables occurring in ``terms``."""
    return {t for t in terms if isinstance(t, Variable)}


def is_ground(term: Term) -> bool:
    """Return ``True`` iff ``term`` may occur in an instance (not a variable)."""
    return not isinstance(term, Variable)
