"""Relational atoms ``R(t1, ..., tn)`` over constants, nulls and variables."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Set, Tuple

from .terms import Constant, Null, Term, Variable


@dataclass(frozen=True, order=True)
class Predicate:
    """A relation symbol with a fixed arity."""

    name: str
    arity: int

    def __post_init__(self) -> None:
        if self.arity < 0:
            raise ValueError(f"arity must be non-negative, got {self.arity}")

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"

    def __call__(self, *terms: Term) -> "Atom":
        """Convenience constructor: ``R(x, y)`` builds the atom directly."""
        return Atom(self, tuple(terms))


@dataclass(frozen=True, order=True)
class Atom:
    """An atom ``R(t1, ..., tn)``.

    Atoms are immutable and hashable so that instances can be plain Python
    sets of atoms, exactly as in the paper.
    """

    predicate: Predicate
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if len(self.terms) != self.predicate.arity:
            raise ValueError(
                f"predicate {self.predicate} expects {self.predicate.arity} "
                f"terms, got {len(self.terms)}"
            )

    # ------------------------------------------------------------------
    # Inspection helpers
    # ------------------------------------------------------------------
    @property
    def arity(self) -> int:
        return self.predicate.arity

    @property
    def relation_name(self) -> str:
        return self.predicate.name

    def variables(self) -> Set[Variable]:
        """Return the set of variables occurring in the atom."""
        return {t for t in self.terms if isinstance(t, Variable)}

    def constants(self) -> Set[Constant]:
        """Return the set of constants occurring in the atom."""
        return {t for t in self.terms if isinstance(t, Constant)}

    def nulls(self) -> Set[Null]:
        """Return the set of nulls occurring in the atom."""
        return {t for t in self.terms if isinstance(t, Null)}

    def terms_set(self) -> Set[Term]:
        """Return the set of all terms occurring in the atom."""
        return set(self.terms)

    def is_ground(self) -> bool:
        """Return ``True`` iff the atom mentions no variables."""
        return not any(isinstance(t, Variable) for t in self.terms)

    def positions_of(self, term: Term) -> Tuple[int, ...]:
        """Return the (0-based) positions at which ``term`` occurs."""
        return tuple(i for i, t in enumerate(self.terms) if t == term)

    # ------------------------------------------------------------------
    # Transformation helpers
    # ------------------------------------------------------------------
    def apply(self, mapping: Mapping[Term, Term]) -> "Atom":
        """Return the atom obtained by substituting terms according to ``mapping``.

        Terms not mentioned in ``mapping`` are left untouched.
        """
        return Atom(self.predicate, tuple(mapping.get(t, t) for t in self.terms))

    def map_terms(self, function: Callable[[Term], Term]) -> "Atom":
        """Return the atom obtained by applying ``function`` to every term."""
        return Atom(self.predicate, tuple(function(t) for t in self.terms))

    def rename_predicate(self, predicate: Predicate) -> "Atom":
        """Return a copy of the atom over ``predicate`` (same terms)."""
        return Atom(predicate, self.terms)

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        inner = ", ".join(str(t) for t in self.terms)
        return f"{self.predicate.name}({inner})"

    def __repr__(self) -> str:
        return f"Atom({self.predicate.name}, {self.terms!r})"


def atoms_terms(atoms: Iterable[Atom]) -> Set[Term]:
    """Return the set of all terms occurring in ``atoms``."""
    result: Set[Term] = set()
    for atom in atoms:
        result.update(atom.terms)
    return result


def atoms_variables(atoms: Iterable[Atom]) -> Set[Variable]:
    """Return the set of all variables occurring in ``atoms``."""
    result: Set[Variable] = set()
    for atom in atoms:
        result.update(atom.variables())
    return result


def atoms_constants(atoms: Iterable[Atom]) -> Set[Constant]:
    """Return the set of all constants occurring in ``atoms``."""
    result: Set[Constant] = set()
    for atom in atoms:
        result.update(atom.constants())
    return result


def atoms_nulls(atoms: Iterable[Atom]) -> Set[Null]:
    """Return the set of all nulls occurring in ``atoms``."""
    result: Set[Null] = set()
    for atom in atoms:
        result.update(atom.nulls())
    return result


def atoms_predicates(atoms: Iterable[Atom]) -> Set[Predicate]:
    """Return the set of predicates occurring in ``atoms``."""
    return {atom.predicate for atom in atoms}
