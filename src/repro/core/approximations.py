"""Acyclic approximations of CQs under constraints (Section 8.2).

When a CQ ``q`` is not semantically acyclic under ``Σ``, one can still look
for an *acyclic approximation*: an acyclic CQ ``q'`` with ``q' ⊆_Σ q`` that
is maximal with that property (no acyclic ``q''`` satisfies
``q' ⊊_Σ q'' ⊆_Σ q``).  Evaluating an approximation gives sound ("quick")
answers to ``q`` in fixed-parameter tractable time; when ``q`` *is*
semantically acyclic the approximation is equivalent to ``q``.

The search space mirrors the small-query properties (Propositions 8/15): it
is populated by the candidate generators of :mod:`repro.core.candidates`
plus the trivial one-variable queries that Section 8.2 uses to show
approximations always exist.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Set, Union

from ..chase.egd_chase import egd_chase_query
from ..chase.tgd_chase import chase_query
from ..containment.constrained import ContainmentOutcome, contained_under_egds, contained_under_tgds
from ..datamodel import Atom, Predicate, Variable
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from .candidates import fast_candidates
from .semantic_acyclicity import DEFAULT_SEMAC_CONFIG, SemAcConfig


@dataclass
class ApproximationResult:
    """Maximally contained acyclic CQs of a query under constraints."""

    query: ConjunctiveQuery
    #: The maximal elements found (incomparable under ⊆_Σ).
    approximations: List[ConjunctiveQuery] = field(default_factory=list)
    #: ``True`` when some approximation is equivalent to the query under Σ
    #: (i.e. the query is semantically acyclic and the approximation exact).
    exact: bool = False
    #: Number of contained acyclic candidates considered.
    candidates_considered: int = 0


def trivial_acyclic_queries(query: ConjunctiveQuery) -> List[ConjunctiveQuery]:
    """The single-variable queries of Section 8.2 (one per predicate of ``q``).

    For a Boolean query, ``∃x R(x, ..., x)`` is contained in nothing but
    itself in general — the paper uses the conjunction over *all* predicates
    of the schema, which is what we return (a single query with one atom per
    predicate, all positions filled with one shared variable).  Non-Boolean
    queries have no trivial approximation of this form, so an empty list is
    returned for them.
    """
    if query.head:
        return []
    x = Variable("x_trivial")
    atoms = [
        Atom(predicate, tuple(x for _ in range(predicate.arity)))
        for predicate in sorted(query.predicates())
    ]
    return [ConjunctiveQuery((), atoms, name=f"{query.name}_trivial")]


def _contained(
    candidate: ConjunctiveQuery,
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    egds: Sequence[EGD],
    config: SemAcConfig,
) -> bool:
    if tgds:
        outcome = contained_under_tgds(candidate, query, tgds, config.containment_config())
        return outcome is ContainmentOutcome.TRUE
    if egds:
        return contained_under_egds(candidate, query, egds)
    from ..containment.cq_containment import cq_contained_in

    return cq_contained_in(candidate, query)


def acyclic_approximations(
    query: ConjunctiveQuery,
    constraints: Sequence[Union[TGD, EGD]] = (),
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
    max_candidates: int = 5_000,
) -> ApproximationResult:
    """Compute maximally contained acyclic CQs of ``query`` under ``constraints``."""
    tgds: List[TGD] = [c for c in constraints if isinstance(c, TGD)]
    egds: List[EGD] = [c for c in constraints if isinstance(c, EGD)]
    if tgds and egds:
        raise ValueError("mixing tgds and egds in one approximation call is not supported")

    result = ApproximationResult(query=query)

    # Build the candidate pool: chase-derived candidates + trivial queries +
    # acyclic subqueries are all produced by fast_candidates / trivial list.
    if tgds:
        chase_result, freezing = chase_query(
            query, tgds, max_steps=config.chase_max_steps, max_depth=config.chase_max_depth
        )
        chase_instance = chase_result.instance
        answer = tuple(freezing[v] for v in query.head)
    elif egds:
        egd_result, freezing = egd_chase_query(query, egds, on_failure="return")
        chase_instance = egd_result.instance
        answer = tuple(egd_result.resolve(freezing[v]) for v in query.head)
    else:
        chase_instance = query.canonical_database()
        _, freezing = query.freeze()
        answer = tuple(freezing[v] for v in query.head)

    size_bound = max(2 * len(query), 2)
    contained_candidates: List[ConjunctiveQuery] = []
    seen: Set[ConjunctiveQuery] = set()

    def consider(candidate: ConjunctiveQuery) -> None:
        if candidate in seen:
            return
        seen.add(candidate)
        if not candidate.is_acyclic():
            return
        if _contained(candidate, query, tgds, egds, config):
            contained_candidates.append(candidate)

    for candidate in fast_candidates(query, chase_instance, answer, size_bound):
        if result.candidates_considered >= max_candidates:
            break
        result.candidates_considered += 1
        consider(candidate)
    for candidate in trivial_acyclic_queries(query):
        result.candidates_considered += 1
        consider(candidate)

    # Keep the maximal elements under ⊆_Σ.
    maximal: List[ConjunctiveQuery] = []
    for candidate in contained_candidates:
        dominated = False
        for other in contained_candidates:
            if other is candidate:
                continue
            if _contained(candidate, other, tgds, egds, config) and not _contained(
                other, candidate, tgds, egds, config
            ):
                dominated = True
                break
        if not dominated and candidate not in maximal:
            maximal.append(candidate)

    # Deduplicate Σ-equivalent maximal elements.
    unique: List[ConjunctiveQuery] = []
    for candidate in maximal:
        if not any(
            _contained(candidate, kept, tgds, egds, config)
            and _contained(kept, candidate, tgds, egds, config)
            for kept in unique
        ):
            unique.append(candidate)

    result.approximations = unique
    result.exact = any(
        _contained(query, candidate, tgds, egds, config) for candidate in unique
    )
    return result
