"""Candidate acyclic reformulations for the SemAc decision procedures.

The paper's procedures (Theorems 10/16/21) *guess* an acyclic CQ ``q'`` of
bounded size and verify ``q ≡_Σ q'``.  A deterministic implementation must
enumerate candidates; this module provides the candidate generators, layered
from cheap-and-targeted to exhaustive:

* **subqueries** of ``q`` — reformulations that drop atoms implied by the
  constraints (Example 1);
* **quotients** of ``q`` — homomorphic images of ``q`` inside (a bounded
  chase of) ``q`` itself, covering plain minimisation;
* **subqueries of rewriting disjuncts** — for UCQ-rewritable classes the
  witness of Proposition 15 lives inside a disjunct of the rewriting of
  ``q``;
* **acyclic sub-instances of the chase** that admit a head-preserving
  homomorphism from ``q`` — the "inside the chase" witnesses;
* **compact Lemma 9 extractions** from any acyclic instance encountered;
* an **exhaustive anti-unification enumeration** over sub-instances of the
  chase, used by the exhaustive decision mode on small inputs.

Every generator only *proposes* candidates; the deciders in
:mod:`repro.core.semantic_acyclicity` verify equivalence under ``Σ`` before
accepting one, so a positive answer is always certified.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Constant, Instance, Term, Variable, is_frozen_constant
from ..hypergraph import compact_acyclic_query, is_acyclic_instance
from ..queries.cq import ConjunctiveQuery, query_from_instance
from ..queries.core_minimization import core
from ..queries.homomorphism import find_homomorphism, homomorphisms


def _dedup(candidates: Iterable[ConjunctiveQuery]) -> Iterator[ConjunctiveQuery]:
    """Drop syntactic duplicates (up to the hash/eq of ConjunctiveQuery)."""
    seen: Set[ConjunctiveQuery] = set()
    for candidate in candidates:
        if candidate not in seen:
            seen.add(candidate)
            yield candidate


# ----------------------------------------------------------------------
# Generator 1: subqueries of a CQ
# ----------------------------------------------------------------------
def acyclic_subqueries(
    query: ConjunctiveQuery,
    min_atoms: int = 1,
    require_head: bool = True,
) -> Iterator[ConjunctiveQuery]:
    """All acyclic subqueries of ``query`` (subsets of its atoms).

    Subqueries that lose a free variable are skipped when ``require_head``
    is set, because they cannot be equivalent to the original query.
    """
    atoms = list(query.body)
    head_variables = set(query.head)
    for size in range(len(atoms), min_atoms - 1, -1):
        for subset in itertools.combinations(range(len(atoms)), size):
            chosen = [atoms[i] for i in subset]
            if require_head:
                available: Set[Variable] = set()
                for atom in chosen:
                    available |= atom.variables()
                if not head_variables <= available:
                    continue
            candidate = ConjunctiveQuery(query.head, chosen, name=f"{query.name}_sub")
            if candidate.is_acyclic():
                yield candidate


# ----------------------------------------------------------------------
# Generator 2: quotients (homomorphic images) of a CQ inside an instance
# ----------------------------------------------------------------------
def acyclic_quotients_in_instance(
    query: ConjunctiveQuery,
    instance: Instance,
    answer: Sequence[Constant],
    max_homomorphisms: int = 500,
) -> Iterator[ConjunctiveQuery]:
    """Acyclic homomorphic images of ``query`` inside ``instance``.

    Every head-preserving homomorphism ``μ : q → instance`` induces the image
    query over the atoms ``μ(q)``; such an image always satisfies
    ``q ⊆_Σ image`` (the image sits inside the chase) and ``image ⊆ q``
    (``μ`` witnesses it), so acyclic images are certified witnesses.
    """
    seed = {variable: value for variable, value in zip(query.head, answer)}
    count = 0
    for mapping in homomorphisms(query.body, instance, seed=seed):
        count += 1
        if count > max_homomorphisms:
            break
        image_atoms = sorted({atom.apply(mapping) for atom in query.body}, key=str)
        candidate = _instance_atoms_to_query(image_atoms, answer, name=f"{query.name}_img")
        if candidate is not None and candidate.is_acyclic():
            yield candidate


def _instance_atoms_to_query(
    atoms: Sequence[Atom],
    answer: Sequence[Constant],
    name: str,
) -> Optional[ConjunctiveQuery]:
    """Turn ground atoms back into a CQ whose head corresponds to ``answer``.

    Frozen constants and nulls become variables; genuine constants survive.
    Returns ``None`` when some answer constant does not occur in the atoms.
    """
    renaming: Dict[Term, Term] = {}
    counter = 0
    for atom in atoms:
        for term in atom.terms:
            if term in renaming:
                continue
            if isinstance(term, Constant) and not is_frozen_constant(term):
                renaming[term] = term
            else:
                renaming[term] = Variable(f"Q{counter}")
                counter += 1
    head: List[Variable] = []
    for value in answer:
        image = renaming.get(value)
        if image is None or not isinstance(image, Variable):
            return None
        head.append(image)
    body = [atom.map_terms(lambda t: renaming[t]) for atom in atoms]
    return ConjunctiveQuery(head, body, name=name)


# ----------------------------------------------------------------------
# Generator 3: acyclic sub-instances of the chase admitting a hom from q
# ----------------------------------------------------------------------
def acyclic_chase_subinstances(
    query: ConjunctiveQuery,
    chase_instance: Instance,
    answer: Sequence[Constant],
    max_atoms: int,
    max_candidates: int = 5_000,
) -> Iterator[ConjunctiveQuery]:
    """Acyclic sub-instances ``J ⊆ chase(q, Σ)`` with a head-preserving hom ``q → J``.

    Such a ``J``, read back as a query, always satisfies ``q ⊆_Σ J`` (it is a
    sub-instance of the chase) and ``J ⊆ q`` (the homomorphism witnesses it),
    so it is a certified witness whenever it is acyclic.

    The enumeration walks subsets of the chase atoms in increasing size and
    stops after ``max_candidates`` subsets have been inspected; the deciders
    treat this generator as heuristic (its exhaustion is reported separately).
    """
    atoms = chase_instance.sorted_atoms()
    inspected = 0
    upper = min(max_atoms, len(atoms))
    for size in range(1, upper + 1):
        for subset in itertools.combinations(atoms, size):
            inspected += 1
            if inspected > max_candidates:
                return
            sub_instance = Instance(subset)
            seed = {variable: value for variable, value in zip(query.head, answer)}
            if find_homomorphism(query.body, sub_instance, seed=seed) is None:
                continue
            if not is_acyclic_instance(sub_instance):
                continue
            candidate = _instance_atoms_to_query(
                list(subset), answer, name=f"{query.name}_chase_sub"
            )
            if candidate is not None:
                yield candidate


# ----------------------------------------------------------------------
# Generator 4: compact Lemma 9 extraction from an acyclic instance
# ----------------------------------------------------------------------
def compact_witnesses_from_acyclic_instance(
    query: ConjunctiveQuery,
    instance: Instance,
    answer: Sequence[Constant],
) -> Iterator[ConjunctiveQuery]:
    """Apply Lemma 9 to ``query`` over an acyclic instance, if possible."""
    if not is_acyclic_instance(instance):
        return
    try:
        candidate = compact_acyclic_query(
            query, instance, answer=answer, name=f"{query.name}_compact"
        )
    except ValueError:
        return
    if candidate is not None:
        yield candidate


# ----------------------------------------------------------------------
# Generator 5: exhaustive anti-unification over chase sub-instances
# ----------------------------------------------------------------------
def _partitions(items: Sequence[object]) -> Iterator[List[List[object]]]:
    """All set partitions of ``items`` (Bell-number many)."""
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _partitions(rest):
        # Put ``first`` into an existing block...
        for index in range(len(partition)):
            yield partition[:index] + [[first] + partition[index]] + partition[index + 1:]
        # ... or into its own block.
        yield [[first]] + partition


def generalisations_of_subinstance(
    atoms: Sequence[Atom],
    answer: Sequence[Constant],
    name: str = "gen",
    max_generalisations: int = 2_000,
) -> Iterator[ConjunctiveQuery]:
    """All anti-unifications of a ground sub-instance, read back as CQs.

    Every occurrence of a non-rigid term (null or frozen constant) may keep
    or lose its identity with the other occurrences of the same term; rigid
    constants stay rigid.  The answer terms keep at least one occurrence
    carrying the head variable (the block containing the "head occurrence").
    This generator underlies the exhaustive decision mode: any CQ that maps
    onto the sub-instance is a renaming of one of the generalisations.
    """
    # Collect occurrences of each non-rigid term.
    occurrences: Dict[Term, List[Tuple[int, int]]] = {}
    for atom_index, atom in enumerate(atoms):
        for arg_index, term in enumerate(atom.terms):
            if isinstance(term, Constant) and not is_frozen_constant(term):
                continue
            occurrences.setdefault(term, []).append((atom_index, arg_index))

    terms = sorted(occurrences, key=str)
    per_term_partitions: List[List[List[List[Tuple[int, int]]]]] = []
    for term in terms:
        per_term_partitions.append(list(_partitions(occurrences[term])))

    produced = 0
    for combination in itertools.product(*per_term_partitions):
        produced += 1
        if produced > max_generalisations:
            return
        # Assign a fresh variable per block.
        variable_of_position: Dict[Tuple[int, int], Variable] = {}
        block_of_term_for_answer: Dict[Term, List[Variable]] = {}
        counter = 0
        for term, partition in zip(terms, combination):
            block_variables: List[Variable] = []
            for block in partition:
                variable = Variable(f"G{counter}")
                counter += 1
                block_variables.append(variable)
                for position in block:
                    variable_of_position[position] = variable
            block_of_term_for_answer[term] = block_variables

        head: List[Variable] = []
        feasible = True
        for value in answer:
            blocks = block_of_term_for_answer.get(value)
            if not blocks:
                feasible = False
                break
            # The head variable is the first block of the answer term; other
            # blocks of the same term become ordinary (distinct) variables.
            head.append(blocks[0])
        if not feasible:
            continue

        body: List[Atom] = []
        for atom_index, atom in enumerate(atoms):
            terms_of_atom: List[Term] = []
            for arg_index, term in enumerate(atom.terms):
                if isinstance(term, Constant) and not is_frozen_constant(term):
                    terms_of_atom.append(term)
                else:
                    terms_of_atom.append(variable_of_position[(atom_index, arg_index)])
            body.append(Atom(atom.predicate, tuple(terms_of_atom)))
        yield ConjunctiveQuery(head, body, name=name)


def exhaustive_chase_candidates(
    query: ConjunctiveQuery,
    chase_instance: Instance,
    answer: Sequence[Constant],
    max_atoms: int,
    max_subsets: int = 20_000,
    max_generalisations_per_subset: int = 500,
) -> Iterator[ConjunctiveQuery]:
    """Exhaustive-mode candidates: generalisations of chase sub-instances.

    Any witness ``q'`` with ``q ⊆_Σ q'`` maps homomorphically into the chase;
    the candidates below are the acyclic generalisations of the sub-instances
    its image can occupy.  The enumeration is intentionally bounded; the
    decider reports whether the bounds were hit.
    """
    atoms = chase_instance.sorted_atoms()
    inspected = 0
    upper = min(max_atoms, len(atoms))
    for size in range(1, upper + 1):
        for subset in itertools.combinations(atoms, size):
            inspected += 1
            if inspected > max_subsets:
                return
            for candidate in generalisations_of_subinstance(
                list(subset),
                answer,
                name=f"{query.name}_gen",
                max_generalisations=max_generalisations_per_subset,
            ):
                if candidate.is_acyclic():
                    yield candidate


# ----------------------------------------------------------------------
# Convenience: the layered "fast" candidate stream
# ----------------------------------------------------------------------
def fast_candidates(
    query: ConjunctiveQuery,
    chase_instance: Instance,
    answer: Sequence[Constant],
    size_bound: int,
    rewriting_disjuncts: Sequence[ConjunctiveQuery] = (),
) -> Iterator[ConjunctiveQuery]:
    """The default candidate stream used by the deciders.

    Order: subqueries of ``q``; their cores; subqueries of rewriting
    disjuncts; quotients of ``q`` in the chase; acyclic chase sub-instances;
    Lemma 9 compact witnesses (when the chase happens to be acyclic).
    """
    def stream() -> Iterator[ConjunctiveQuery]:
        yield from acyclic_subqueries(query)
        core_query = core(query)
        if core_query.is_acyclic():
            yield core_query
        for disjunct in rewriting_disjuncts:
            if len(disjunct.body) <= max(size_bound, len(query.body)):
                yield from acyclic_subqueries(disjunct)
        yield from acyclic_quotients_in_instance(query, chase_instance, answer)
        yield from compact_witnesses_from_acyclic_instance(
            query, chase_instance, answer
        )
        yield from acyclic_chase_subinstances(
            query, chase_instance, answer, max_atoms=min(size_bound, 2 * len(query))
        )

    yield from _dedup(stream())
