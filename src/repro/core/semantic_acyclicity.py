"""Semantic acyclicity under constraints — the paper's central decision problems.

``SemAc(C)``: given a CQ ``q`` and a finite set ``Σ`` of constraints in the
class ``C``, is there an acyclic CQ ``q'`` with ``q ≡_Σ q'``?

The module implements the decision procedures the paper proves correct:

* **no constraints** — ``q`` is semantically acyclic iff its core is acyclic
  (exact, Section 1);
* **guarded tgds** (Theorem 11) and **keys over unary/binary predicates /
  unary FDs** (Theorem 23) — guess-and-check with the ``2·|q|`` bound of
  Proposition 8 (acyclicity-preserving chase);
* **non-recursive** and **sticky** sets (Theorems 18/20) — guess-and-check
  with the ``2·f_C(q, Σ)`` bound of Proposition 15 (UCQ rewritability);
* **full tgds** — undecidable (Theorem 7); the procedure still *searches*
  and certifies positive answers, but a negative answer carries no guarantee
  (see :mod:`repro.core.pcp` for the reduction behind the undecidability).

Because the problem is NP-hard already for a fixed schema, the deterministic
search is exponential.  Positive answers are always *certified*: the returned
witness has been verified equivalent to ``q`` under ``Σ``.  Negative answers
are exact when the search was exhaustive relative to the theoretical size
bound (reported in :class:`SemAcDecision.exhaustive`), which the default
configuration attempts only for small inputs; otherwise they mean "no witness
found by the layered candidate generators".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Union

from ..chase.egd_chase import egd_chase_query
from ..chase.tgd_chase import chase_query
from ..containment.constrained import (
    ContainmentConfig,
    ContainmentOutcome,
    contained_under_egds,
    contained_under_tgds,
)
from ..datamodel import Constant, Instance
from ..dependencies.classification import (
    DependencyClass,
    is_full_set,
    is_guarded_set,
    is_non_recursive_set,
    is_sticky_set,
)
from ..dependencies.egd import EGD
from ..dependencies.fd import FunctionalDependency, fds_to_egds, is_k2_set, all_unary
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.core_minimization import core, is_semantically_acyclic_unconstrained
from ..rewriting.bounds import (
    small_query_bound_guarded,
    small_query_bound_ucq_rewritable,
)
from ..rewriting.ucq_rewriting import (
    RewritingBudgetExceeded,
    RewritingConfig,
    rewrite,
    rewriting_contained_under_tgds,
)
from .candidates import exhaustive_chase_candidates, fast_candidates


Constraints = Union[Sequence[TGD], Sequence[EGD], Sequence[FunctionalDependency]]


@dataclass
class SemAcConfig:
    """Budgets and switches for the semantic-acyclicity search."""

    #: Chase budgets used by the chase-based containment checks.
    chase_max_steps: int = 5_000
    chase_max_depth: Optional[int] = None
    #: Budgets for the UCQ rewriting (sticky / non-recursive strategies).
    rewriting: RewritingConfig = field(default_factory=RewritingConfig)
    #: Whether to use the rewriting for candidate generation when available.
    use_rewriting_candidates: bool = True
    #: Run the exhaustive anti-unification enumeration when the fast
    #: generators fail (only advisable for small queries/chases).
    exhaustive: bool = False
    #: Caps for the exhaustive enumeration.
    exhaustive_max_subsets: int = 20_000
    exhaustive_max_generalisations: int = 500
    #: Cap on the witness size considered by the exhaustive enumeration (the
    #: theoretical bound is used when smaller).
    exhaustive_size_cap: int = 8
    #: Cap on the number of candidates verified before giving up.
    max_candidates_checked: int = 50_000

    def containment_config(self) -> ContainmentConfig:
        return ContainmentConfig(
            max_steps=self.chase_max_steps, max_depth=self.chase_max_depth
        )


DEFAULT_SEMAC_CONFIG = SemAcConfig()


@dataclass
class SemAcDecision:
    """Outcome of a semantic-acyclicity decision."""

    #: The verdict.  ``True`` is always certified by :attr:`witness`.
    semantically_acyclic: bool
    #: A verified acyclic CQ equivalent to the input under the constraints.
    witness: Optional[ConjunctiveQuery]
    #: Which strategy produced the verdict.
    method: str
    #: The theoretical witness-size bound used by the search.
    size_bound: int
    #: Number of candidates that were verified against the constraints.
    candidates_checked: int = 0
    #: ``True`` when a negative verdict results from an exhaustive search of
    #: the bounded candidate space (and every verification was definite).
    exhaustive: bool = False
    #: Free-form diagnostic notes (budget exhaustion, unknown containments…).
    notes: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:
        return self.semantically_acyclic


# ----------------------------------------------------------------------
# No constraints
# ----------------------------------------------------------------------
def decide_semantic_acyclicity_unconstrained(query: ConjunctiveQuery) -> SemAcDecision:
    """Exact decision in the absence of constraints: is the core acyclic?"""
    minimal = core(query)
    if minimal.is_acyclic():
        return SemAcDecision(
            semantically_acyclic=True,
            witness=minimal,
            method="core",
            size_bound=len(query),
            candidates_checked=1,
            exhaustive=True,
        )
    return SemAcDecision(
        semantically_acyclic=False,
        witness=None,
        method="core",
        size_bound=len(query),
        candidates_checked=1,
        exhaustive=True,
    )


# ----------------------------------------------------------------------
# Verification strategies
# ----------------------------------------------------------------------
class _TgdVerifier:
    """Class-aware equivalence checks ``q ≡_Σ candidate`` for tgd sets."""

    def __init__(
        self,
        query: ConjunctiveQuery,
        tgds: Sequence[TGD],
        config: SemAcConfig,
        strategy: str,
    ) -> None:
        self.query = query
        self.tgds = list(tgds)
        self.config = config
        self.strategy = strategy
        self.saw_unknown = False
        self._query_rewriting = None
        if strategy == "rewriting":
            try:
                self._query_rewriting = rewrite(query, self.tgds, config.rewriting)
            except RewritingBudgetExceeded:
                self.strategy = "chase"

    def _contained_chase(
        self, left: ConjunctiveQuery, right: ConjunctiveQuery
    ) -> ContainmentOutcome:
        return contained_under_tgds(
            left, right, self.tgds, self.config.containment_config()
        )

    def candidate_contained_in_query(self, candidate: ConjunctiveQuery) -> bool:
        """``candidate ⊆_Σ q`` (definite answers only)."""
        if self.strategy == "rewriting" and self._query_rewriting is not None:
            return rewriting_contained_under_tgds(
                candidate,
                self.query,
                self.tgds,
                config=self.config.rewriting,
                rewriting=self._query_rewriting,
            )
        outcome = self._contained_chase(candidate, self.query)
        if outcome is ContainmentOutcome.UNKNOWN:
            self.saw_unknown = True
            return False
        return bool(outcome)

    def query_contained_in_candidate(self, candidate: ConjunctiveQuery) -> bool:
        """``q ⊆_Σ candidate`` (definite answers only)."""
        if self.strategy == "rewriting":
            try:
                return rewriting_contained_under_tgds(
                    self.query, candidate, self.tgds, config=self.config.rewriting
                )
            except RewritingBudgetExceeded:
                self.saw_unknown = True
        outcome = self._contained_chase(self.query, candidate)
        if outcome is ContainmentOutcome.UNKNOWN:
            self.saw_unknown = True
            return False
        return bool(outcome)

    def equivalent(self, candidate: ConjunctiveQuery) -> bool:
        return self.query_contained_in_candidate(candidate) and self.candidate_contained_in_query(
            candidate
        )


# ----------------------------------------------------------------------
# SemAc under tgds
# ----------------------------------------------------------------------
def _strategy_for(tgds: Sequence[TGD]) -> Tuple[str, str]:
    """Pick (containment strategy, class label) for a set of tgds."""
    if is_guarded_set(tgds):
        return "chase", "guarded"
    if is_non_recursive_set(tgds):
        return "chase", "non-recursive"
    if is_sticky_set(tgds):
        return "rewriting", "sticky"
    if is_full_set(tgds):
        return "chase", "full"
    return "chase", "general"


def decide_semantic_acyclicity_tgds(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> SemAcDecision:
    """Decide whether ``query`` is semantically acyclic under a set of tgds."""
    tgd_list = list(tgds)
    if not tgd_list:
        return decide_semantic_acyclicity_unconstrained(query)

    strategy, class_label = _strategy_for(tgd_list)
    if class_label in ("guarded",):
        size_bound = small_query_bound_guarded(query)
    elif class_label in ("non-recursive", "sticky"):
        size_bound = small_query_bound_ucq_rewritable(query, tgd_list)
    else:
        size_bound = small_query_bound_guarded(query)

    notes: List[str] = [f"class={class_label}", f"strategy={strategy}"]
    if class_label == "full":
        notes.append(
            "SemAc is undecidable for full tgds (Theorem 7); negative answers "
            "are not certified"
        )
    elif class_label == "general":
        notes.append("tgd set outside the decidable classes; best-effort search")

    # Quick exact check: already acyclic, or acyclic core.
    if query.is_acyclic():
        return SemAcDecision(
            True, query, f"syntactic/{class_label}", size_bound, 1, True, notes
        )

    verifier = _TgdVerifier(query, tgd_list, config, strategy)

    chase_result, freezing = chase_query(
        query,
        tgd_list,
        max_steps=config.chase_max_steps,
        max_depth=config.chase_max_depth,
    )
    if not chase_result.terminated:
        notes.append("chase truncated by budget; candidate space may be incomplete")
    answer = tuple(freezing[v] for v in query.head)

    rewriting_disjuncts: Sequence[ConjunctiveQuery] = ()
    if config.use_rewriting_candidates and class_label in ("non-recursive", "sticky"):
        try:
            rewriting_disjuncts = list(rewrite(query, tgd_list, config.rewriting))
        except RewritingBudgetExceeded:
            notes.append("rewriting budget exceeded while generating candidates")

    checked = 0
    for candidate in fast_candidates(
        query,
        chase_result.instance,
        answer,
        size_bound,
        rewriting_disjuncts=rewriting_disjuncts,
    ):
        checked += 1
        if checked > config.max_candidates_checked:
            notes.append("candidate budget exhausted during the fast phase")
            break
        if verifier.equivalent(candidate):
            return SemAcDecision(
                True,
                candidate,
                f"fast/{class_label}",
                size_bound,
                checked,
                False,
                notes,
            )

    exhaustive_complete = False
    if config.exhaustive:
        cap = min(size_bound, config.exhaustive_size_cap)
        if cap < size_bound:
            notes.append(
                f"exhaustive enumeration capped at witness size {cap} "
                f"(theoretical bound {size_bound})"
            )
        budget_hit = False
        for candidate in exhaustive_chase_candidates(
            query,
            chase_result.instance,
            answer,
            max_atoms=cap,
            max_subsets=config.exhaustive_max_subsets,
            max_generalisations_per_subset=config.exhaustive_max_generalisations,
        ):
            checked += 1
            if checked > config.max_candidates_checked:
                budget_hit = True
                notes.append("candidate budget exhausted during the exhaustive phase")
                break
            if verifier.equivalent(candidate):
                return SemAcDecision(
                    True,
                    candidate,
                    f"exhaustive/{class_label}",
                    size_bound,
                    checked,
                    False,
                    notes,
                )
        exhaustive_complete = (
            not budget_hit
            and chase_result.terminated
            and not verifier.saw_unknown
            and cap >= size_bound
        )

    if verifier.saw_unknown:
        notes.append("some containment checks were inconclusive (chase budget)")

    return SemAcDecision(
        False,
        None,
        f"search/{class_label}",
        size_bound,
        checked,
        exhaustive_complete,
        notes,
    )


def find_acyclic_reformulation_tgds(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> Optional[ConjunctiveQuery]:
    """Return a verified acyclic CQ equivalent to ``query`` under ``tgds`` (or ``None``)."""
    decision = decide_semantic_acyclicity_tgds(query, tgds, config)
    return decision.witness


def is_semantically_acyclic_under_tgds(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> bool:
    """Boolean convenience wrapper around :func:`decide_semantic_acyclicity_tgds`."""
    return decide_semantic_acyclicity_tgds(query, tgds, config).semantically_acyclic


# ----------------------------------------------------------------------
# SemAc under egds
# ----------------------------------------------------------------------
def decide_semantic_acyclicity_egds(
    query: ConjunctiveQuery,
    egds: Sequence[EGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> SemAcDecision:
    """Decide semantic acyclicity under a set of egds.

    The procedure is the guess-and-check of Theorem 21 with the ``2·|q|``
    bound; it is complete (given exhaustive mode) for classes with
    acyclicity-preserving chase — in particular ``K2`` (keys over unary and
    binary predicates, Proposition 22) and unary FDs.  For arbitrary egds the
    decidability status is open (Section 9) and negative answers are
    best-effort.
    """
    egd_list = list(egds)
    if not egd_list:
        return decide_semantic_acyclicity_unconstrained(query)

    size_bound = small_query_bound_guarded(query)
    notes: List[str] = ["class=egds"]

    if query.is_acyclic():
        return SemAcDecision(True, query, "syntactic/egds", size_bound, 1, True, notes)

    chase_result, freezing = egd_chase_query(query, egd_list, on_failure="return")
    if chase_result.failed:
        notes.append(
            "the egd chase of the query fails; the query is unsatisfiable on "
            "consistent databases and trivially equivalent to any acyclic CQ"
        )
        trivial = _trivial_acyclic_subquery(query)
        return SemAcDecision(True, trivial, "failing-chase", size_bound, 1, True, notes)
    answer = tuple(chase_result.resolve(freezing[v]) for v in query.head)

    def equivalent(candidate: ConjunctiveQuery) -> bool:
        return contained_under_egds(query, candidate, egd_list) and contained_under_egds(
            candidate, query, egd_list
        )

    checked = 0
    for candidate in fast_candidates(
        query, chase_result.instance, answer, size_bound
    ):
        checked += 1
        if checked > config.max_candidates_checked:
            notes.append("candidate budget exhausted during the fast phase")
            break
        if equivalent(candidate):
            return SemAcDecision(True, candidate, "fast/egds", size_bound, checked, False, notes)

    exhaustive_complete = False
    if config.exhaustive:
        cap = min(size_bound, config.exhaustive_size_cap)
        budget_hit = False
        for candidate in exhaustive_chase_candidates(
            query,
            chase_result.instance,
            answer,
            max_atoms=cap,
            max_subsets=config.exhaustive_max_subsets,
            max_generalisations_per_subset=config.exhaustive_max_generalisations,
        ):
            checked += 1
            if checked > config.max_candidates_checked:
                budget_hit = True
                notes.append("candidate budget exhausted during the exhaustive phase")
                break
            if equivalent(candidate):
                return SemAcDecision(
                    True, candidate, "exhaustive/egds", size_bound, checked, False, notes
                )
        exhaustive_complete = not budget_hit and cap >= size_bound

    return SemAcDecision(
        False, None, "search/egds", size_bound, checked, exhaustive_complete, notes
    )


def _trivial_acyclic_subquery(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A fallback acyclic query used when the chase of the query fails."""
    for atom in query.body:
        candidate_atoms = [atom]
        available = atom.variables()
        if set(query.head) <= available:
            return ConjunctiveQuery(query.head, candidate_atoms, name=f"{query.name}_triv")
    return query


def decide_semantic_acyclicity_fds(
    query: ConjunctiveQuery,
    fds: Sequence[FunctionalDependency],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> SemAcDecision:
    """Decide semantic acyclicity under functional dependencies.

    ``K2`` sets (keys over unary/binary predicates) and unary FDs have
    acyclicity-preserving chase, so the search is backed by Theorem 23 / the
    Figueira extension; other FD sets are handled best-effort (their status
    is open, Section 9).
    """
    fd_list = list(fds)
    decision = decide_semantic_acyclicity_egds(query, fds_to_egds(fd_list), config)
    if is_k2_set(fd_list):
        decision.notes.append("FD set is in K2 (keys over unary/binary predicates)")
    elif all_unary(fd_list):
        decision.notes.append("FD set consists of unary FDs")
    else:
        decision.notes.append(
            "FD set outside K2/unary FDs: decidability of SemAc is open (Section 9)"
        )
    return decision


# ----------------------------------------------------------------------
# Generic dispatcher
# ----------------------------------------------------------------------
def decide_semantic_acyclicity(
    query: ConjunctiveQuery,
    constraints: Constraints = (),
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> SemAcDecision:
    """Dispatch on the constraint type (tgds, egds or FDs)."""
    constraint_list = list(constraints)
    if not constraint_list:
        return decide_semantic_acyclicity_unconstrained(query)
    first = constraint_list[0]
    if isinstance(first, TGD):
        return decide_semantic_acyclicity_tgds(query, constraint_list, config)
    if isinstance(first, EGD):
        return decide_semantic_acyclicity_egds(query, constraint_list, config)
    if isinstance(first, FunctionalDependency):
        return decide_semantic_acyclicity_fds(query, constraint_list, config)
    raise TypeError(f"unsupported constraint type {type(first).__name__}")


def is_semantically_acyclic(
    query: ConjunctiveQuery,
    constraints: Constraints = (),
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> bool:
    """Boolean convenience wrapper around :func:`decide_semantic_acyclicity`."""
    return decide_semantic_acyclicity(query, constraints, config).semantically_acyclic
