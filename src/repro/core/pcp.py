"""The PCP reduction behind the undecidability of SemAc for full tgds (Theorem 7).

Theorem 7 shows that semantic acyclicity is undecidable for sets of *full*
tgds by reducing from the Post Correspondence Problem: given two equally
long lists of words ``w_1..w_n`` and ``w'_1..w'_n`` over ``{a, b}``, the
construction produces a Boolean CQ ``q`` and a set ``Σ`` of full tgds such
that the PCP instance has a solution iff ``q`` is equivalent under ``Σ`` to
an acyclic CQ (in the proof sketch: to a CQ whose underlying graph is a
directed path).

An undecidable problem cannot be implemented as a decision procedure; what
this module implements is the *reduction itself* (the construction of ``q``
and ``Σ`` from a PCP instance, following the proof sketch of Section 3), the
construction of the candidate path query from a PCP solution, and a bounded
PCP solver so that the benchmark can validate both directions of the
reduction on small instances.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..containment.constrained import ContainmentConfig, equivalent_under_tgds
from ..datamodel import Atom, Predicate, Variable
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery


# Schema of the reduction.
P_A = Predicate("Pa", 2)
P_B = Predicate("Pb", 2)
P_HASH = Predicate("Phash", 2)
P_STAR = Predicate("Pstar", 2)
SYNC = Predicate("sync", 2)
START = Predicate("start", 1)
END = Predicate("end", 1)

_LETTER = {"a": P_A, "b": P_B}


@dataclass(frozen=True)
class PCPInstance:
    """A PCP instance: two equally long lists of words over ``{a, b}``."""

    top: Tuple[str, ...]
    bottom: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.top) != len(self.bottom):
            raise ValueError("the two lists must have the same length")
        for word in self.top + self.bottom:
            if not word or set(word) - {"a", "b"}:
                raise ValueError(f"words must be non-empty over {{a, b}}, got {word!r}")

    @property
    def size(self) -> int:
        return len(self.top)

    def solution_word(self, indices: Sequence[int]) -> Optional[str]:
        """Return the common word spelled by ``indices`` if it is a solution."""
        if not indices:
            return None
        top_word = "".join(self.top[i] for i in indices)
        bottom_word = "".join(self.bottom[i] for i in indices)
        return top_word if top_word == bottom_word else None

    def has_solution_bounded(self, max_indices: int = 6) -> Optional[Tuple[int, ...]]:
        """Brute-force search for a solution of length ≤ ``max_indices``."""
        for length in range(1, max_indices + 1):
            for indices in itertools.product(range(self.size), repeat=length):
                if self.solution_word(indices) is not None:
                    return tuple(indices)
        return None

    def doubled(self) -> "PCPInstance":
        """Replace ``a``/``b`` by ``aa``/``bb`` (the evenness normalisation of the proof)."""
        double = {"a": "aa", "b": "bb"}

        def expand(word: str) -> str:
            return "".join(double[letter] for letter in word)

        return PCPInstance(
            tuple(expand(w) for w in self.top),
            tuple(expand(w) for w in self.bottom),
        )


# ----------------------------------------------------------------------
# The query q of Figure 2 (proof-sketch version)
# ----------------------------------------------------------------------
def pcp_query() -> ConjunctiveQuery:
    """The Boolean CQ ``q`` of the reduction (Figure 2, proof sketch).

    The query has variables ``x, y, z, u, v``; ``x`` is the ``start`` vertex,
    ``v`` the ``end`` vertex, and the inner triangle ``y, z, u`` carries the
    ``Pa``/``Pb``/``sync`` structure that the finalization rule recreates in
    the chase of a solution-encoding path query.
    """
    x, y, z, u, v = (Variable(n) for n in ("x", "y", "z", "u", "v"))
    atoms: List[Atom] = [
        Atom(START, (x,)),
        Atom(END, (v,)),
        Atom(P_HASH, (x, y)),
        Atom(P_HASH, (x, z)),
        Atom(P_HASH, (x, u)),
        Atom(P_A, (y, z)),
        Atom(P_A, (z, u)),
        Atom(P_STAR, (y, v)),
        Atom(P_STAR, (z, v)),
        Atom(P_STAR, (u, v)),
        Atom(P_B, (z, y)),
        Atom(P_B, (u, z)),
        Atom(P_A, (u, y)),
        Atom(P_B, (y, u)),
    ]
    atoms.extend(_sync_atoms(y, z, u))
    return ConjunctiveQuery((), atoms, name="pcp_q")


def _sync_atoms(y: Variable, z: Variable, u: Variable) -> List[Atom]:
    """The sync atoms of ``q`` — exactly those recreated by the finalization rule."""
    pairs = [(y, y), (z, z), (y, z), (z, y), (y, u), (u, y), (z, u), (u, z)]
    return [Atom(SYNC, pair) for pair in pairs]


def _word_path_atoms(
    word: str, source: Variable, target: Variable, prefix: str
) -> List[Atom]:
    """Atoms of the path reading ``word`` from ``source`` to ``target``."""
    atoms: List[Atom] = []
    current = source
    for index, letter in enumerate(word):
        nxt = target if index == len(word) - 1 else Variable(f"{prefix}_{index}")
        atoms.append(Atom(_LETTER[letter], (current, nxt)))
        current = nxt
    return atoms


# ----------------------------------------------------------------------
# The set Σ of full tgds
# ----------------------------------------------------------------------
def pcp_tgds(instance: PCPInstance) -> List[TGD]:
    """The set ``Σ`` of full tgds of the reduction (proof-sketch version)."""
    tgds: List[TGD] = []

    # 1. Initialization rule: start(x), P#(x, y) → sync(y, y).
    x, y = Variable("x"), Variable("y")
    tgds.append(
        TGD(
            [Atom(START, (x,)), Atom(P_HASH, (x, y))],
            [Atom(SYNC, (y, y))],
            label="init",
        )
    )

    # 2. Synchronization rules, one per index i.
    for index in range(instance.size):
        sx, sy, sz, su = (Variable(n) for n in ("sx", "sy", "sz", "su"))
        body: List[Atom] = [Atom(SYNC, (sx, sy))]
        body.extend(_word_path_atoms(instance.top[index], sx, sz, f"t{index}"))
        body.extend(_word_path_atoms(instance.bottom[index], sy, su, f"b{index}"))
        tgds.append(TGD(body, [Atom(SYNC, (sz, su))], label=f"sync_{index}"))

    # 3. Finalization rules, one per index i.
    for index in range(instance.size):
        x, y, z, u, v = (Variable(n) for n in ("fx", "fy", "fz", "fu", "fv"))
        y1, y2 = Variable("fy1"), Variable("fy2")
        body = [
            Atom(START, (x,)),
            Atom(P_A, (y, z)),
            Atom(P_A, (z, u)),
            Atom(P_STAR, (u, v)),
            Atom(END, (v,)),
            Atom(SYNC, (y1, y2)),
        ]
        body.extend(_word_path_atoms(instance.top[index], y1, y, f"ft{index}"))
        body.extend(_word_path_atoms(instance.bottom[index], y2, y, f"fb{index}"))
        head: List[Atom] = [
            Atom(P_HASH, (x, y)),
            Atom(P_HASH, (x, z)),
            Atom(P_HASH, (x, u)),
            Atom(P_STAR, (y, v)),
            Atom(P_STAR, (z, v)),
            Atom(P_B, (z, y)),
            Atom(P_B, (u, z)),
            Atom(P_A, (u, y)),
            Atom(P_B, (y, u)),
        ]
        head.extend(_sync_atoms(y, z, u))
        tgds.append(TGD(body, head, label=f"final_{index}"))

    return tgds


# ----------------------------------------------------------------------
# Candidate path queries
# ----------------------------------------------------------------------
def solution_path_query(instance: PCPInstance, indices: Sequence[int]) -> ConjunctiveQuery:
    """The acyclic path query ``q'`` encoding a solution sequence.

    The path spells ``start ─P#→ a_1 ⋯ a_t ─Pa→ ─Pa→ ─P*→ end`` where
    ``a_1 ⋯ a_t`` is the solution word.
    """
    word = instance.solution_word(indices)
    if word is None:
        raise ValueError(f"{indices!r} is not a solution of the PCP instance")
    return word_path_query(word)


def word_path_query(word: str) -> ConjunctiveQuery:
    """The path query encoding an arbitrary candidate word ``w ∈ {a, b}+``."""
    if not word or set(word) - {"a", "b"}:
        raise ValueError(f"the word must be non-empty over {{a, b}}, got {word!r}")
    start_var = Variable("p0")
    atoms: List[Atom] = [Atom(START, (start_var,))]
    current = start_var
    nxt = Variable("p1")
    atoms.append(Atom(P_HASH, (current, nxt)))
    current = nxt
    position = 2
    for letter in word:
        nxt = Variable(f"p{position}")
        atoms.append(Atom(_LETTER[letter], (current, nxt)))
        current, position = nxt, position + 1
    for letter_predicate in (P_A, P_A):
        nxt = Variable(f"p{position}")
        atoms.append(Atom(letter_predicate, (current, nxt)))
        current, position = nxt, position + 1
    nxt = Variable(f"p{position}")
    atoms.append(Atom(P_STAR, (current, nxt)))
    atoms.append(Atom(END, (nxt,)))
    return ConjunctiveQuery((), atoms, name=f"path_{word}")


# ----------------------------------------------------------------------
# Validating the reduction (bounded, for the benchmark / tests)
# ----------------------------------------------------------------------
@dataclass
class ReductionCheck:
    """Outcome of validating the reduction on one PCP instance."""

    instance: PCPInstance
    solution: Optional[Tuple[int, ...]]
    equivalent_path_found: bool
    tested_words: int


def check_reduction(
    instance: PCPInstance,
    max_solution_indices: int = 4,
    max_word_length: int = 8,
    chase_max_steps: int = 20_000,
) -> ReductionCheck:
    """Empirically validate the reduction on a small PCP instance.

    * If the instance has a (bounded-length) solution, the corresponding path
      query must be equivalent to ``q`` under ``Σ``.
    * Conversely, the check scans all candidate words up to
      ``max_word_length`` and reports whether any path query is equivalent to
      ``q`` — for unsolvable instances none should be.
    """
    query = pcp_query()
    tgds = pcp_tgds(instance)
    config = ContainmentConfig(max_steps=chase_max_steps)

    solution = instance.has_solution_bounded(max_solution_indices)

    equivalent_found = False
    tested = 0
    for length in range(1, max_word_length + 1):
        for letters in itertools.product("ab", repeat=length):
            word = "".join(letters)
            tested += 1
            candidate = word_path_query(word)
            if bool(equivalent_under_tgds(query, candidate, tgds, config)):
                equivalent_found = True
                break
        if equivalent_found:
            break

    return ReductionCheck(
        instance=instance,
        solution=solution,
        equivalent_path_found=equivalent_found,
        tested_words=tested,
    )
