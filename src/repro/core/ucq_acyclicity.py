"""Semantic acyclicity for unions of conjunctive queries (Section 8.1).

A UCQ ``Q`` is semantically acyclic under ``Σ`` when there is a union of
acyclic CQs equivalent to ``Q`` under ``Σ``.  Propositions 33/34 give the
small-query property behind the decision procedure: if ``Q`` is semantically
acyclic then each disjunct ``q`` either (i) has a bounded-size acyclic CQ
equivalent to it under ``Σ``, or (ii) is redundant in ``Q`` (contained under
``Σ`` in another disjunct).

The decision procedure below mirrors that case split: for every disjunct it
first tests redundancy, then falls back to the CQ-level SemAc search; the
witness union collects the per-disjunct witnesses of the non-redundant
disjuncts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from ..containment.constrained import (
    ContainmentOutcome,
    contained_under_egds,
    contained_under_tgds,
)
from ..dependencies.egd import EGD
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.ucq import UnionOfConjunctiveQueries
from .semantic_acyclicity import (
    DEFAULT_SEMAC_CONFIG,
    SemAcConfig,
    SemAcDecision,
    decide_semantic_acyclicity_egds,
    decide_semantic_acyclicity_tgds,
)


Constraint = Union[TGD, EGD]


@dataclass
class UCQSemAcDecision:
    """Outcome of the UCQ semantic-acyclicity decision."""

    semantically_acyclic: bool
    #: Union of acyclic CQs equivalent to the input (when the answer is yes).
    witness: Optional[UnionOfConjunctiveQueries]
    #: Per-disjunct outcome: ``"acyclic-witness"``, ``"redundant"`` or ``"stuck"``.
    disjunct_status: Dict[int, str] = field(default_factory=dict)
    #: The per-disjunct CQ decisions (for non-redundant disjuncts).
    cq_decisions: Dict[int, SemAcDecision] = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.semantically_acyclic


def _contained(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    tgds: Sequence[TGD],
    egds: Sequence[EGD],
    config: SemAcConfig,
) -> bool:
    if tgds:
        return (
            contained_under_tgds(left, right, tgds, config.containment_config())
            is ContainmentOutcome.TRUE
        )
    if egds:
        return contained_under_egds(left, right, egds)
    from ..containment.cq_containment import cq_contained_in

    return cq_contained_in(left, right)


def decide_ucq_semantic_acyclicity(
    ucq: UnionOfConjunctiveQueries,
    constraints: Sequence[Constraint] = (),
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> UCQSemAcDecision:
    """Decide whether a UCQ is equivalent to a union of acyclic CQs under Σ."""
    constraint_list = list(constraints)
    tgds = [c for c in constraint_list if isinstance(c, TGD)]
    egds = [c for c in constraint_list if isinstance(c, EGD)]
    if tgds and egds:
        raise ValueError("mixing tgds and egds is not supported")

    decision = UCQSemAcDecision(semantically_acyclic=True, witness=None)
    witness_disjuncts: List[ConjunctiveQuery] = []
    disjuncts = list(ucq.disjuncts)

    # Case (ii) first: drop redundant disjuncts.  Redundancy is computed
    # sequentially against the not-yet-dropped disjuncts so that a cycle of
    # mutually Σ-equivalent disjuncts keeps exactly one representative.
    dropped: set = set()
    for index, disjunct in enumerate(disjuncts):
        for other_index, other in enumerate(disjuncts):
            if other_index == index or other_index in dropped:
                continue
            if _contained(disjunct, other, tgds, egds, config):
                dropped.add(index)
                break

    for index, disjunct in enumerate(disjuncts):
        if index in dropped:
            decision.disjunct_status[index] = "redundant"
            continue

        # Case (i): the disjunct itself is semantically acyclic under Σ.
        if tgds:
            cq_decision = decide_semantic_acyclicity_tgds(disjunct, tgds, config)
        elif egds:
            cq_decision = decide_semantic_acyclicity_egds(disjunct, egds, config)
        else:
            from .semantic_acyclicity import decide_semantic_acyclicity_unconstrained

            cq_decision = decide_semantic_acyclicity_unconstrained(disjunct)
        decision.cq_decisions[index] = cq_decision
        if cq_decision.semantically_acyclic and cq_decision.witness is not None:
            decision.disjunct_status[index] = "acyclic-witness"
            witness_disjuncts.append(cq_decision.witness)
        else:
            decision.disjunct_status[index] = "stuck"
            decision.semantically_acyclic = False

    if decision.semantically_acyclic:
        if not witness_disjuncts:
            # Every disjunct was redundant in another one — this can only
            # happen through Σ-equivalences; keep one witness per equivalence
            # class by re-running the CQ decision on the first disjunct.
            if tgds:
                fallback = decide_semantic_acyclicity_tgds(disjuncts[0], tgds, config)
            elif egds:
                fallback = decide_semantic_acyclicity_egds(disjuncts[0], egds, config)
            else:
                from .semantic_acyclicity import decide_semantic_acyclicity_unconstrained

                fallback = decide_semantic_acyclicity_unconstrained(disjuncts[0])
            if fallback.semantically_acyclic and fallback.witness is not None:
                witness_disjuncts.append(fallback.witness)
            else:
                decision.semantically_acyclic = False
        if witness_disjuncts:
            decision.witness = UnionOfConjunctiveQueries(
                witness_disjuncts, name=f"{ucq.name}_acyclic"
            )
    return decision


def is_ucq_semantically_acyclic(
    ucq: UnionOfConjunctiveQueries,
    constraints: Sequence[Constraint] = (),
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> bool:
    """Boolean wrapper around :func:`decide_ucq_semantic_acyclicity`."""
    return decide_ucq_semantic_acyclicity(ucq, constraints, config).semantically_acyclic
