"""The reductions relating containment and semantic acyclicity (Section 3.2).

Two constructions from the paper are implemented here as executable objects:

* **Proposition 5** — for body-connected tgds and Boolean connected queries
  without common variables, with ``q`` acyclic and ``q'`` not semantically
  acyclic under ``Σ``:  ``q ⊆_Σ q'`` iff ``q ∧ q'`` is semantically acyclic
  under ``Σ``.  The conjunction ``q ∧ q'`` is the *SemAc instance* of the
  containment question.

* **Proposition 13 / the connecting operator** — the generic lower-bound
  pipeline ``AcBoolCont(C) → RestCont(C) → SemAc(C)``: an arbitrary
  containment question ``q ⊆_Σ q'`` with ``q`` acyclic Boolean is first
  *connected* (``c(q), c(q'), c(Σ)``), which forces every hypothesis of
  Proposition 5 to hold, and the connected conjunction is handed to the
  semantic-acyclicity decider.

The pipeline is how the paper transfers hardness from containment to
SemAc; running it forwards also gives an (intentionally roundabout) way of
*deciding* containment through SemAc, which the test suite uses to validate
the constructions against the direct chase-based containment procedures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..containment.constrained import ContainmentOutcome, contained_under_tgds
from ..dependencies.classification import is_body_connected_set
from ..dependencies.connecting import ConnectedInstance, connect
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from .semantic_acyclicity import (
    DEFAULT_SEMAC_CONFIG,
    SemAcConfig,
    SemAcDecision,
    decide_semantic_acyclicity_tgds,
)


# ----------------------------------------------------------------------
# Proposition 5: RestCont → SemAc
# ----------------------------------------------------------------------
@dataclass
class Proposition5Instance:
    """A containment question packaged as a semantic-acyclicity question.

    Attributes:
        acyclic_query: the acyclic Boolean CQ ``q`` (left-hand side).
        other_query: the Boolean CQ ``q'`` (right-hand side), renamed apart
            from ``q`` so the two share no variables.
        tgds: the constraint set ``Σ``.
        conjunction: the Boolean CQ ``q ∧ q'`` whose semantic acyclicity
            answers the containment question.
        hypothesis_notes: hypotheses of Proposition 5 that could not be
            verified (empty when everything checked out).
    """

    acyclic_query: ConjunctiveQuery
    other_query: ConjunctiveQuery
    tgds: Tuple[TGD, ...]
    conjunction: ConjunctiveQuery
    hypothesis_notes: List[str] = field(default_factory=list)

    @property
    def hypotheses_hold(self) -> bool:
        """``True`` iff every *checked* hypothesis of Proposition 5 held."""
        return not self.hypothesis_notes


def proposition5_instance(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
) -> Proposition5Instance:
    """Build the ``q ∧ q'`` instance of Proposition 5.

    The function renames ``q'`` apart from ``q`` (the proposition requires
    disjoint variables) and records which of the cheap syntactic hypotheses
    fail; it does **not** check that ``q'`` is not semantically acyclic under
    ``Σ`` (that check is itself a SemAc question — callers that need it can
    run the decider on ``q'`` first).
    """
    notes: List[str] = []
    if acyclic_query.head or other_query.head:
        notes.append("Proposition 5 is stated for Boolean queries")
    if not acyclic_query.is_acyclic():
        notes.append("the left-hand query is not acyclic")
    if not acyclic_query.is_connected():
        notes.append("the left-hand query is not connected")
    if not other_query.is_connected():
        notes.append("the right-hand query is not connected")
    if not is_body_connected_set(list(tgds)):
        notes.append("the tgds are not body-connected")

    renamed = other_query.rename_apart(acyclic_query.variables(), suffix="_p5")
    conjunction = acyclic_query.conjoin(renamed, name="prop5_conjunction")
    return Proposition5Instance(
        acyclic_query=acyclic_query,
        other_query=renamed,
        tgds=tuple(tgds),
        conjunction=conjunction,
        hypothesis_notes=notes,
    )


def containment_via_proposition5(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> Tuple[bool, SemAcDecision, Proposition5Instance]:
    """Decide ``q ⊆_Σ q'`` through Proposition 5.

    Returns the containment verdict (the semantic-acyclicity verdict of the
    conjunction), the underlying :class:`SemAcDecision` and the constructed
    instance.  The verdict is only meaningful when the proposition's
    hypotheses hold — in particular when ``q'`` is *not* semantically acyclic
    under ``Σ``; the caller is responsible for that hypothesis (the
    connecting pipeline below discharges it by construction).
    """
    instance = proposition5_instance(acyclic_query, other_query, tgds)
    decision = decide_semantic_acyclicity_tgds(instance.conjunction, list(tgds), config)
    return decision.semantically_acyclic, decision, instance


# ----------------------------------------------------------------------
# Proposition 13: AcBoolCont → RestCont → SemAc
# ----------------------------------------------------------------------
@dataclass
class SemAcReduction:
    """The full lower-bound pipeline applied to a containment question."""

    #: The connected triple ``(c(q), c(q'), c(Σ))``.
    connected: ConnectedInstance
    #: The Proposition 5 instance built from the connected triple.
    proposition5: Proposition5Instance

    @property
    def query(self) -> ConjunctiveQuery:
        """The SemAc input query ``c(q) ∧ c(q')``."""
        return self.proposition5.conjunction

    @property
    def tgds(self) -> Tuple[TGD, ...]:
        """The SemAc input constraints ``c(Σ)``."""
        return self.proposition5.tgds


def reduce_containment_to_semac(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
) -> SemAcReduction:
    """Apply the connecting operator and Proposition 5 to a containment question.

    The input is an ``AcBoolCont`` instance: a Boolean acyclic CQ ``q``, a
    Boolean CQ ``q'`` and a set ``Σ`` of tgds.  The output is a semantic-
    acyclicity instance that is a *yes*-instance iff ``q ⊆_Σ q'``.

    The connecting operator guarantees every hypothesis of Proposition 5:
    ``c(q)`` is acyclic and connected, ``c(q')`` is connected and contains an
    ``aux``-triangle (so it is not semantically acyclic under ``c(Σ)``, which
    never touches ``aux``), and ``c(Σ)`` is body-connected.
    """
    if acyclic_query.head or other_query.head:
        raise ValueError("the reduction is defined for Boolean queries")
    if not acyclic_query.is_acyclic():
        raise ValueError("the left-hand query of AcBoolCont must be acyclic")
    connected = connect(acyclic_query, other_query, tgds)
    instance = proposition5_instance(
        connected.left_query, connected.right_query, list(connected.tgds)
    )
    return SemAcReduction(connected=connected, proposition5=instance)


def decide_containment_via_semac(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: SemAcConfig = DEFAULT_SEMAC_CONFIG,
) -> Tuple[bool, SemAcDecision, SemAcReduction]:
    """Decide ``q ⊆_Σ q'`` by running SemAc on the connected conjunction.

    This is the paper's hardness pipeline run forwards.  It is, of course, a
    terrible way to decide containment in practice (that is the point of the
    lower bound); the test suite uses it to validate the construction by
    cross-checking against the direct chase-based containment procedure.
    """
    reduction = reduce_containment_to_semac(acyclic_query, other_query, tgds)
    decision = decide_semantic_acyclicity_tgds(
        reduction.query, list(reduction.tgds), config
    )
    return decision.semantically_acyclic, decision, reduction


def direct_containment(
    acyclic_query: ConjunctiveQuery,
    other_query: ConjunctiveQuery,
    tgds: Sequence[TGD],
) -> ContainmentOutcome:
    """The direct chase-based containment check (for cross-validation)."""
    return contained_under_tgds(acyclic_query, other_query, list(tgds))
