"""Semantic acyclicity under constraints: deciders, approximations, reductions."""

from .semantic_acyclicity import (
    DEFAULT_SEMAC_CONFIG,
    SemAcConfig,
    SemAcDecision,
    decide_semantic_acyclicity,
    decide_semantic_acyclicity_egds,
    decide_semantic_acyclicity_fds,
    decide_semantic_acyclicity_tgds,
    decide_semantic_acyclicity_unconstrained,
    find_acyclic_reformulation_tgds,
    is_semantically_acyclic,
    is_semantically_acyclic_under_tgds,
)
from .approximations import (
    ApproximationResult,
    acyclic_approximations,
    trivial_acyclic_queries,
)
from .ucq_acyclicity import (
    UCQSemAcDecision,
    decide_ucq_semantic_acyclicity,
    is_ucq_semantically_acyclic,
)
from .pcp import (
    PCPInstance,
    ReductionCheck,
    check_reduction,
    pcp_query,
    pcp_tgds,
    solution_path_query,
    word_path_query,
)
from .reductions import (
    Proposition5Instance,
    SemAcReduction,
    containment_via_proposition5,
    decide_containment_via_semac,
    direct_containment,
    proposition5_instance,
    reduce_containment_to_semac,
)
from . import candidates

__all__ = [
    "ApproximationResult",
    "DEFAULT_SEMAC_CONFIG",
    "PCPInstance",
    "Proposition5Instance",
    "ReductionCheck",
    "SemAcConfig",
    "SemAcDecision",
    "SemAcReduction",
    "UCQSemAcDecision",
    "acyclic_approximations",
    "candidates",
    "check_reduction",
    "containment_via_proposition5",
    "decide_semantic_acyclicity",
    "decide_semantic_acyclicity_egds",
    "decide_semantic_acyclicity_fds",
    "decide_semantic_acyclicity_tgds",
    "decide_containment_via_semac",
    "decide_semantic_acyclicity_unconstrained",
    "decide_ucq_semantic_acyclicity",
    "direct_containment",
    "find_acyclic_reformulation_tgds",
    "is_semantically_acyclic",
    "is_semantically_acyclic_under_tgds",
    "is_ucq_semantically_acyclic",
    "pcp_query",
    "pcp_tgds",
    "proposition5_instance",
    "reduce_containment_to_semac",
    "solution_path_query",
    "trivial_acyclic_queries",
    "word_path_query",
]
