"""Command-line interface to the library.

The CLI exposes the main workflows over files written in the surface syntax
of :mod:`repro.parser`:

* ``repro classify``    — classify a set of dependencies (guarded, sticky, …);
* ``repro decide``      — decide semantic acyclicity of a CQ under constraints;
* ``repro chase``       — chase a query or database and print the result;
* ``repro rewrite``     — UCQ-rewrite a CQ under tgds;
* ``repro approximate`` — compute acyclic approximations (Section 8.2);
* ``repro evaluate``    — evaluate a CQ over a data file.  ``--engine``
  picks the route (``auto`` | ``yannakakis`` | ``reformulation`` |
  ``plan`` | ``generic``) and ``--limit N`` streams only the first ``N``
  answers through :func:`repro.evaluation.evaluate_iter`;
* ``repro explain``     — print the chosen physical plan with estimated
  vs. observed cardinalities per operator (the EXPLAIN of the
  operator IR); ``--verify`` appends the static plan verifier's verdict;
* ``repro serve``       — drive a long-lived :class:`repro.service
  .QueryService` from a session script interleaving ``? query`` reads with
  ``+ atom`` / ``- atom`` writes; post-write queries are answered through
  the scan cache's incremental delta-merge path and the final counters
  (``delta_merges``, ``plan_hits``, …) make the amortisation visible.
  ``--verify`` audits the service's cache invariants (``SVC*``);
* ``repro check``       — static analysis only: run the workload analyzer
  (``WKL*`` diagnostics) over the query/dependencies and, with ``--data``,
  the plan verifier (``PLAN*``) over the plans the router would emit.
  Exit code 0/1/2 = worst severity (info/warning/error); ``--json`` emits
  the diagnostics machine-readably.

Usage examples::

    python -m repro decide --query "Interest(x,z), Class(y,z), Owns(x,y)" \
        --dependency "Interest(x,z), Class(y,z) -> Owns(x,y)"

    python -m repro explain --query "q(x,z) :- E(x,y), E(y,z)" --data facts.txt

    python -m repro classify --constraints ontology.rules

Dependency files contain one dependency per line (``%`` comments allowed);
data files contain one ground atom per line, e.g. ``Owns('alice', 'r1')``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import IO, List, Optional, Sequence, Union

from .chase import chase, chase_query, egd_chase, egd_chase_query
from .core import (
    SemAcConfig,
    acyclic_approximations,
    decide_semantic_acyclicity,
)
from .datamodel import Database
from .dependencies import EGD, TGD, classify, describe
from .parser import parse_atom, parse_dependency, parse_program, parse_query
from .rewriting import rewrite
from .evaluation import (
    AcyclicityRequired,
    NotSemanticallyAcyclic,
    YannakakisEvaluator,
    evaluate_generic,
    explain,
    iter_with_plan,
    resolve_route,
)


Dependency = Union[TGD, EGD]


# ----------------------------------------------------------------------
# Input loading
# ----------------------------------------------------------------------
def load_dependencies(
    constraints_path: Optional[str], inline: Sequence[str]
) -> List[Dependency]:
    """Load dependencies from a file and/or inline ``--dependency`` options."""
    dependencies: List[Dependency] = []
    if constraints_path:
        text = Path(constraints_path).read_text(encoding="utf-8")
        dependencies.extend(parse_program(text))
    for line in inline:
        dependencies.append(parse_dependency(line))
    return dependencies


def load_database(path: str) -> Database:
    """Load a database from a file with one ground atom per line."""
    database = Database()
    text = Path(path).read_text(encoding="utf-8")
    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip().rstrip(".")
        if not line:
            continue
        database.add(parse_atom(line))
    return database


def load_query(query_text: Optional[str], query_file: Optional[str]):
    """Load the query from ``--query`` or ``--query-file`` (exactly one)."""
    if (query_text is None) == (query_file is None):
        raise SystemExit("provide exactly one of --query or --query-file")
    if query_file is not None:
        # Same comment convention as the dependency/data loaders: anything
        # after '%' is stripped, blank lines are dropped.
        lines = Path(query_file).read_text(encoding="utf-8").splitlines()
        query_text = " ".join(
            stripped for line in lines if (stripped := line.split("%", 1)[0].strip())
        )
    return parse_query(query_text)


def _split_dependencies(dependencies: Sequence[Dependency]):
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    egds = [d for d in dependencies if isinstance(d, EGD)]
    return tgds, egds


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def _cmd_classify(args: argparse.Namespace, out: IO[str]) -> int:
    dependencies = load_dependencies(args.constraints, args.dependency)
    if not dependencies:
        print("no dependencies given", file=out)
        return 1
    tgds, egds = _split_dependencies(dependencies)
    if tgds:
        classes = classify(tgds)
        print(f"tgds: {len(tgds)}", file=out)
        print(f"classes: {', '.join(sorted(c.value for c in classes)) or 'none'}", file=out)
        print(describe(tgds), file=out)
    if egds:
        print(f"egds: {len(egds)}", file=out)
    return 0


def _cmd_decide(args: argparse.Namespace, out: IO[str]) -> int:
    query = load_query(args.query, args.query_file)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, egds = _split_dependencies(dependencies)
    if tgds and egds:
        raise SystemExit("mixing tgds and egds in one decision is not supported")
    config = SemAcConfig(exhaustive=args.exhaustive)
    decision = decide_semantic_acyclicity(query, tgds or egds, config)
    print(f"query: {query}", file=out)
    print(f"semantically acyclic: {decision.semantically_acyclic}", file=out)
    print(f"method: {decision.method}", file=out)
    if decision.witness is not None:
        print(f"witness: {decision.witness}", file=out)
    for note in decision.notes:
        print(f"note: {note}", file=out)
    return 0 if decision.semantically_acyclic else 2


def _cmd_chase(args: argparse.Namespace, out: IO[str]) -> int:
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, egds = _split_dependencies(dependencies)
    if args.data:
        source: Union[Database, None] = load_database(args.data)
        if tgds:
            result = chase(source, tgds, variant=args.variant, max_steps=args.max_steps)
            instance, terminated = result.instance, result.terminated
        else:
            result = egd_chase(source, egds, on_failure="return")
            instance, terminated = result.instance, not result.failed
    else:
        query = load_query(args.query, args.query_file)
        if tgds:
            result, _ = chase_query(
                query, tgds, variant=args.variant, max_steps=args.max_steps
            )
            instance, terminated = result.instance, result.terminated
        else:
            result, _ = egd_chase_query(query, egds, on_failure="return")
            instance, terminated = result.instance, not result.failed
    print(f"terminated: {terminated}", file=out)
    print(f"atoms: {len(instance)}", file=out)
    if args.print_atoms:
        for atom in instance.sorted_atoms():
            print(str(atom), file=out)
    return 0 if terminated else 3


def _cmd_rewrite(args: argparse.Namespace, out: IO[str]) -> int:
    query = load_query(args.query, args.query_file)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, egds = _split_dependencies(dependencies)
    if egds:
        raise SystemExit("rewriting is defined for tgds only")
    rewriting = rewrite(query, tgds)
    disjuncts = list(rewriting)
    print(f"disjuncts: {len(disjuncts)}", file=out)
    for disjunct in disjuncts:
        print(str(disjunct), file=out)
    return 0


def _cmd_approximate(args: argparse.Namespace, out: IO[str]) -> int:
    query = load_query(args.query, args.query_file)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, _ = _split_dependencies(dependencies)
    result = acyclic_approximations(query, tgds)
    approximations = list(result.approximations)
    print(f"approximations: {len(approximations)}", file=out)
    for approximation in approximations:
        print(str(approximation), file=out)
    return 0


def _cmd_evaluate(args: argparse.Namespace, out: IO[str]) -> int:
    query = load_query(args.query, args.query_file)
    database = load_database(args.data)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, egds = _split_dependencies(dependencies)
    limit = args.limit

    if args.engine == "generic":
        answers: Sequence = sorted(evaluate_generic(query, database), key=str)
        if limit is not None:
            # max(0, …): a non-positive limit means "no answers", matching
            # the streaming engines (a bare negative slice would instead
            # drop answers from the end).
            answers = answers[: max(0, limit)]
        how = "generic"
    else:
        try:
            route, evaluator = resolve_route(query, tgds=tgds, engine=args.engine)
        except (AcyclicityRequired, NotSemanticallyAcyclic) as error:
            raise SystemExit(str(error))
        # Egd-only constraint sets are outside resolve_route's tgd-based
        # reformulation search; fall back to the decision procedure so the
        # historical ``evaluate --dependency "R(x,y), R(x,z) -> y = z"``
        # behaviour is preserved.
        if route in ("plan", "decomposition") and egds and not tgds and args.engine == "auto":
            decision = decide_semantic_acyclicity(query, egds)
            if decision.semantically_acyclic and decision.witness is not None:
                route, evaluator = "reformulated", YannakakisEvaluator(decision.witness)
        how = "reformulated+yannakakis" if route == "reformulated" else route
        if evaluator is not None:
            stream = evaluator.iter_answers(
                database, limit=limit, backend=args.backend, parallel=args.parallel
            )
        else:
            stream = iter_with_plan(
                query, database, limit=limit, backend=args.backend,
                parallel=args.parallel,
            )
        answers = sorted(stream, key=str)

    print(f"evaluation: {how}", file=out)
    if limit is not None:
        print(f"limit: {limit}", file=out)
    print(f"answers: {len(answers)}", file=out)
    for answer in answers:
        rendered = ", ".join(str(term) for term in answer)
        print(f"({rendered})", file=out)
    return 0


def _cmd_serve(args: argparse.Namespace, out: IO[str]) -> int:
    """Drive a long-lived :class:`repro.service.QueryService` from a script.

    The session file interleaves reads and writes against one standing
    service — one operation per line, ``%`` comments allowed::

        ? q(x, z) :- E(x, y), E(y, z)   % submit a query, print its answers
        + E(4, 5)                        % insert a fact (epoch-bumping)
        - E(1, 2)                        % delete a fact

    Queries after a write are answered through the scan cache's delta-merge
    path (no rebuild); the final counter block makes that observable.
    """
    from .service import QueryService

    database = load_database(args.data)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, _ = _split_dependencies(dependencies)
    service = QueryService(database)
    text = Path(args.session).read_text(encoding="utf-8")
    for raw_line in text.splitlines():
        line = raw_line.split("%", 1)[0].strip()
        if not line:
            continue
        op, _, rest = line.partition(" ")
        rest = rest.strip().rstrip(".")
        if op == "?":
            query = parse_query(rest)
            answers = sorted(
                service.stream(
                    query, tgds=tgds, limit=args.limit, backend=args.backend,
                    parallel=args.parallel,
                ),
                key=str,
            )
            print(f"? {query}", file=out)
            print(f"answers: {len(answers)}", file=out)
            for answer in answers:
                rendered = ", ".join(str(term) for term in answer)
                print(f"({rendered})", file=out)
        elif op == "+":
            atom = parse_atom(rest)
            outcome = "added" if service.insert(atom) else "already present"
            print(f"+ {atom}: {outcome}", file=out)
        elif op == "-":
            atom = parse_atom(rest)
            outcome = "removed" if service.delete(atom) else "absent"
            print(f"- {atom}: {outcome}", file=out)
        else:
            raise SystemExit(
                f"unknown session line {raw_line!r} "
                "(use '? <query>', '+ <atom>', or '- <atom>')"
            )
    status = 0
    if args.verify:
        diagnostics = service.verify()
        if diagnostics:
            print(f"verification: {len(diagnostics)} diagnostic(s)", file=out)
            for diagnostic in diagnostics:
                print(f"  {diagnostic.render()}", file=out)
            if any(d.severity.name == "ERROR" for d in diagnostics):
                status = 2
        else:
            print("verification: clean", file=out)
    for name, value in service.counters().items():
        print(f"{name}: {value}", file=out)
    return status


def _verification_lines(evaluator: YannakakisEvaluator) -> List[str]:
    """The ``verification:`` block for an evaluator's two plan faces."""
    from .analysis import verify_plan

    diagnostics = list(verify_plan(evaluator.compile_answer_plan()))
    diagnostics.extend(verify_plan(evaluator.compile_stream_plan(), streaming=True))
    if not diagnostics:
        return ["verification: clean"]
    lines = [f"verification: {len(diagnostics)} diagnostic(s)"]
    lines.extend(f"  {diagnostic.render()}" for diagnostic in diagnostics)
    return lines


def _cmd_check(args: argparse.Namespace, out: IO[str]) -> int:
    from .analysis import (
        Diagnostic,
        Severity,
        errors,
        exit_code,
        verify_plan,
    )
    from .datamodel import Schema
    from .evaluation.join_plans import compile_plan, resolve_planner
    from .evaluation.operators import Project, first_occurrence_schema

    diagnostics: List[Diagnostic] = []
    try:
        dependencies = load_dependencies(args.constraints, args.dependency)
    except ValueError as error:
        dependencies = []
        diagnostics.append(
            Diagnostic(
                "WKL001", Severity.ERROR, f"dependencies do not parse: {error}"
            )
        )
    queries = []
    if args.query is not None or args.query_file is not None:
        try:
            queries.append(load_query(args.query, args.query_file))
        except ValueError as error:
            diagnostics.append(
                Diagnostic("WKL001", Severity.ERROR, f"query does not parse: {error}")
            )
    database = load_database(args.data) if args.data else None
    schema = (
        Schema.from_atoms(database.sorted_atoms()) if database is not None else None
    )

    from .analysis import check_workload

    diagnostics.extend(check_workload(queries, dependencies, schema=schema))

    route = None
    if database is not None and queries and not errors(diagnostics):
        tgds, _ = _split_dependencies(dependencies)
        query = queries[0]
        try:
            route, evaluator = resolve_route(query, tgds=tgds, engine=args.engine)
        except (AcyclicityRequired, NotSemanticallyAcyclic) as error:
            raise SystemExit(str(error))
        if evaluator is not None:
            diagnostics.extend(verify_plan(evaluator.compile_answer_plan()))
            diagnostics.extend(
                verify_plan(evaluator.compile_stream_plan(), streaming=True)
            )
        else:
            plan = resolve_planner(None)(query, database)
            if plan.steps:
                top = Project(
                    compile_plan(plan)[-1], first_occurrence_schema(query.head)
                )
                diagnostics.extend(verify_plan(top, streaming=True))

    code = exit_code(diagnostics)
    if args.json:
        counts = {
            str(severity): sum(1 for d in diagnostics if d.severity == severity)
            for severity in Severity
        }
        record = {
            "queries": len(queries),
            "dependencies": len(dependencies),
            "route": route,
            "diagnostics": [d.as_dict() for d in diagnostics],
            "counts": counts,
            "exit_code": code,
        }
        print(json.dumps(record, indent=2), file=out)
        return code
    print(
        f"checked: {len(queries)} query(ies), {len(dependencies)} dependency(ies)",
        file=out,
    )
    if route is not None:
        print(f"plan verified: {route} route", file=out)
    for diagnostic in diagnostics:
        print(diagnostic.render(), file=out)
    fatal = sum(1 for d in diagnostics if d.severity == Severity.ERROR)
    warnings = sum(1 for d in diagnostics if d.severity == Severity.WARNING)
    info = sum(1 for d in diagnostics if d.severity == Severity.INFO)
    verdict = "errors" if fatal else ("warnings" if warnings else "ok")
    print(
        f"result: {verdict} ({fatal} error(s), {warnings} warning(s), "
        f"{info} info)",
        file=out,
    )
    return code


def _cmd_explain(args: argparse.Namespace, out: IO[str]) -> int:
    query = load_query(args.query, args.query_file)
    database = load_database(args.data)
    dependencies = load_dependencies(args.constraints, args.dependency)
    tgds, egds = _split_dependencies(dependencies)
    execute = not args.no_execute
    try:
        # Mirror _cmd_evaluate's egd fallback so EXPLAIN reports the route
        # evaluate actually takes: egd-only constraint sets go through the
        # decision procedure, not the tgd reformulation search.
        if args.engine == "auto" and egds and not tgds and not query.is_acyclic():
            decision = decide_semantic_acyclicity(query, egds)
            if decision.semantically_acyclic and decision.witness is not None:
                witness = decision.witness
                evaluator = YannakakisEvaluator(witness)
                lines = [
                    f"query: {query}",
                    "route: reformulated",
                    f"reformulation: {witness}",
                    evaluator.explain(
                        database, execute=execute, backend=args.backend,
                        parallel=args.parallel,
                    ),
                ]
                if args.verify:
                    lines.extend(_verification_lines(evaluator))
                print("\n".join(lines), file=out)
                return 0
        report = explain(
            query,
            database,
            tgds=tgds,
            engine=args.engine,
            execute=execute,
            verify=args.verify,
            backend=args.backend,
            parallel=args.parallel,
        )
    except (AcyclicityRequired, NotSemanticallyAcyclic) as error:
        raise SystemExit(str(error))
    print(report, file=out)
    return 0


# ----------------------------------------------------------------------
# Argument parsing
# ----------------------------------------------------------------------
def _add_common_inputs(parser: argparse.ArgumentParser, with_query: bool = True) -> None:
    if with_query:
        parser.add_argument("--query", help="the CQ, in the surface syntax")
        parser.add_argument("--query-file", help="file containing the CQ")
    parser.add_argument("--constraints", help="file with one dependency per line")
    parser.add_argument(
        "--dependency",
        action="append",
        default=[],
        help="inline dependency (repeatable)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Semantic acyclicity under constraints (Barceló, Gottlob, Pieris, PODS 2016)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    classify_parser = subparsers.add_parser("classify", help="classify a dependency set")
    _add_common_inputs(classify_parser, with_query=False)
    classify_parser.set_defaults(handler=_cmd_classify)

    decide_parser = subparsers.add_parser("decide", help="decide semantic acyclicity")
    _add_common_inputs(decide_parser)
    decide_parser.add_argument(
        "--exhaustive", action="store_true", help="run the exhaustive candidate search"
    )
    decide_parser.set_defaults(handler=_cmd_decide)

    chase_parser = subparsers.add_parser("chase", help="chase a query or a data file")
    _add_common_inputs(chase_parser)
    chase_parser.add_argument("--data", help="data file to chase instead of a query")
    chase_parser.add_argument(
        "--variant", choices=("restricted", "oblivious"), default="restricted"
    )
    chase_parser.add_argument("--max-steps", type=int, default=10_000)
    chase_parser.add_argument(
        "--print-atoms", action="store_true", help="print every atom of the result"
    )
    chase_parser.set_defaults(handler=_cmd_chase)

    rewrite_parser = subparsers.add_parser("rewrite", help="UCQ-rewrite a CQ under tgds")
    _add_common_inputs(rewrite_parser)
    rewrite_parser.set_defaults(handler=_cmd_rewrite)

    approximate_parser = subparsers.add_parser(
        "approximate", help="compute acyclic approximations"
    )
    _add_common_inputs(approximate_parser)
    approximate_parser.set_defaults(handler=_cmd_approximate)

    evaluate_parser = subparsers.add_parser("evaluate", help="evaluate a CQ over a data file")
    _add_common_inputs(evaluate_parser)
    evaluate_parser.add_argument("--data", required=True, help="data file (one atom per line)")
    evaluate_parser.add_argument(
        "--engine",
        choices=("auto", "yannakakis", "reformulation", "decomposition", "plan", "generic"),
        default="auto",
        help="evaluation route (default: auto — Yannakakis, reformulation "
        "under constraints, or decomposition-guided bags for cyclic queries)",
    )
    evaluate_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="stream only the first N answers (evaluate_iter)",
    )
    evaluate_parser.add_argument(
        "--backend",
        choices=("tuple", "columnar"),
        default=None,
        help="execution backend (default: the REPRO_BACKEND environment "
        "variable, else tuple)",
    )
    evaluate_parser.add_argument(
        "--parallel",
        default=None,
        metavar="N|auto",
        help="worker count for the morsel-parallel columnar kernels "
        "(default: the REPRO_PARALLEL environment variable, else serial; "
        "'auto' uses the host CPU count)",
    )
    evaluate_parser.set_defaults(handler=_cmd_evaluate)

    explain_parser = subparsers.add_parser(
        "explain",
        help="print the physical plan with estimated vs. observed cardinalities",
    )
    _add_common_inputs(explain_parser)
    explain_parser.add_argument("--data", required=True, help="data file (one atom per line)")
    explain_parser.add_argument(
        "--engine",
        choices=("auto", "yannakakis", "reformulation", "decomposition", "plan"),
        default="auto",
        help="force the explained route (default: auto)",
    )
    explain_parser.add_argument(
        "--no-execute",
        action="store_true",
        help="show estimates only (skip running the plan for observed rows)",
    )
    explain_parser.add_argument(
        "--verify",
        action="store_true",
        help="run the static plan verifier on the explained plan and append "
        "its diagnostics",
    )
    explain_parser.add_argument(
        "--backend",
        choices=("tuple", "columnar"),
        default=None,
        help="execution backend (default: the REPRO_BACKEND environment "
        "variable, else tuple)",
    )
    explain_parser.add_argument(
        "--parallel",
        default=None,
        metavar="N|auto",
        help="worker count for the morsel-parallel columnar kernels "
        "(default: the REPRO_PARALLEL environment variable, else serial; "
        "'auto' uses the host CPU count)",
    )
    explain_parser.set_defaults(handler=_cmd_explain)

    serve_parser = subparsers.add_parser(
        "serve",
        help="drive a long-lived QueryService from a session script of "
        "'? query' / '+ atom' / '- atom' lines",
    )
    serve_parser.add_argument("--data", required=True, help="data file (one atom per line)")
    serve_parser.add_argument(
        "--session",
        required=True,
        help="session script: one operation per line — '? <query>' submits, "
        "'+ <atom>' inserts, '- <atom>' deletes ('%%' comments allowed)",
    )
    serve_parser.add_argument(
        "--constraints", help="file of dependencies, one per line"
    )
    serve_parser.add_argument(
        "--dependency",
        action="append",
        default=[],
        metavar="DEP",
        help="inline dependency (repeatable)",
    )
    serve_parser.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="per-query answer cap (the service's backpressure knob)",
    )
    serve_parser.add_argument(
        "--backend",
        choices=("tuple", "columnar"),
        default=None,
        help="execution backend (default: the REPRO_BACKEND environment "
        "variable, else tuple)",
    )
    serve_parser.add_argument(
        "--parallel",
        default=None,
        metavar="N|auto",
        help="worker count for the morsel-parallel columnar kernels "
        "(default: the REPRO_PARALLEL environment variable, else serial; "
        "'auto' uses the host CPU count)",
    )
    serve_parser.add_argument(
        "--verify",
        action="store_true",
        help="audit the service's cache invariants (SVC diagnostics) after "
        "the session; exit 2 on errors",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    check_parser = subparsers.add_parser(
        "check",
        help="static analysis: workload diagnostics plus (with --data) plan "
        "verification; exit code 0/1/2 = worst severity",
    )
    _add_common_inputs(check_parser)
    check_parser.add_argument(
        "--data",
        help="optional data file; also statically verifies the plans the "
        "router would emit for the query",
    )
    check_parser.add_argument(
        "--engine",
        choices=("auto", "yannakakis", "reformulation", "decomposition", "plan"),
        default="auto",
        help="route whose plans to verify with --data (default: auto)",
    )
    check_parser.add_argument(
        "--json", action="store_true", help="emit the diagnostics as JSON"
    )
    check_parser.set_defaults(handler=_cmd_check)

    return parser


def main(argv: Optional[Sequence[str]] = None, out: Optional[IO[str]] = None) -> int:
    """Entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    stream = out if out is not None else sys.stdout
    return args.handler(args, stream)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
