"""UCQ rewriting of CQs under tgds (the engine behind Section 5)."""

from .ucq_rewriting import (
    DEFAULT_REWRITING_CONFIG,
    RewritingBudgetExceeded,
    RewritingConfig,
    rewrite,
    rewrite_step,
    rewriting_contained_under_tgds,
)
from .bounds import (
    max_arity,
    predicate_count,
    predicates_of_problem,
    small_query_bound_guarded,
    small_query_bound_ucq_rewritable,
    ucq_rewritable_height_bound,
)

__all__ = [
    "DEFAULT_REWRITING_CONFIG",
    "RewritingBudgetExceeded",
    "RewritingConfig",
    "max_arity",
    "predicate_count",
    "predicates_of_problem",
    "rewrite",
    "rewrite_step",
    "rewriting_contained_under_tgds",
    "small_query_bound_guarded",
    "small_query_bound_ucq_rewritable",
    "ucq_rewritable_height_bound",
]
