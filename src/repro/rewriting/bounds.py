"""Size bounds on UCQ rewritings (the functions ``f_C`` of Section 5).

For a CQ ``q`` and a set ``Σ`` of tgds, let ``p_{q,Σ}`` be the number of
predicates occurring in ``q`` and ``Σ`` and ``a_{q,Σ}`` the maximum arity of
those predicates.  Propositions 17 and 19 give, for non-recursive and sticky
sets respectively, the bound

    f_C(q, Σ) = p_{q,Σ} · (a_{q,Σ} · |q| + 1) ^ a_{q,Σ}

on the height (maximal disjunct size) of a UCQ rewriting, which in turn
bounds (after doubling, Proposition 15) the size of the acyclic witness that
the SemAc procedures must guess.
"""

from __future__ import annotations

from typing import Iterable, Sequence, Set

from ..datamodel import Predicate
from ..dependencies.tgd import TGD, tgd_set_predicates
from ..queries.cq import ConjunctiveQuery


def predicates_of_problem(query: ConjunctiveQuery, tgds: Sequence[TGD]) -> Set[Predicate]:
    """The predicates occurring in ``q`` or ``Σ`` (the set behind ``p_{q,Σ}``)."""
    return query.predicates() | tgd_set_predicates(tgds)


def predicate_count(query: ConjunctiveQuery, tgds: Sequence[TGD]) -> int:
    """``p_{q,Σ}``: number of predicates in the problem."""
    return len(predicates_of_problem(query, tgds))


def max_arity(query: ConjunctiveQuery, tgds: Sequence[TGD]) -> int:
    """``a_{q,Σ}``: maximum arity over the problem's predicates."""
    predicates = predicates_of_problem(query, tgds)
    return max((p.arity for p in predicates), default=0)


def ucq_rewritable_height_bound(query: ConjunctiveQuery, tgds: Sequence[TGD]) -> int:
    """The bound ``f_C(q, Σ)`` of Propositions 17 and 19."""
    p = predicate_count(query, tgds)
    a = max_arity(query, tgds)
    if a == 0:
        return max(p, 1)
    return p * (a * len(query) + 1) ** a


def small_query_bound_guarded(query: ConjunctiveQuery) -> int:
    """Acyclic-witness size bound for acyclicity-preserving classes (Prop. 8)."""
    return 2 * len(query)


def small_query_bound_ucq_rewritable(query: ConjunctiveQuery, tgds: Sequence[TGD]) -> int:
    """Acyclic-witness size bound for UCQ-rewritable classes (Prop. 15)."""
    return 2 * ucq_rewritable_height_bound(query, tgds)
