"""Backward UCQ rewriting of a CQ under a set of tgds (Definition 2).

A class ``C`` of sets of tgds is *UCQ rewritable* when, for every CQ ``q``
and every ``Σ ∈ C``, one can construct a UCQ ``Q`` such that for every CQ
``q'``: ``q' ⊆_Σ q`` iff ``c(x̄) ∈ Q(D_{q'})``.  Non-recursive and sticky
sets enjoy this property (Propositions 17/19), and it is the engine behind
the SemAc procedures of Section 5.

The implementation is a piece-based backward rewriting in the style of
XRewrite [20]: repeatedly pick a disjunct ``g``, a tgd ``τ`` (renamed apart)
and a *piece* — a non-empty set of atoms of ``g`` together with an assignment
to head atoms of ``τ`` admitting a most general unifier that keeps the
existential variables of ``τ`` local to the piece — and replace the piece by
the unified body of ``τ``.  New disjuncts subsumed by existing ones are
pruned.  The procedure terminates for non-recursive and sticky sets; for
other inputs the budgets below stop it and a
:class:`RewritingBudgetExceeded` error is raised.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Constant, Term, Variable
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from ..queries.homomorphism import homomorphisms
from ..queries.ucq import UnionOfConjunctiveQueries


class RewritingBudgetExceeded(RuntimeError):
    """Raised when the rewriting loop exceeds its disjunct or round budget."""


@dataclass
class RewritingConfig:
    """Budgets for the rewriting loop."""

    max_disjuncts: int = 2_000
    max_rounds: int = 200
    max_atoms_per_disjunct: int = 200


DEFAULT_REWRITING_CONFIG = RewritingConfig()


# ----------------------------------------------------------------------
# Most general unifiers via union-find
# ----------------------------------------------------------------------
class UnificationFailure(Exception):
    """Two distinct constants were forced to be equal."""


class _UnionFind:
    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}

    def find(self, term: Term) -> Term:
        parent = self._parent.setdefault(term, term)
        if parent == term:
            return term
        root = self.find(parent)
        self._parent[term] = root
        return root

    def union(self, left: Term, right: Term) -> None:
        left_root, right_root = self.find(left), self.find(right)
        if left_root == right_root:
            return
        if isinstance(left_root, Constant) and isinstance(right_root, Constant):
            raise UnificationFailure(f"cannot unify constants {left_root} and {right_root}")
        # Keep constants as class representatives.
        if isinstance(left_root, Constant):
            self._parent[right_root] = left_root
        else:
            self._parent[left_root] = right_root

    def classes(self) -> Dict[Term, Set[Term]]:
        groups: Dict[Term, Set[Term]] = {}
        for term in list(self._parent):
            groups.setdefault(self.find(term), set()).add(term)
        return groups


def _unify_atom_pairs(pairs: Iterable[Tuple[Atom, Atom]]) -> Optional[_UnionFind]:
    """Unify the term tuples of the given atom pairs; ``None`` on failure."""
    union_find = _UnionFind()
    try:
        for left, right in pairs:
            if left.predicate != right.predicate:
                return None
            for left_term, right_term in zip(left.terms, right.terms):
                union_find.union(left_term, right_term)
    except UnificationFailure:
        return None
    return union_find


# ----------------------------------------------------------------------
# Piece rewriting steps
# ----------------------------------------------------------------------
def _choose_representatives(
    union_find: _UnionFind,
    answer_variables: Set[Variable],
    query_variables: Set[Variable],
) -> Dict[Term, Term]:
    """Build the substitution class → representative.

    Preference order: genuine constants, answer variables of the query,
    other query variables, anything else.
    """
    substitution: Dict[Term, Term] = {}
    for representative, members in union_find.classes().items():
        chosen: Term = representative
        constants = [m for m in members if isinstance(m, Constant)]
        if constants:
            chosen = constants[0]
        else:
            answer = sorted(
                (m for m in members if m in answer_variables), key=str
            )
            if answer:
                chosen = answer[0]
            else:
                own = sorted((m for m in members if m in query_variables), key=str)
                if own:
                    chosen = own[0]
                else:
                    chosen = sorted(members, key=str)[0]
        for member in members:
            substitution[member] = chosen
    return substitution


def rewrite_step(
    query: ConjunctiveQuery,
    tgd: TGD,
) -> List[ConjunctiveQuery]:
    """All one-step piece rewritings of ``query`` with ``tgd``.

    The tgd is renamed apart from the query internally.
    """
    renamed = tgd.rename_apart(query.variables())
    head_atoms = list(renamed.head)
    existential = renamed.existential_variables()
    frontier = renamed.frontier_variables()
    answer_variables = set(query.head)
    query_variables = query.variables()

    head_predicates = {atom.predicate for atom in head_atoms}
    candidate_indexes = [
        index
        for index, atom in enumerate(query.body)
        if atom.predicate in head_predicates
    ]
    results: List[ConjunctiveQuery] = []

    for piece_size in range(1, len(candidate_indexes) + 1):
        for piece in itertools.combinations(candidate_indexes, piece_size):
            per_atom_choices = []
            for index in piece:
                matches = [
                    head_atom
                    for head_atom in head_atoms
                    if head_atom.predicate == query.body[index].predicate
                ]
                per_atom_choices.append(matches)
            for assignment in itertools.product(*per_atom_choices):
                pairs = [
                    (query.body[index], head_atom)
                    for index, head_atom in zip(piece, assignment)
                ]
                union_find = _unify_atom_pairs(pairs)
                if union_find is None:
                    continue

                classes = union_find.classes()
                piece_atom_variables: Set[Variable] = set()
                for index in piece:
                    piece_atom_variables |= query.body[index].variables()
                outside_variables: Set[Variable] = set()
                for index, atom in enumerate(query.body):
                    if index not in piece:
                        outside_variables |= atom.variables()

                valid = True
                for representative, members in classes.items():
                    class_existential = {m for m in members if m in existential}
                    if not class_existential:
                        continue
                    if len(class_existential) > 1:
                        valid = False
                        break
                    # The remaining members must be variables of the query that
                    # are local to the piece (not answer variables, not shared
                    # with atoms outside the piece) — no constants, no frontier
                    # variables of the tgd.
                    others = members - class_existential
                    for member in others:
                        if isinstance(member, Constant):
                            valid = False
                            break
                        if member in frontier or member in existential:
                            valid = False
                            break
                        if member in answer_variables or member in outside_variables:
                            valid = False
                            break
                        if member not in piece_atom_variables:
                            valid = False
                            break
                    if not valid:
                        break
                if not valid:
                    continue

                substitution = _choose_representatives(
                    union_find, answer_variables, query_variables
                )

                # Answer variables must stay variables.
                head_ok = True
                new_head: List[Variable] = []
                for variable in query.head:
                    image = substitution.get(variable, variable)
                    if not isinstance(image, Variable):
                        head_ok = False
                        break
                    new_head.append(image)
                if not head_ok:
                    continue

                new_body: List[Atom] = []
                seen: Set[Atom] = set()
                for atom in renamed.body:
                    image = atom.apply(substitution)
                    if image not in seen:
                        seen.add(image)
                        new_body.append(image)
                for index, atom in enumerate(query.body):
                    if index in piece:
                        continue
                    image = atom.apply(substitution)
                    if image not in seen:
                        seen.add(image)
                        new_body.append(image)

                results.append(
                    ConjunctiveQuery(new_head, new_body, name=f"{query.name}_rw")
                )
    return results


# ----------------------------------------------------------------------
# The full rewriting loop
# ----------------------------------------------------------------------
def _subsumed_by(candidate: ConjunctiveQuery, existing: ConjunctiveQuery) -> bool:
    """``candidate ⊆ existing`` as plain CQs (existing is more general)."""
    from ..containment.cq_containment import cq_contained_in

    return cq_contained_in(candidate, existing)


def rewrite(
    query: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: RewritingConfig = DEFAULT_REWRITING_CONFIG,
) -> UnionOfConjunctiveQueries:
    """Compute a UCQ rewriting of ``query`` under ``tgds``.

    The resulting UCQ ``Q`` satisfies: for every CQ ``q'``,
    ``q' ⊆_Σ query`` iff ``c(x̄) ∈ Q(D_{q'})`` — provided the rewriting
    terminates, which it does for non-recursive and sticky sets.

    Raises:
        RewritingBudgetExceeded: when the budgets of ``config`` are hit.
    """
    disjuncts: List[ConjunctiveQuery] = [query]
    frontier: List[ConjunctiveQuery] = [query]
    rounds = 0

    while frontier:
        rounds += 1
        if rounds > config.max_rounds:
            raise RewritingBudgetExceeded(
                f"rewriting exceeded {config.max_rounds} rounds"
            )
        next_frontier: List[ConjunctiveQuery] = []
        for disjunct in frontier:
            for tgd in tgds:
                for candidate in rewrite_step(disjunct, tgd):
                    if len(candidate.body) > config.max_atoms_per_disjunct:
                        raise RewritingBudgetExceeded(
                            "rewriting produced a disjunct with more than "
                            f"{config.max_atoms_per_disjunct} atoms"
                        )
                    if any(_subsumed_by(candidate, existing) for existing in disjuncts):
                        continue
                    disjuncts.append(candidate)
                    next_frontier.append(candidate)
                    if len(disjuncts) > config.max_disjuncts:
                        raise RewritingBudgetExceeded(
                            f"rewriting exceeded {config.max_disjuncts} disjuncts"
                        )
        frontier = next_frontier

    return UnionOfConjunctiveQueries(disjuncts, name=f"rewrite({query.name})")


def rewriting_contained_under_tgds(
    left: ConjunctiveQuery,
    right: ConjunctiveQuery,
    tgds: Sequence[TGD],
    config: RewritingConfig = DEFAULT_REWRITING_CONFIG,
    rewriting: Optional[UnionOfConjunctiveQueries] = None,
) -> bool:
    """Decide ``left ⊆_Σ right`` through the UCQ rewriting of ``right``.

    This is the containment procedure used for the UCQ-rewritable classes
    (non-recursive and sticky sets); it is exact whenever the rewriting
    terminates.  A pre-computed ``rewriting`` of ``right`` may be supplied to
    amortise the cost over many left-hand sides.
    """
    if len(left.head) != len(right.head):
        return False
    if rewriting is None:
        rewriting = rewrite(right, tgds, config=config)
    database, freezing = left.freeze()
    answer = tuple(freezing[v] for v in left.head)
    return rewriting.holds_in(database, answer)
