"""Static verification of physical-operator plans — no execution involved.

:func:`verify_plan` walks any :mod:`repro.evaluation.operators` DAG bottom-up
and re-derives every invariant the executor silently relies on, reporting
violations as :class:`~repro.analysis.diagnostics.Diagnostic` records:

======== ========================================================== ========
code     invariant                                                  severity
======== ========================================================== ========
PLAN001  the operator graph is a DAG (no cycles)                    error
PLAN002  schemas are tuples of distinct variables                   error
PLAN003  each operator type has its exact child count               error
PLAN004  Project/Select/Distinct targets are bound by the input     error
PLAN005  join/semi-join key positions agree with both operands      error
PLAN006  output schema matches the operator's semantics             error
PLAN007  CursorEnumerate tree, node ops and carries are in sync     error
PLAN008  estimates present on every node once any node has one      warning
PLAN009  estimates are finite and non-negative                      error
PLAN010  scan atoms are well-formed (arity, no nulls)               error
PLAN011  streaming: a cursor plan keeps CursorEnumerate at the root warning
PLAN012  streaming: hash-join build sides are join subtrees         warning
PLAN013  batch face: operator type is in the width registry         warning
PLAN014  batch face: width/cached encoding agree with the schema    error
PLAN015  bag nodes agree with their schema and decomposition tree   error
PLAN016  cached scan results carry the expected database epoch      error
PLAN017  parallel meta: shard/morsel layout tiles the operands      error
======== ========================================================== ========

The key idea is *recomputation*: the verifier re-runs the same position
arithmetic the compilers used (``_shared_schema``, ``compile_scan_pattern``,
projection index resolution) from the child schemas alone and compares the
result with what the node actually stores.  A plan mutated after
construction — a dropped join key, a re-rooted child, a stale projection —
is therefore caught even though each individual attribute still "looks"
plausible.

``streaming=True`` additionally applies the streaming-face shape checks
(PLAN011/PLAN012); materialising plans — e.g. the bushy Yannakakis answer
assembly — are verified without them.

The batch face (:meth:`~repro.evaluation.operators.Operator.iter_batches`,
PR 7's columnar backend) is covered by :data:`_BATCH_WIDTHS`: for every
registered operator type the verifier recomputes the integer-column width
its batch implementation produces and compares it with ``len(op.schema)``;
a cached encoded result (``op._encoded``) must agree with the schema too
(PLAN014).  An operator type outside the registry cannot be checked and is
reported as PLAN013 — :mod:`scripts.lint_conventions` enforces that every
operator overriding the batch face is registered here.  Batch checks run
only on nodes whose tuple-face invariants verified clean, so a corrupted
node reports the precise tuple-face code rather than a duplicate.

A node executed by the morsel-driven parallel layer records its shard and
morsel layout (``op._parallel_meta``, PR 10); PLAN017 re-adds the recorded
sizes and compares them with the operand row counts — a merge that lost or
duplicated a shard no longer tiles the operands and is caught without
re-running the kernel.  Like PLAN016, this audits *executed* state, so it
only fires on plans that have already run (the meta is ``None`` otherwise).

:func:`verify_or_raise` turns ERROR findings into a
:class:`PlanVerificationError`; :func:`maybe_verify` is the ``REPRO_VERIFY``
environment hook the evaluation seams call on every emitted plan.
"""

from __future__ import annotations

import math
import os
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..datamodel import Null, Variable
from ..evaluation.operators import (
    BagNode,
    CursorEnumerate,
    Distinct,
    HashJoin,
    Operator,
    Project,
    Scan,
    Select,
    SemiJoin,
    _shared_schema,
)
from ..evaluation.relation import compile_scan_pattern
from .diagnostics import Diagnostic, Severity, errors


class PlanVerificationError(AssertionError):
    """An emitted plan failed static verification (ERROR diagnostics)."""

    def __init__(self, diagnostics: Sequence[Diagnostic], where: str = "") -> None:
        self.diagnostics = list(diagnostics)
        location = f" in {where}" if where else ""
        details = "; ".join(d.render() for d in self.diagnostics)
        super().__init__(f"plan verification failed{location}: {details}")


def verification_enabled() -> bool:
    """Whether the ``REPRO_VERIFY`` environment hook is switched on."""
    return os.environ.get("REPRO_VERIFY", "").strip().lower() not in (
        "",
        "0",
        "false",
        "no",
        "off",
    )


def _label(operator: Operator) -> str:
    try:
        return operator.label()
    except Exception:
        return type(operator).__name__


# ----------------------------------------------------------------------
# Traversal
# ----------------------------------------------------------------------
def _collect(root: Operator) -> Tuple[List[Operator], List[Diagnostic]]:
    """Post-order unique nodes plus PLAN001 diagnostics for back edges.

    Iterative three-colour DFS; a back edge is reported once and not
    followed, so the verifier terminates even on cyclic "DAGs".
    """
    diagnostics: List[Diagnostic] = []
    order: List[Operator] = []
    GREY, BLACK = 1, 2
    colour: Dict[int, int] = {}
    stack: List[Tuple[Operator, bool]] = [(root, False)]
    while stack:
        node, done = stack.pop()
        if done:
            colour[id(node)] = BLACK
            order.append(node)
            continue
        if colour.get(id(node)) is not None:
            continue
        colour[id(node)] = GREY
        stack.append((node, True))
        for child in reversed(tuple(node.children)):
            state = colour.get(id(child))
            if state == GREY:
                diagnostics.append(
                    Diagnostic(
                        "PLAN001",
                        Severity.ERROR,
                        f"operator {_label(child)} is its own ancestor",
                        subject=_label(node),
                    )
                )
                continue
            if state is None:
                stack.append((child, False))
    return order, diagnostics


# ----------------------------------------------------------------------
# Per-node checks
# ----------------------------------------------------------------------
_CHILD_COUNTS = {
    Scan: 0,
    Select: 1,
    Project: 1,
    Distinct: 1,
    BagNode: 1,
    SemiJoin: 2,
    HashJoin: 2,
}

#: Batch-face width registry: for each operator type, recompute the number
#: of integer columns its ``iter_batches``/``_materialize_encoded``
#: implementation produces, from the child schemas and the operator's own
#: stored position arithmetic.  Keyed by exact type — a subclass may change
#: the batch semantics, so it must register (or fall back to the generic
#: encode-after-materialize path) explicitly.  ``lint_conventions.py``
#: cross-checks this registry against ``operators.py``.
_BATCH_WIDTHS = {
    Scan: lambda op: len(compile_scan_pattern(op.atom.terms).variables),
    Select: lambda op: len(op.children[0].schema),
    Project: lambda op: len(op._positions),
    Distinct: lambda op: len(op.children[0].schema),
    SemiJoin: lambda op: len(op.children[0].schema),
    HashJoin: lambda op: len(op.children[0].schema) + len(op._right_residual),
    BagNode: lambda op: len(op.children[0].schema),
    CursorEnumerate: lambda op: len(op.node_carry[op.tree.root]),
}


def _check_schema(operator: Operator, diagnostics: List[Diagnostic]) -> bool:
    schema = operator.schema
    label = _label(operator)
    if not isinstance(schema, tuple) or any(
        not isinstance(entry, Variable) for entry in schema
    ):
        diagnostics.append(
            Diagnostic(
                "PLAN002",
                Severity.ERROR,
                f"schema {schema!r} contains a non-variable entry",
                subject=label,
            )
        )
        return False
    if len(set(schema)) != len(schema):
        diagnostics.append(
            Diagnostic(
                "PLAN002",
                Severity.ERROR,
                f"schema ({', '.join(map(str, schema))}) repeats a variable",
                subject=label,
            )
        )
        return False
    return True


def _check_child_count(operator: Operator, diagnostics: List[Diagnostic]) -> bool:
    label = _label(operator)
    if isinstance(operator, CursorEnumerate):
        try:
            expected = len(operator.tree)
        except Exception:
            expected = None
        if expected is not None and len(operator.children) != expected:
            diagnostics.append(
                Diagnostic(
                    "PLAN003",
                    Severity.ERROR,
                    f"expected one child per join-tree node ({expected}), "
                    f"got {len(operator.children)}",
                    subject=label,
                )
            )
            return False
        return True
    expected = _CHILD_COUNTS.get(type(operator))
    if expected is not None and len(operator.children) != expected:
        diagnostics.append(
            Diagnostic(
                "PLAN003",
                Severity.ERROR,
                f"{type(operator).__name__} takes {expected} "
                f"child(ren), got {len(operator.children)}",
                subject=label,
            )
        )
        return False
    return True


def _check_scan(operator: Scan, diagnostics: List[Diagnostic]) -> None:
    atom = operator.atom
    label = _label(operator)
    if len(atom.terms) != atom.predicate.arity:
        diagnostics.append(
            Diagnostic(
                "PLAN010",
                Severity.ERROR,
                f"atom has {len(atom.terms)} terms but predicate "
                f"{atom.predicate.name} has arity {atom.predicate.arity}",
                subject=label,
            )
        )
        return
    if any(isinstance(term, Null) for term in atom.terms):
        diagnostics.append(
            Diagnostic(
                "PLAN010",
                Severity.ERROR,
                "scan atom contains a labelled null",
                subject=label,
            )
        )
        return
    try:
        expected = tuple(compile_scan_pattern(atom.terms).variables)
    except Exception as error:
        diagnostics.append(
            Diagnostic(
                "PLAN010",
                Severity.ERROR,
                f"scan pattern does not compile: {error}",
                subject=label,
            )
        )
        return
    if operator.schema != expected:
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                f"scan schema ({', '.join(map(str, operator.schema))}) differs "
                f"from the atom's variables ({', '.join(map(str, expected))})",
                subject=label,
            )
        )


def _check_select(operator: Select, diagnostics: List[Diagnostic]) -> None:
    child = operator.children[0]
    label = _label(operator)
    if operator.schema != child.schema:
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                "Select must preserve its input schema",
                subject=label,
            )
        )
    for position, term in operator._checks:
        if not 0 <= position < len(child.schema):
            diagnostics.append(
                Diagnostic(
                    "PLAN004",
                    Severity.ERROR,
                    f"selection check at position {position} is outside the "
                    f"input schema (width {len(child.schema)})",
                    subject=label,
                )
            )
            continue
        if operator.binding.get(child.schema[position]) != term:
            diagnostics.append(
                Diagnostic(
                    "PLAN004",
                    Severity.ERROR,
                    f"selection check at position {position} disagrees with "
                    f"the binding of {child.schema[position]}",
                    subject=label,
                )
            )


def _check_project(operator: Project, diagnostics: List[Diagnostic]) -> None:
    child = operator.children[0]
    label = _label(operator)
    available = set(child.schema)
    unbound = [v for v in operator.schema if v not in available]
    if unbound:
        diagnostics.append(
            Diagnostic(
                "PLAN004",
                Severity.ERROR,
                f"projection target(s) {', '.join(map(str, unbound))} are not "
                "bound by the input",
                subject=label,
            )
        )
        return
    expected = tuple(child.schema.index(v) for v in operator.schema)
    if operator._positions != expected:
        diagnostics.append(
            Diagnostic(
                "PLAN004",
                Severity.ERROR,
                f"projection positions {operator._positions} are stale "
                f"(recomputed {expected})",
                subject=label,
            )
        )


def _check_distinct(operator: Distinct, diagnostics: List[Diagnostic]) -> None:
    if operator.schema != operator.children[0].schema:
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                "Distinct must preserve its input schema",
                subject=_label(operator),
            )
        )


def _check_semijoin(operator: SemiJoin, diagnostics: List[Diagnostic]) -> None:
    left, right = operator.children
    label = _label(operator)
    shared, left_key, _ = _shared_schema(left, right)
    if (operator._shared, operator._left_key) != (shared, left_key):
        diagnostics.append(
            Diagnostic(
                "PLAN005",
                Severity.ERROR,
                f"semi-join keys ({', '.join(map(str, operator._shared))}) at "
                f"{operator._left_key} disagree with the operand schemas "
                f"(expected ({', '.join(map(str, shared))}) at {left_key})",
                subject=label,
            )
        )
    if operator.schema != left.schema:
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                "SemiJoin must preserve its left input schema",
                subject=label,
            )
        )


def _check_hashjoin(operator: HashJoin, diagnostics: List[Diagnostic]) -> None:
    left, right = operator.children
    label = _label(operator)
    shared, left_key, residual = _shared_schema(left, right)
    stored = (operator._shared, operator._left_key, operator._right_residual)
    if stored != (shared, left_key, residual):
        diagnostics.append(
            Diagnostic(
                "PLAN005",
                Severity.ERROR,
                f"hash-join keys/residual {stored} disagree with the operand "
                f"schemas (expected {(shared, left_key, residual)})",
                subject=label,
            )
        )
    expected_schema = left.schema + tuple(right.schema[i] for i in residual)
    if operator.schema != expected_schema:
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                f"hash-join schema ({', '.join(map(str, operator.schema))}) is "
                "not the left schema plus the right residual "
                f"({', '.join(map(str, expected_schema))})",
                subject=label,
            )
        )


def _check_bagnode(operator: BagNode, diagnostics: List[Diagnostic]) -> None:
    """PLAN015 (node-local): a bag marker passes its child through and its
    declared bag is exactly the schema the bag sub-plan produces."""
    label = _label(operator)
    child = operator.children[0]
    if operator.schema != child.schema:
        diagnostics.append(
            Diagnostic(
                "PLAN015",
                Severity.ERROR,
                f"bag node schema ({', '.join(map(str, operator.schema))}) "
                "differs from its sub-plan's "
                f"({', '.join(map(str, child.schema))})",
                subject=label,
            )
        )
        return
    if frozenset(operator.schema) != operator.bag:
        diagnostics.append(
            Diagnostic(
                "PLAN015",
                Severity.ERROR,
                f"declared bag {{{', '.join(sorted(map(str, operator.bag)))}}} "
                "disagrees with the materialised schema "
                f"({', '.join(map(str, operator.schema))})",
                subject=label,
            )
        )


def _check_bag_tree_sync(
    nodes: Sequence[Operator], diagnostics: List[Diagnostic]
) -> None:
    """PLAN015 (tree-level): bag operators agree with the decomposition tree.

    Wherever a cursor enumeration runs over bag operators, each bag's
    declared variables must equal the vertices of the join-tree node it
    is plugged into — a decomposition edge or bag mutated after
    compilation desynchronises the semijoin passes silently.  The
    semi-join reducers wrap each node's base operator, keeping it on the
    left spine, so the check unwraps ``SemiJoin`` chains first.
    """
    for node in nodes:
        if not isinstance(node, CursorEnumerate):
            continue
        try:
            tree = node.tree
            entries = list(node.node_ops.items())
        except Exception:
            continue  # PLAN007 covers a malformed enumeration
        for identifier, op in entries:
            while isinstance(op, SemiJoin) and op.children:
                op = op.children[0]
            if not isinstance(op, BagNode):
                continue
            try:
                vertices = frozenset(
                    term
                    for term in tree.node(identifier).vertices
                    if isinstance(term, Variable)
                )
            except Exception:
                continue
            if vertices != op.bag:
                diagnostics.append(
                    Diagnostic(
                        "PLAN015",
                        Severity.ERROR,
                        f"bag {{{', '.join(sorted(map(str, op.bag)))}}} of node "
                        f"{identifier} disagrees with the decomposition-tree "
                        "vertices "
                        f"{{{', '.join(sorted(map(str, vertices)))}}}",
                        subject=_label(op),
                    )
                )


def _check_enumerate(
    operator: CursorEnumerate, diagnostics: List[Diagnostic]
) -> None:
    label = _label(operator)

    def report(message: str) -> None:
        diagnostics.append(
            Diagnostic("PLAN007", Severity.ERROR, message, subject=label)
        )

    try:
        tree = operator.tree
        identifiers = set(tree.node_ids())
        if set(operator.node_ops) != identifiers:
            report("node operators do not cover the join-tree nodes exactly")
            return
        if set(operator.node_carry) != identifiers:
            report("carry schemas do not cover the join-tree nodes exactly")
            return
        bottom_up = tree.bottom_up_order()
        if list(operator._bottom_up) != bottom_up:
            report("cached bottom-up order is stale against the join tree")
            return
        if operator.children != tuple(operator.node_ops[i] for i in bottom_up):
            report("children are out of sync with the node operators")
            return
        if operator.schema != operator.node_carry[tree.root]:
            report("output schema differs from the root carry schema")
            return
        for identifier in bottom_up:
            node_schema = set(operator.node_ops[identifier].schema)
            probe = [
                term
                for term in tree.shared_with_parent(identifier)
                if isinstance(term, Variable)
            ]
            missing = [v for v in probe if v not in node_schema]
            if missing:
                report(
                    f"probe variable(s) {', '.join(map(str, missing))} of node "
                    f"{identifier} are not produced by its operator"
                )
                return
            child_carries: Set[Variable] = set()
            for child in tree.children(identifier):
                child_carries.update(operator.node_carry[child])
            orphaned = [
                v
                for v in operator.node_carry[identifier]
                if v not in node_schema and v not in child_carries
            ]
            if orphaned:
                report(
                    f"carry variable(s) {', '.join(map(str, orphaned))} of node "
                    f"{identifier} come from neither the node nor its children"
                )
                return
    except Exception as error:
        report(f"enumeration structure could not be checked: {error}")


def _check_batch_face(operator: Operator, diagnostics: List[Diagnostic]) -> None:
    """PLAN013/PLAN014: the batch face agrees with the (clean) tuple face.

    Only called on nodes whose tuple-face checks produced no findings, so a
    single corruption reports the precise tuple-face code instead of being
    duplicated as a width mismatch.
    """
    label = _label(operator)
    recompute = _BATCH_WIDTHS.get(type(operator))
    if recompute is None:
        diagnostics.append(
            Diagnostic(
                "PLAN013",
                Severity.WARNING,
                f"{type(operator).__name__} is not in the batch-face width "
                "registry — iter_batches() falls back to the generic "
                "encode-after-materialize path and its shape cannot be "
                "statically checked",
                subject=label,
            )
        )
        return
    try:
        width = recompute(operator)
    except Exception as error:
        diagnostics.append(
            Diagnostic(
                "PLAN014",
                Severity.ERROR,
                f"batch-face width could not be recomputed: {error}",
                subject=label,
            )
        )
        return
    if width != len(operator.schema):
        diagnostics.append(
            Diagnostic(
                "PLAN014",
                Severity.ERROR,
                f"batch face produces {width} integer column(s) but the "
                f"schema has width {len(operator.schema)}",
                subject=label,
            )
        )
        return
    encoded = getattr(operator, "_encoded", None)
    if encoded is not None and (
        tuple(encoded.schema) != tuple(operator.schema)
        or len(encoded.store.columns) != len(operator.schema)
    ):
        diagnostics.append(
            Diagnostic(
                "PLAN014",
                Severity.ERROR,
                "cached encoded result (schema "
                f"({', '.join(map(str, encoded.schema))}), "
                f"{len(encoded.store.columns)} column(s)) is out of sync "
                "with the operator schema "
                f"({', '.join(map(str, operator.schema))})",
                subject=label,
            )
        )


def _check_node(operator: Operator, diagnostics: List[Diagnostic]) -> None:
    if not _check_schema(operator, diagnostics):
        return
    if not _check_child_count(operator, diagnostics):
        return
    before = len(diagnostics)
    try:
        if isinstance(operator, Scan):
            _check_scan(operator, diagnostics)
        elif isinstance(operator, Select):
            _check_select(operator, diagnostics)
        elif isinstance(operator, Project):
            _check_project(operator, diagnostics)
        elif isinstance(operator, Distinct):
            _check_distinct(operator, diagnostics)
        elif isinstance(operator, SemiJoin):
            _check_semijoin(operator, diagnostics)
        elif isinstance(operator, HashJoin):
            _check_hashjoin(operator, diagnostics)
        elif isinstance(operator, BagNode):
            _check_bagnode(operator, diagnostics)
        elif isinstance(operator, CursorEnumerate):
            _check_enumerate(operator, diagnostics)
    except Exception as error:  # a corrupt node must not crash the verifier
        diagnostics.append(
            Diagnostic(
                "PLAN006",
                Severity.ERROR,
                f"operator invariants could not be recomputed: {error}",
                subject=_label(operator),
            )
        )
    if len(diagnostics) == before:
        _check_batch_face(operator, diagnostics)


# ----------------------------------------------------------------------
# Whole-plan checks
# ----------------------------------------------------------------------
def _check_estimates(
    nodes: Sequence[Operator], diagnostics: List[Diagnostic]
) -> None:
    annotated = [n for n in nodes if n.estimated_rows is not None]
    if annotated and len(annotated) < len(nodes):
        missing = [_label(n) for n in nodes if n.estimated_rows is None]
        diagnostics.append(
            Diagnostic(
                "PLAN008",
                Severity.WARNING,
                f"{len(missing)} of {len(nodes)} operators carry no estimate "
                "(EXPLAIN will render '?'): " + ", ".join(missing),
            )
        )
    for node in annotated:
        value = node.estimated_rows
        valid = isinstance(value, (int, float)) and not isinstance(value, bool)
        if valid and math.isfinite(value) and value >= 0:
            continue
        diagnostics.append(
            Diagnostic(
                "PLAN009",
                Severity.ERROR,
                f"estimated rows {value!r} is not a finite non-negative number",
                subject=_label(node),
            )
        )


def _check_streaming(
    root: Operator, nodes: Sequence[Operator], diagnostics: List[Diagnostic]
) -> None:
    has_cursor = any(isinstance(n, CursorEnumerate) for n in nodes)
    if has_cursor and not isinstance(root, CursorEnumerate):
        diagnostics.append(
            Diagnostic(
                "PLAN011",
                Severity.WARNING,
                "a cursor plan is wrapped by "
                f"{type(root).__name__}, so the enumeration no longer "
                "streams from the root",
                subject=_label(root),
            )
        )
    if has_cursor:
        return
    for node in nodes:
        if isinstance(node, HashJoin) and not _materialisable_build(
            node.children[1]
        ):
            diagnostics.append(
                Diagnostic(
                    "PLAN012",
                    Severity.WARNING,
                    "streaming hash join probes a "
                    f"{type(node.children[1]).__name__} build side — not a "
                    "join subtree over scans, so the probe side cannot be "
                    "materialised into a cached partition",
                    subject=_label(node),
                )
            )


def _materialisable_build(node: Operator) -> bool:
    """Whether a hash-join build side is a join subtree over base scans.

    Streaming chains probe the build side as a materialised partition;
    scans and (bushy) hash-join subtrees over scans materialise into one
    cleanly, while pipelining operators (Select/Distinct/SemiJoin/...)
    in the build side mean the partition cannot come from the cache.
    """
    if isinstance(node, Scan):
        return True
    if isinstance(node, HashJoin):
        return all(_materialisable_build(child) for child in node.children)
    return False


def _check_epochs(
    nodes: List[Operator], expected_epoch: int, diagnostics: List[Diagnostic]
) -> None:
    """PLAN016: cached scan results must carry the current database epoch.

    Scan nodes cache their materialised relation in ``_result``; relations
    served by an epoch-aware scan cache are stamped with the database
    mutation epoch they reflect (:meth:`repro.evaluation.relation.Relation
    .stamp_epoch`).  A stamp disagreeing with ``expected_epoch`` means the
    plan holds pre-mutation rows — the stale-answer bug the epoch machinery
    exists to prevent.  Unstamped results (plain per-call scans) are not
    flagged.
    """
    for node in nodes:
        if not isinstance(node, Scan):
            continue
        result = getattr(node, "_result", None)
        if result is None:
            continue
        stamped = getattr(result, "stamped_epoch", None)
        stamp = stamped() if callable(stamped) else None
        if stamp is not None and stamp != expected_epoch:
            diagnostics.append(
                Diagnostic(
                    "PLAN016",
                    Severity.ERROR,
                    f"cached scan result is stamped with epoch {stamp} but "
                    f"the database is at epoch {expected_epoch}",
                    subject=_label(node),
                )
            )


#: Parallel kernels with a hash-sharded build side (``shard_sizes``) and,
#: per binary kernel, which child feeds the probe/build side.  The unary
#: kernels (project/select) morselise their single input and carry no
#: shards.
_BINARY_KERNELS = ("join", "semijoin")
_PARALLEL_KERNELS = _BINARY_KERNELS + ("project", "select")


def _check_parallel_meta(
    nodes: Sequence[Operator], diagnostics: List[Diagnostic]
) -> None:
    """PLAN017: recorded shard/morsel layouts tile the operand relations.

    A parallel kernel records the layout it executed with
    (:class:`repro.evaluation.parallel.ParallelMeta`): the contiguous
    probe morsels and, for the binary kernels, the hash shards of the
    build side.  The deterministic merge is only answer-identical to the
    serial path if that layout partitions the operands exactly — every
    probe row in exactly one morsel, every build row in exactly one
    shard.  The check re-adds the recorded sizes and compares them with
    the row counts the meta claims and, where the children still cache
    their encoded results, with the actual operand lengths.
    """
    for node in nodes:
        meta = getattr(node, "_parallel_meta", None)
        if meta is None:
            continue
        label = _label(node)

        def report(message: str) -> None:
            diagnostics.append(
                Diagnostic("PLAN017", Severity.ERROR, message, subject=label)
            )

        kernel = getattr(meta, "kernel", None)
        if kernel not in _PARALLEL_KERNELS:
            report(f"unknown parallel kernel {kernel!r}")
            continue
        if meta.workers < 2:
            report(
                f"parallel meta records {meta.workers} worker(s) — a serial "
                "run must not attach a parallel layout"
            )
        morsel_total = sum(meta.morsel_sizes)
        if morsel_total != meta.probe_rows:
            report(
                f"morsel sizes {meta.morsel_sizes} sum to {morsel_total} but "
                f"the probe side has {meta.probe_rows} row(s) — the merge "
                "lost or duplicated a morsel"
            )
        shard_total = sum(meta.shard_sizes)
        if kernel in _BINARY_KERNELS:
            if shard_total != meta.build_rows:
                report(
                    f"shard sizes {meta.shard_sizes} sum to {shard_total} but "
                    f"the build side has {meta.build_rows} row(s) — the hash "
                    "sharding lost or duplicated a build row"
                )
        elif meta.shard_sizes or meta.build_rows:
            report(
                f"unary kernel '{kernel}' must not record build shards "
                f"(got shard_sizes={meta.shard_sizes}, "
                f"build_rows={meta.build_rows})"
            )
        # Where the children still cache their encoded inputs, the meta's
        # claimed operand sizes must match what the kernel actually read.
        children = tuple(node.children)
        if not children:
            continue
        probe_encoded = getattr(children[0], "_encoded", None)
        if probe_encoded is not None and len(probe_encoded) != meta.probe_rows:
            report(
                f"parallel meta records {meta.probe_rows} probe row(s) but "
                f"the probe child caches {len(probe_encoded)} — the layout "
                "is out of sync with the operand"
            )
        if kernel in _BINARY_KERNELS and len(children) > 1:
            build_encoded = getattr(children[1], "_encoded", None)
            if (
                build_encoded is not None
                and len(build_encoded) != meta.build_rows
            ):
                report(
                    f"parallel meta records {meta.build_rows} build row(s) "
                    f"but the build child caches {len(build_encoded)} — the "
                    "shard layout is out of sync with the operand"
                )


# ----------------------------------------------------------------------
# Public entry points
# ----------------------------------------------------------------------
def verify_plan(
    root: Operator,
    *,
    streaming: bool = False,
    expected_epoch: Optional[int] = None,
) -> List[Diagnostic]:
    """Statically verify an operator DAG; return all findings (never raises).

    ``streaming=True`` additionally applies the streaming-face shape checks
    (PLAN011/PLAN012) — use it for plans meant to run on
    :meth:`~repro.evaluation.operators.Operator.iter_rows`.
    ``expected_epoch`` (when given) additionally checks every scan node's
    cached result against the database mutation epoch (PLAN016) — the
    query-service layer passes its database's current epoch here.
    """
    nodes, diagnostics = _collect(root)
    for node in nodes:
        _check_node(node, diagnostics)
    _check_estimates(nodes, diagnostics)
    _check_bag_tree_sync(nodes, diagnostics)
    _check_parallel_meta(nodes, diagnostics)
    if streaming:
        _check_streaming(root, nodes, diagnostics)
    if expected_epoch is not None:
        _check_epochs(nodes, expected_epoch, diagnostics)
    return diagnostics


def verify_or_raise(
    root: Operator, *, streaming: bool = False, where: str = ""
) -> List[Diagnostic]:
    """Verify a plan and raise :class:`PlanVerificationError` on ERRORs.

    WARNING/INFO findings are returned, not raised: an emitted plan without
    cost annotations is legitimate (annotation is EXPLAIN's job).
    """
    diagnostics = verify_plan(root, streaming=streaming)
    fatal = errors(diagnostics)
    if fatal:
        raise PlanVerificationError(fatal, where=where)
    return diagnostics


def maybe_verify(
    root: Operator, *, streaming: bool = False, where: str = ""
) -> Optional[List[Diagnostic]]:
    """The ``REPRO_VERIFY`` hook: verify when the environment enables it.

    Called by the evaluation seams (:func:`repro.evaluation.semacyclic_eval
    .resolve_route`, the Yannakakis plan compilers, the join-plan
    entry points) on every emitted plan; a no-op returning ``None`` when
    ``REPRO_VERIFY`` is unset/0/false.
    """
    if not verification_enabled():
        return None
    return verify_or_raise(root, streaming=streaming, where=where)
