"""The shared diagnostic spine of the static-analysis passes.

Both analysis passes — the IR plan verifier (:mod:`repro.analysis
.verify_plan`) and the workload analyzer (:mod:`repro.analysis
.check_workload`) — report their findings as :class:`Diagnostic` records
instead of raising: a stable machine-readable code (``PLAN001`` …,
``WKL001`` …), a :class:`Severity`, a human-readable message and the
offending subject (an operator label, a query atom, a tgd).  Collecting
records rather than failing fast is what lets one ``repro check`` run
surface *every* problem of a workload at once, lets the CLI map the worst
finding to a process exit code, and lets ``--json`` emit the findings to
other tools unchanged.

The code registry lives here too (:data:`CODES`), so the codes stay unique,
documented and stable across the passes — they are part of the public
surface the tests pin down.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Dict, Iterable, List


class Severity(IntEnum):
    """Ordered severities; the CLI exit code is the worst severity seen."""

    INFO = 0
    WARNING = 1
    ERROR = 2

    def __str__(self) -> str:
        return self.name.lower()


#: Every diagnostic code either pass can emit, with a one-line meaning.
#: ``PLAN*`` codes come from the IR plan verifier, ``WKL*`` codes from the
#: workload analyzer.  Codes are append-only: a released code never changes
#: meaning (tests assert exact codes against the mutation corpus).
CODES: Dict[str, str] = {
    "PLAN001": "cycle in the operator DAG",
    "PLAN002": "malformed operator schema (duplicate or non-variable entry)",
    "PLAN003": "wrong number of children for the operator type",
    "PLAN004": "projection/selection target not bound by the input",
    "PLAN005": "join key positions disagree with the operand schemas",
    "PLAN006": "output schema inconsistent with the operator semantics",
    "PLAN007": "malformed CursorEnumerate (tree/ops/carry out of sync)",
    "PLAN008": "cost estimate missing on a partially annotated plan",
    "PLAN009": "invalid cost estimate (negative or non-finite)",
    "PLAN010": "scan atom malformed (arity mismatch or null argument)",
    "PLAN011": "streaming plan does not put CursorEnumerate at the root",
    "PLAN012": "streaming hash-join chain is not left-deep over scans",
    "PLAN013": "operator type is outside the batch-face width registry",
    "PLAN014": "batch face out of sync (width or cached encoding vs schema)",
    "PLAN015": "bag node out of sync (bag vs schema or vs decomposition tree)",
    "PLAN016": "cached scan result is stamped with a stale database epoch",
    "PLAN017": "parallel shard/morsel layout does not tile the operands",
    "SVC001": "service scan cache epoch desynchronised from its database",
    "SVC002": "cached plan's statistics drifted past the re-plan threshold",
    "WKL001": "malformed or unsafe query",
    "WKL002": "one predicate used with two different arities",
    "WKL003": "atom disagrees with the declared schema",
    "WKL004": "query trivially unsatisfiable under the egds",
    "WKL005": "no chase-termination certificate for the tgds",
    "WKL006": "chase termination certified",
    "WKL007": "tgd set is not sticky",
    "WKL008": "query body is disconnected (cross product)",
}


@dataclass(frozen=True)
class Diagnostic:
    """One finding of a static-analysis pass.

    Attributes:
        code: stable registry code (a key of :data:`CODES`).
        severity: how bad the finding is; drives the CLI exit code.
        message: one human-readable sentence, self-contained.
        subject: the offending thing — an operator label, an atom, a tgd —
            rendered as text (empty when the finding is global).
        hint: optional remediation or context sentence.
    """

    code: str
    severity: Severity
    message: str
    subject: str = ""
    hint: str = ""

    def __post_init__(self) -> None:
        if self.code not in CODES:
            raise ValueError(f"unregistered diagnostic code {self.code!r}")

    def as_dict(self) -> Dict[str, str]:
        """A JSON-ready rendering (severity by name, lowercase)."""
        record = {
            "code": self.code,
            "severity": str(self.severity),
            "message": self.message,
        }
        if self.subject:
            record["subject"] = self.subject
        if self.hint:
            record["hint"] = self.hint
        return record

    def render(self) -> str:
        """The one-line text rendering used by ``repro check``."""
        subject = f" [{self.subject}]" if self.subject else ""
        return f"{self.code} {self.severity}: {self.message}{subject}"


def max_severity(diagnostics: Iterable[Diagnostic]) -> Severity:
    """The worst severity present (``INFO`` when there are none)."""
    worst = Severity.INFO
    for diagnostic in diagnostics:
        if diagnostic.severity > worst:
            worst = diagnostic.severity
    return worst


def exit_code(diagnostics: Iterable[Diagnostic]) -> int:
    """Map findings to a process exit code: 0 clean/info, 1 warning, 2 error."""
    return int(max_severity(diagnostics))


def errors(diagnostics: Iterable[Diagnostic]) -> List[Diagnostic]:
    """The ERROR-severity findings only."""
    return [d for d in diagnostics if d.severity >= Severity.ERROR]
