"""Static analysis: the plan verifier and the workload analyzer.

Two passes over one diagnostic spine (:mod:`repro.analysis.diagnostics`):

* :func:`verify_plan` — certify any physical-operator DAG *before* it runs
  (``PLAN001``–``PLAN012``); :func:`maybe_verify` is the ``REPRO_VERIFY``
  environment hook the evaluation seams call on every emitted plan.
* :func:`check_workload` / :func:`check_query` / :func:`check_dependencies`
  — certify queries and dependency sets before any database is touched
  (``WKL001``–``WKL008``), with explained chase-termination verdicts.

Both surface through the ``repro check`` CLI subcommand and the
``explain --verify`` flag.
"""

from .check_workload import (
    check_dependencies,
    check_query,
    check_query_parts,
    check_workload,
)
from .diagnostics import CODES, Diagnostic, Severity, errors, exit_code, max_severity
from .verify_plan import (
    PlanVerificationError,
    maybe_verify,
    verification_enabled,
    verify_or_raise,
    verify_plan,
)

__all__ = [
    "CODES",
    "Diagnostic",
    "PlanVerificationError",
    "Severity",
    "check_dependencies",
    "check_query",
    "check_query_parts",
    "check_workload",
    "errors",
    "exit_code",
    "max_severity",
    "maybe_verify",
    "verification_enabled",
    "verify_or_raise",
    "verify_plan",
]
