"""Static diagnostics for query/dependency workloads — the ``WKL*`` pass.

The plan verifier certifies what the compilers *emit*; this pass certifies
what the user *submits*: conjunctive queries and dependency sets, before any
database is touched.  Each check reuses the decision machinery the paper's
procedures are already built on, and its diagnostic *explains* the verdict
rather than just stating it:

======= ============================================================ ========
code    finding                                                      severity
======= ============================================================ ========
WKL001  query fails construction (unsafe head, nulls, parse error)   error
WKL002  one predicate name used with two different arities           error
WKL003  an atom disagrees with a declared :class:`Schema`            error/
        (arity clash = error, undeclared predicate = warning)        warning
WKL004  the query is trivially unsatisfiable under the egds (the     error
        egd chase of the frozen query must identify two distinct
        constants — :func:`repro.chase.egd_chase.egd_chase_query`)
WKL005  no chase-termination certificate applies to the tgds; the    warning
        message exhibits a position-graph cycle through a special
        edge (the weak-acyclicity refutation witness)
WKL006  chase termination certified, with the certificate's          info
        explanation (:func:`repro.chase.termination
        .certify_termination`)
WKL007  the tgd set is not sticky: some tgd joins a marked variable  info
        (:func:`repro.dependencies.marking.compute_marking`)
WKL008  the query body is disconnected — evaluation will contain a   info
        cross product
======= ============================================================ ========

All checks collect :class:`~repro.analysis.diagnostics.Diagnostic` records
and never raise; ``repro check`` maps the worst severity to its exit code.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from ..chase.egd_chase import EGDChaseFailure, egd_chase_query
from ..chase.termination import certify_termination
from ..datamodel import Atom, Predicate, Schema
from ..dependencies.egd import EGD
from ..dependencies.marking import compute_marking
from ..dependencies.predicate_graph import (
    Position,
    PositionGraph,
    position_dependency_graph,
)
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery
from .diagnostics import Diagnostic, Severity

Dependency = Union[TGD, EGD]


def _format_position(position: Position) -> str:
    predicate, index = position
    return f"{predicate.name}[{index}]"


def _format_cycle(cycle: Sequence[Position]) -> str:
    return " -> ".join(_format_position(p) for p in cycle)


def _special_edge_cycle(graph: PositionGraph) -> Optional[List[Position]]:
    """A position-graph cycle through a special edge, if one exists.

    Mirrors the reachability argument of :func:`repro.dependencies
    .predicate_graph.is_weakly_acyclic`: a refuting cycle exists iff for
    some special edge ``(u, v)`` the source ``u`` is reachable from ``v``.
    The returned path starts and ends at ``u`` and its first hop is the
    special edge.
    """
    adjacency: Dict[Position, List[Position]] = {
        position: [] for position in graph.positions
    }
    for source, target in sorted(graph.all_edges(), key=str):
        adjacency.setdefault(source, []).append(target)

    for source, target in sorted(graph.special_edges, key=str):
        if source == target:
            return [source, target]
        parents: Dict[Position, Position] = {}
        seen = {target}
        frontier = [target]
        found = False
        while frontier and not found:
            next_frontier: List[Position] = []
            for node in frontier:
                for neighbour in adjacency.get(node, ()):
                    if neighbour in seen:
                        continue
                    seen.add(neighbour)
                    parents[neighbour] = node
                    if neighbour == source:
                        found = True
                        break
                    next_frontier.append(neighbour)
                if found:
                    break
            frontier = next_frontier
        if not found:
            continue
        path = [source]
        while path[-1] != target:
            path.append(parents[path[-1]])
        path.reverse()  # target … back to source
        return [source] + path
    return None


def _split(dependencies: Sequence[Dependency]) -> Tuple[List[TGD], List[EGD]]:
    tgds = [d for d in dependencies if isinstance(d, TGD)]
    egds = [d for d in dependencies if isinstance(d, EGD)]
    return tgds, egds


def _dependency_atoms(dependency: Dependency) -> List[Atom]:
    if isinstance(dependency, TGD):
        return list(dependency.body) + list(dependency.head)
    return list(dependency.body)


# ----------------------------------------------------------------------
# Query checks
# ----------------------------------------------------------------------
def check_query_parts(head: Sequence, body: Iterable[Atom]) -> List[Diagnostic]:
    """WKL001 on raw (head, body) parts that may not construct a query.

    :class:`~repro.queries.cq.ConjunctiveQuery` enforces head safety and
    null-freeness at construction; this wrapper converts the raised
    ``ValueError`` into the diagnostic the analyzer reports.
    """
    body = tuple(body)
    try:
        query = ConjunctiveQuery(tuple(head), body)
    except ValueError as error:
        rendered = ", ".join(str(atom) for atom in body)
        return [
            Diagnostic(
                "WKL001",
                Severity.ERROR,
                f"query is malformed: {error}",
                subject=rendered,
            )
        ]
    return check_query(query)


def check_query(
    query: ConjunctiveQuery,
    *,
    schema: Optional[Schema] = None,
    egds: Sequence[EGD] = (),
) -> List[Diagnostic]:
    """All query-level diagnostics for one (already constructed) CQ."""
    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_arity_clashes([query.body], context=str(query)))
    if schema is not None:
        diagnostics.extend(_check_against_schema(query.body, schema))
    if egds and not diagnostics:
        diagnostics.extend(_check_egd_satisfiability(query, egds))
    if len(query.body) > 1 and not query.is_connected():
        components = len(query.connected_components())
        diagnostics.append(
            Diagnostic(
                "WKL008",
                Severity.INFO,
                f"query body falls into {components} connected components; "
                "evaluation joins them as a cross product",
                subject=str(query),
            )
        )
    return diagnostics


def _check_arity_clashes(
    atom_groups: Iterable[Iterable[Atom]], context: str = ""
) -> List[Diagnostic]:
    """WKL002: the same predicate name used with two different arities."""
    diagnostics: List[Diagnostic] = []
    seen: Dict[str, Tuple[Predicate, Atom]] = {}
    for atoms in atom_groups:
        for atom in atoms:
            name = atom.predicate.name
            previous = seen.get(name)
            if previous is None:
                seen[name] = (atom.predicate, atom)
                continue
            declared, first_atom = previous
            if declared.arity != atom.predicate.arity:
                diagnostics.append(
                    Diagnostic(
                        "WKL002",
                        Severity.ERROR,
                        f"predicate {name} is used with arity "
                        f"{declared.arity} (in {first_atom}) and with arity "
                        f"{atom.predicate.arity} (in {atom})",
                        subject=context or str(atom),
                    )
                )
    return diagnostics


def _check_against_schema(
    atoms: Iterable[Atom], schema: Schema
) -> List[Diagnostic]:
    """WKL003: atoms against a declared schema (arity error, unknown warning)."""
    diagnostics: List[Diagnostic] = []
    for atom in atoms:
        if atom.predicate.name not in schema:
            diagnostics.append(
                Diagnostic(
                    "WKL003",
                    Severity.WARNING,
                    f"predicate {atom.predicate.name} is not declared in the "
                    "schema (the scan will be empty)",
                    subject=str(atom),
                )
            )
            continue
        declared = schema.predicate(atom.predicate.name)
        if declared.arity != atom.predicate.arity:
            diagnostics.append(
                Diagnostic(
                    "WKL003",
                    Severity.ERROR,
                    f"atom uses arity {atom.predicate.arity} but the schema "
                    f"declares {atom.predicate.name}/{declared.arity}",
                    subject=str(atom),
                )
            )
    return diagnostics


def _check_egd_satisfiability(
    query: ConjunctiveQuery, egds: Sequence[EGD]
) -> List[Diagnostic]:
    """WKL004: the egd chase of the frozen query fails ⇒ no answer on any D ⊨ Σ."""
    try:
        egd_chase_query(query, egds, on_failure="raise")
    except EGDChaseFailure as failure:
        return [
            Diagnostic(
                "WKL004",
                Severity.ERROR,
                f"query is unsatisfiable on databases satisfying the egds: "
                f"{failure}",
                subject=str(query),
            )
        ]
    return []


# ----------------------------------------------------------------------
# Dependency checks
# ----------------------------------------------------------------------
def check_dependencies(
    dependencies: Sequence[Dependency], *, schema: Optional[Schema] = None
) -> List[Diagnostic]:
    """All dependency-level diagnostics: arities, termination, stickiness."""
    diagnostics: List[Diagnostic] = []
    tgds, _ = _split(dependencies)
    diagnostics.extend(
        _check_arity_clashes(
            [_dependency_atoms(d) for d in dependencies], context="dependencies"
        )
    )
    if schema is not None:
        for dependency in dependencies:
            diagnostics.extend(
                _check_against_schema(_dependency_atoms(dependency), schema)
            )
    if tgds:
        certificate = certify_termination(tgds)
        if certificate.guaranteed:
            bound = (
                f" (depth bound {certificate.depth_bound})"
                if certificate.depth_bound is not None
                else ""
            )
            diagnostics.append(
                Diagnostic(
                    "WKL006",
                    Severity.INFO,
                    f"chase termination certified ({certificate.reason}): "
                    f"{certificate.explanation}{bound}",
                    subject="tgds",
                )
            )
        else:
            cycle = _special_edge_cycle(position_dependency_graph(tgds))
            witness = (
                f"; refuting cycle through a special edge: {_format_cycle(cycle)}"
                if cycle
                else ""
            )
            diagnostics.append(
                Diagnostic(
                    "WKL005",
                    Severity.WARNING,
                    "no chase-termination certificate applies (not full, "
                    f"non-recursive or weakly acyclic){witness}",
                    subject="tgds",
                    hint="chase calls on these tgds need explicit step budgets",
                )
            )
        marking = compute_marking(tgds)
        if not marking.is_sticky():
            offenders = marking.violating_tgds()
            samples = "; ".join(str(tgds[i]) for i in offenders[:3])
            diagnostics.append(
                Diagnostic(
                    "WKL007",
                    Severity.INFO,
                    f"tgd set is not sticky: {len(offenders)} tgd(s) repeat a "
                    f"marked variable in their body ({samples})",
                    subject="tgds",
                )
            )
    return diagnostics


# ----------------------------------------------------------------------
# Whole-workload entry point
# ----------------------------------------------------------------------
def check_workload(
    queries: Sequence[ConjunctiveQuery] = (),
    dependencies: Sequence[Dependency] = (),
    *,
    schema: Optional[Schema] = None,
) -> List[Diagnostic]:
    """Run every workload check over queries and dependencies together.

    Cross-atom arity clashes (WKL002) are detected across the whole
    workload — a query atom clashing with a tgd head is as fatal as two
    query atoms clashing with each other — so the per-query/per-dependency
    passes skip their local WKL002 re-detection here.
    """
    _, egds = _split(dependencies)
    groups: List[List[Atom]] = [list(q.body) for q in queries]
    groups.extend(_dependency_atoms(d) for d in dependencies)
    diagnostics = _check_arity_clashes(groups, context="workload")
    for query in queries:
        diagnostics.extend(
            d
            for d in check_query(query, schema=schema, egds=egds)
            if d.code != "WKL002"
        )
    diagnostics.extend(
        d
        for d in check_dependencies(dependencies, schema=schema)
        if d.code != "WKL002"
    )
    return diagnostics
