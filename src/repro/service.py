"""A long-lived query service with epoch-aware caches and a plan cache.

Everything else in the repo is one-shot-process: each entry point builds its
scan cache, statistics, and plan, answers, and throws the lot away.  A
standing system serving many clients over one mutating database (the
ROADMAP's query-service arc) needs the opposite: caches that *survive*
requests and stay correct across writes.  :class:`QueryService` is that
substrate:

* it owns one epoch-aware :class:`~repro.evaluation.batch.ScanCache` (and
  its append-only :class:`~repro.evaluation.encoding.TermEncoder`) plus one
  :class:`~repro.evaluation.operators.Statistics` per database, so scans,
  partitions, encodings, and planning statistics amortise across *requests*,
  not just across the queries of one batch;

* writes go through :meth:`insert`/:meth:`delete`, which bump the
  database's mutation epoch; the scan cache then absorbs the delta
  incrementally on the next read (see ``ScanCache.sync``) instead of being
  rebuilt;

* routed plans are cached **by core-isomorphism class**: an incoming query
  is core-minimised (:func:`repro.queries.core_minimization.core`) and
  canonically relabelled (:func:`canonical_form`), so the million
  syntactically distinct variants of one query share a single cached route
  and compiled evaluator.  Entries are re-planned when the database size
  drifts past ``replan_drift`` of the size they were planned at;

* :meth:`stream` wraps the streaming evaluators with an epoch guard: an
  open answer stream observes a concurrent write *before the next pull*
  and raises :class:`ConcurrentMutationError` instead of mixing pre- and
  post-mutation answers.

The one-shot entry points (:func:`repro.evaluation.semacyclic_eval
.evaluate_iter`/``evaluate_batch``) route through :func:`shared_service`
when the ``REPRO_SERVICE`` environment variable is set, which is how the
whole test suite can run through the service layer (the ``tier1-service``
CI job).
"""

from __future__ import annotations

import itertools
import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .analysis.diagnostics import Diagnostic, Severity
from .datamodel import Atom, Instance, Term, Variable
from .dependencies.tgd import TGD
from .evaluation.batch import ScanCache
from .evaluation.join_plans import evaluate_with_plan, iter_with_plan
from .evaluation.operators import Statistics
from .evaluation.parallel import resolve_parallel
from .queries.core_minimization import core
from .queries.cq import ConjunctiveQuery


class ConcurrentMutationError(RuntimeError):
    """An open answer stream observed a database mutation.

    Raised by the generators returned from :meth:`QueryService.stream` when
    the database's mutation epoch changed between pulls: the stream's scans
    and partitions reflect the epoch it was opened at, so continuing would
    interleave pre- and post-mutation answers.  Re-submit the query to
    stream against the current state.
    """


#: Existential-variable count up to which canonicalisation searches all
#: permutations for the lexicographically minimal relabelling (6! = 720
#: candidates).  Above it a deterministic name-ordered relabelling is used:
#: still sound (equal canonical forms are isomorphic) but it may miss
#: sharing between variants that differ in variable naming order.
CANONICAL_PERMUTE_LIMIT = 6


def canonical_form(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """A canonical representative of ``query``'s variable-isomorphism class.

    Head variables are relabelled ``_h0, _h1, ...`` in order of first head
    occurrence — head *positions* are untouched, so the canonical query's
    answer tuples equal the original's positionally.  Existential variables
    are relabelled ``_e0, _e1, ...`` by exhaustive permutation search
    minimising the sorted body-atom strings (up to
    :data:`CANONICAL_PERMUTE_LIMIT` existential variables; a deterministic
    fallback beyond).  Constants are left untouched.

    Two queries that are variable-renamings of each other map to *equal*
    canonical forms (below the permutation limit), which is exactly the
    granularity of the service's plan cache; combined with
    :func:`~repro.queries.core_minimization.core` this collapses whole
    core-isomorphism classes onto one cache entry.
    """
    head_mapping: Dict[Term, Term] = {}
    for variable in query.head:
        if variable not in head_mapping:
            head_mapping[variable] = Variable(f"_h{len(head_mapping)}")
    existential = sorted(
        (v for v in query.variables() if v not in head_mapping), key=str
    )
    if len(existential) <= CANONICAL_PERMUTE_LIMIT:
        best_key: Optional[Tuple[str, ...]] = None
        best: Optional[ConjunctiveQuery] = None
        for permutation in itertools.permutations(range(len(existential))):
            mapping = dict(head_mapping)
            for variable, index in zip(existential, permutation):
                mapping[variable] = Variable(f"_e{index}")
            candidate = query.apply(mapping, name=query.name)
            key = tuple(sorted(str(atom) for atom in candidate.body))
            if best_key is None or key < best_key:
                best_key, best = key, candidate
        assert best is not None  # permutations() yields >= 1 candidate
        return best
    mapping = dict(head_mapping)
    for index, variable in enumerate(existential):
        mapping[variable] = Variable(f"_e{index}")
    return query.apply(mapping, name=query.name)


#: A plan-cache key: the canonical core's head and body, plus the routing
#: inputs that shape the plan (tgds and the forced engine).
PlanKey = Tuple[
    Tuple[Variable, ...], frozenset, Tuple[TGD, ...], str
]


@dataclass
class _PlanEntry:
    """One cached route: the canonical core plus its compiled evaluator."""

    kind: str
    evaluator: Optional[object]  # YannakakisEvaluator-shaped, or None ("plan")
    query: ConjunctiveQuery  # the canonical core the route was compiled for
    planned_epoch: int
    planned_size: int


class QueryService:
    """A standing evaluation service over one mutable database.

    See the module docstring for the design; the public surface is
    :meth:`submit` (materialised answers), :meth:`stream` (epoch-guarded
    generator with per-client ``limit=`` backpressure), :meth:`insert` /
    :meth:`delete` (the write path), and :meth:`verify` (SVC diagnostics).
    The counters ``plan_hits``/``plan_misses``/``replans``/``writes`` — and
    the scan cache's own counters — make the amortisation observable.
    """

    def __init__(self, database: Instance, *, replan_drift: float = 0.3) -> None:
        self.database = database
        #: Cached scans/partitions/encodings, kept fresh across writes by
        #: journal replay + in-place delta merges.
        self.scans = ScanCache(database)
        #: Planning statistics, served through the shared scan cache and
        #: refreshed per mutation epoch.
        self.statistics = Statistics(database, self.scans)
        #: Relative database-size drift past which a cached plan is
        #: re-planned on next use (0.3 = 30%).
        self.replan_drift = replan_drift
        # Plan-cache and raw-request-memo guard: concurrent submits (see
        # :meth:`submit_batch`) route through one consistent cache.
        self._plan_lock = threading.RLock()
        # Reader-writer exclusion for materialised reads (see
        # :meth:`insert`): a mutation blocks new submits, waits for running
        # ones to finish, then mutates and bumps the epoch — readers never
        # observe a half-applied write, and open *streams* keep their own
        # epoch guard.  ``_writers`` counts pending-or-active writers (new
        # readers wait while it is non-zero, so writers cannot starve);
        # ``_writing`` serialises the writers themselves.
        self._idle = threading.Condition(threading.Lock())
        self._in_flight = 0
        self._writers = 0
        self._writing = False
        self._plans: Dict[PlanKey, _PlanEntry] = {}
        # Memo from the *raw* request (query, tgds, engine) to its plan key,
        # so repeat submissions of an already-seen query object skip the
        # core minimisation + canonicalisation entirely.
        self._keys: Dict[Tuple[ConjunctiveQuery, Tuple[TGD, ...], str], PlanKey] = {}
        #: Requests answered from a cached plan entry.
        self.plan_hits = 0
        #: Requests that routed + compiled a fresh plan entry.
        self.plan_misses = 0
        #: Cached entries discarded for statistics drift.
        self.replans = 0
        #: Effective database writes through :meth:`insert`/:meth:`delete`.
        self.writes = 0

    # ------------------------------------------------------------------
    # Plan cache
    # ------------------------------------------------------------------
    def _drifted(self, entry: _PlanEntry, size: int) -> bool:
        return abs(size - entry.planned_size) > self.replan_drift * max(
            entry.planned_size, 1
        )

    def _entry(
        self, query: ConjunctiveQuery, tgds: Tuple[TGD, ...], engine: str
    ) -> _PlanEntry:
        with self._plan_lock:
            return self._entry_locked(query, tgds, engine)

    def _entry_locked(
        self, query: ConjunctiveQuery, tgds: Tuple[TGD, ...], engine: str
    ) -> _PlanEntry:
        memo_key = (query, tgds, engine)
        key = self._keys.get(memo_key)
        if key is None:
            canonical = canonical_form(core(query))
            key = (canonical.head, frozenset(canonical.body), tgds, engine)
            if len(self._keys) > 1024:  # bound the raw-request memo
                self._keys.clear()
            self._keys[memo_key] = key
        else:
            canonical = None  # only needed on a miss
        entry = self._plans.get(key)
        size = len(self.database)
        if entry is not None and self._drifted(entry, size):
            del self._plans[key]
            self.replans += 1
            entry = None
        if entry is not None:
            self.plan_hits += 1
            return entry
        from .evaluation.semacyclic_eval import resolve_route

        if canonical is None:
            canonical = canonical_form(core(query))
        kind, evaluator = resolve_route(canonical, tgds=tgds, engine=engine)
        entry = _PlanEntry(
            kind,
            evaluator,
            canonical,
            getattr(self.database, "mutation_epoch", 0),
            size,
        )
        self._plans[key] = entry
        self.plan_misses += 1
        return entry

    # ------------------------------------------------------------------
    # Reader-writer exclusion (writes block new reads, then drain old ones)
    # ------------------------------------------------------------------
    @contextmanager
    def _tracked(self):
        """Reader side: register a materialised submit as in flight.

        Entering waits out pending and active writers — without that gate a
        submit could slip in between a writer's drain and its mutation and
        scan concurrently with the write (check-then-act), caching scans
        whose epoch stamp disagrees with the rows actually read.
        """
        with self._idle:
            while self._writers:
                self._idle.wait()
            self._in_flight += 1
        try:
            yield
        finally:
            with self._idle:
                self._in_flight -= 1
                if not self._in_flight:
                    self._idle.notify_all()

    @contextmanager
    def _write_barrier(self):
        """Writer side: exclusive access for one mutation.

        Announces the writer first (blocking *new* readers), waits until the
        in-flight readers have finished and no other writer is mutating,
        then holds exclusivity for the body — a real reader-writer lock, not
        a check-then-act drain.  Readers and queued writers are released on
        exit.
        """
        with self._idle:
            self._writers += 1
            while self._in_flight or self._writing:
                self._idle.wait()
            self._writing = True
        try:
            yield
        finally:
            with self._idle:
                self._writing = False
                self._writers -= 1
                self._idle.notify_all()

    # ------------------------------------------------------------------
    # Read path
    # ------------------------------------------------------------------
    def submit(
        self,
        query: ConjunctiveQuery,
        *,
        tgds: Sequence[TGD] = (),
        engine: str = "auto",
        backend: Optional[str] = None,
        parallel: Optional[object] = None,
    ) -> Set[Tuple[Term, ...]]:
        """The full answer set of ``query`` over the current database state.

        Routed through the plan cache (the canonical core's cached evaluator
        answers for every isomorphic variant — answer tuples are positional,
        so they transfer verbatim) and the shared scan cache (mutations since
        the last request are absorbed incrementally before the scans are
        served).  ``parallel`` selects the morsel-parallel batch kernels
        exactly as on the one-shot entry points; writes arriving while the
        submit runs wait for it (see :meth:`insert`).
        """
        entry = self._entry(query, tuple(tgds), engine)
        with self._tracked():
            if entry.evaluator is not None:  # yannakakis / reformulated / decomposition
                return entry.evaluator.evaluate(  # type: ignore[attr-defined]
                    self.database, scans=self.scans, backend=backend,
                    parallel=parallel,
                )
            return evaluate_with_plan(
                entry.query, self.database, scans=self.scans, backend=backend,
                parallel=parallel,
            )

    def submit_batch(
        self,
        queries: Iterable[ConjunctiveQuery],
        *,
        tgds: Sequence[TGD] = (),
        engine: str = "auto",
        backend: Optional[str] = None,
        parallel: Optional[object] = None,
    ) -> List[Set[Tuple[Term, ...]]]:
        """Answer several independent queries; one answer set each, in order.

        With ``parallel`` resolving to two or more workers the submits are
        scheduled concurrently over the service's shared scan cache (scan
        materialisation serialises on the cache's lock; everything else is
        read-path).  Results are returned in query order and each equals the
        corresponding serial :meth:`submit` — concurrency changes wall-clock
        overlap, never answers.  Writes drain the whole batch first, exactly
        as they drain single submits.
        """
        requests = list(queries)
        workers = resolve_parallel(parallel)
        if workers >= 2 and len(requests) > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, len(requests)),
                thread_name_prefix="repro-service",
            ) as pool:
                futures = [
                    pool.submit(
                        self.submit,
                        query,
                        tgds=tgds,
                        engine=engine,
                        backend=backend,
                        parallel=workers,
                    )
                    for query in requests
                ]
                return [future.result() for future in futures]
        return [
            self.submit(
                query, tgds=tgds, engine=engine, backend=backend, parallel=parallel
            )
            for query in requests
        ]

    def stream(
        self,
        query: ConjunctiveQuery,
        *,
        tgds: Sequence[TGD] = (),
        engine: str = "auto",
        limit: Optional[int] = None,
        backend: Optional[str] = None,
        parallel: Optional[object] = None,
    ) -> Iterator[Tuple[Term, ...]]:
        """Stream distinct answers with an epoch guard and ``limit=`` cap.

        The returned generator checks the database's mutation epoch before
        every pull and raises :class:`ConcurrentMutationError` if a write
        landed since the stream was opened — a client holding a stale
        half-consumed stream fails loudly instead of silently mixing
        pre- and post-mutation answers.  ``limit`` is the per-client
        backpressure knob: at most that many answers are ever computed.
        """
        entry = self._entry(query, tuple(tgds), engine)
        if entry.evaluator is not None:
            inner = entry.evaluator.iter_answers(  # type: ignore[attr-defined]
                self.database, scans=self.scans, limit=limit, backend=backend,
                parallel=parallel,
            )
        else:
            inner = iter_with_plan(
                entry.query, self.database, scans=self.scans, limit=limit,
                backend=backend, parallel=parallel,
            )
        opened = getattr(self.database, "mutation_epoch", 0)
        return self._guarded(inner, opened)

    def _guarded(
        self, inner: Iterator[Tuple[Term, ...]], opened: int
    ) -> Iterator[Tuple[Term, ...]]:
        while True:
            current = getattr(self.database, "mutation_epoch", 0)
            if current != opened:
                raise ConcurrentMutationError(
                    f"database mutated (epoch {opened} -> {current}) while "
                    "an answer stream was open; re-submit the query to "
                    "stream answers over the current state"
                )
            try:
                answer = next(inner)
            except StopIteration:
                return
            yield answer

    # ------------------------------------------------------------------
    # Write path
    # ------------------------------------------------------------------
    def insert(self, atom: Atom) -> bool:
        """Add ``atom``; return whether it was new.  Epoch-bumping write.

        Runs under the write barrier (:meth:`_write_barrier`): new
        materialised submits are blocked, in-flight ones drained, and the
        mutation applied under exclusivity — so a concurrently scheduled
        batch never reads around a half-applied write; open streams are
        left to their own epoch guard, which fails them loudly on the next
        pull.
        """
        with self._write_barrier():
            added = self.database.add(atom)
            if added:
                self.writes += 1
        return added

    def delete(self, atom: Atom) -> bool:
        """Remove ``atom``; return whether it was present.  Epoch-bumping.

        Runs under the write barrier, like :meth:`insert`.
        """
        with self._write_barrier():
            removed = self.database.discard(atom)
            if removed:
                self.writes += 1
        return removed

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> Dict[str, int]:
        """A snapshot of the service and scan-cache counters (for the CLI)."""
        return {
            "plan_hits": self.plan_hits,
            "plan_misses": self.plan_misses,
            "replans": self.replans,
            "writes": self.writes,
            "scans_served": self.scans.served,
            "scans_built": self.scans.built,
            "delta_merges": self.scans.delta_merges,
            "full_rebuilds": self.scans.full_rebuilds,
        }

    def verify(self) -> List[Diagnostic]:
        """Audit the service's cache invariants (SVC001/SVC002).

        SVC001 (ERROR): a cached scan's epoch stamp disagrees with the scan
        cache's synced epoch without a pending delta to close the gap — the
        stale-answer condition the epoch machinery must make impossible.
        SVC002 (WARNING): a cached plan's planning-time statistics drifted
        past ``replan_drift`` (it will be re-planned on next use).
        """
        self.scans.sync()
        diagnostics: List[Diagnostic] = []
        for signature, stamp, expected in self.scans.verify_epochs():
            predicate = signature[0]
            diagnostics.append(
                Diagnostic(
                    "SVC001",
                    Severity.ERROR,
                    f"cached scan over {predicate.name} is stamped with "
                    f"epoch {stamp} but the cache is synced at {expected} "
                    "with no pending delta",
                    subject=f"scan:{predicate.name}",
                )
            )
        size = len(self.database)
        for entry in self._plans.values():
            if self._drifted(entry, size):
                diagnostics.append(
                    Diagnostic(
                        "SVC002",
                        Severity.WARNING,
                        f"plan for {entry.query.name} was planned at database "
                        f"size {entry.planned_size}, size is now {size} "
                        f"(drift threshold {self.replan_drift:.0%}); it will "
                        "be re-planned on next use",
                        subject=f"plan:{entry.query.name}",
                    )
                )
        return diagnostics


# ----------------------------------------------------------------------
# The per-database service registry (the REPRO_SERVICE seam)
# ----------------------------------------------------------------------
#: Most-recently-used bound on live services (each pins its database).
SERVICE_REGISTRY_LIMIT = 64

_services: "OrderedDict[int, QueryService]" = OrderedDict()


def shared_service(database: Instance) -> QueryService:
    """The process-wide :class:`QueryService` for ``database`` (LRU-bounded).

    Keyed by object identity — the service's caches follow the instance's
    own mutation epochs, so two equal-but-distinct instances must not share
    one.  (The registry holds strong references, which is what makes the
    ``id()`` key safe: a registered database cannot be collected and its id
    recycled while its entry lives.)  The least recently used service is
    dropped beyond :data:`SERVICE_REGISTRY_LIMIT`.
    """
    key = id(database)
    service = _services.get(key)
    if service is not None and service.database is database:
        _services.move_to_end(key)
        return service
    service = QueryService(database)
    _services[key] = service
    _services.move_to_end(key)
    while len(_services) > SERVICE_REGISTRY_LIMIT:
        _services.popitem(last=False)
    return service
