"""Unions of conjunctive queries (UCQs).

A UCQ ``Q(x̄) = q1(x̄) ∨ ... ∨ qn(x̄)`` is a disjunction of CQs over the same
schema, all with the same number of free variables.  UCQs appear in the
paper both as the target language of rewritings (Section 5) and as inputs to
the liberal notion of semantic acyclicity of Section 8.1.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Sequence, Set, Tuple

from ..datamodel import Predicate, Schema, Term
from .cq import ConjunctiveQuery


class UnionOfConjunctiveQueries:
    """A union of CQs with a common answer arity."""

    def __init__(self, disjuncts: Iterable[ConjunctiveQuery], name: str = "Q") -> None:
        self._disjuncts: Tuple[ConjunctiveQuery, ...] = tuple(disjuncts)
        self.name = name
        if not self._disjuncts:
            raise ValueError("a UCQ must have at least one disjunct")
        arities = {len(q.head) for q in self._disjuncts}
        if len(arities) > 1:
            raise ValueError(
                f"all disjuncts must have the same number of free variables, "
                f"got arities {sorted(arities)}"
            )

    # ------------------------------------------------------------------
    @property
    def disjuncts(self) -> Tuple[ConjunctiveQuery, ...]:
        return self._disjuncts

    @property
    def arity(self) -> int:
        """Number of free variables of every disjunct."""
        return len(self._disjuncts[0].head)

    def __len__(self) -> int:
        return len(self._disjuncts)

    def __iter__(self) -> Iterator[ConjunctiveQuery]:
        return iter(self._disjuncts)

    def is_boolean(self) -> bool:
        return self.arity == 0

    def height(self) -> int:
        """The *height* of the UCQ: the maximal size of its disjuncts.

        This is the measure bounded by ``f_C(q, Σ)`` in Propositions 17/19.
        """
        return max(len(q) for q in self._disjuncts)

    def total_size(self) -> int:
        """Total number of atoms across all disjuncts."""
        return sum(len(q) for q in self._disjuncts)

    def predicates(self) -> Set[Predicate]:
        result: Set[Predicate] = set()
        for disjunct in self._disjuncts:
            result.update(disjunct.predicates())
        return result

    def schema(self) -> Schema:
        return Schema(self.predicates())

    # ------------------------------------------------------------------
    def evaluate(self, instance: object) -> Set[Tuple[Term, ...]]:
        """Return ``Q(I) = q1(I) ∪ ... ∪ qn(I)``."""
        answers: Set[Tuple[Term, ...]] = set()
        for disjunct in self._disjuncts:
            answers.update(disjunct.evaluate(instance))
        return answers

    def holds_in(self, instance: object, answer: Sequence[Term] = ()) -> bool:
        """Return ``True`` iff some disjunct has the given answer in ``instance``."""
        if self.is_boolean():
            return any(q.holds_in(instance) for q in self._disjuncts)
        return any(q.holds_in(instance, answer) for q in self._disjuncts)

    # ------------------------------------------------------------------
    def add(self, disjunct: ConjunctiveQuery) -> "UnionOfConjunctiveQueries":
        """Return a new UCQ extended with ``disjunct``."""
        return UnionOfConjunctiveQueries(self._disjuncts + (disjunct,), name=self.name)

    def without(self, disjunct: ConjunctiveQuery) -> "UnionOfConjunctiveQueries":
        """Return a new UCQ without the given disjunct (syntactic equality)."""
        remaining = [q for q in self._disjuncts if q != disjunct]
        return UnionOfConjunctiveQueries(remaining, name=self.name)

    def deduplicate(self) -> "UnionOfConjunctiveQueries":
        """Remove syntactically duplicate disjuncts (order preserved)."""
        seen: Set[ConjunctiveQuery] = set()
        unique: List[ConjunctiveQuery] = []
        for disjunct in self._disjuncts:
            if disjunct not in seen:
                seen.add(disjunct)
                unique.append(disjunct)
        return UnionOfConjunctiveQueries(unique, name=self.name)

    def is_acyclic(self) -> bool:
        """Return ``True`` iff every disjunct is an acyclic CQ."""
        return all(q.is_acyclic() for q in self._disjuncts)

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, UnionOfConjunctiveQueries):
            return NotImplemented
        return set(self._disjuncts) == set(other._disjuncts)

    def __hash__(self) -> int:
        return hash(frozenset(self._disjuncts))

    def __str__(self) -> str:
        return " ∨ ".join(f"[{q}]" for q in self._disjuncts)

    def __repr__(self) -> str:
        return f"UnionOfConjunctiveQueries({len(self._disjuncts)} disjuncts)"


#: Short alias used throughout the library.
UCQ = UnionOfConjunctiveQueries
