"""Core computation (CQ minimisation).

The *core* of a CQ ``q`` is the minimal equivalent CQ ``q'`` [21]; in the
absence of constraints, ``q`` is semantically acyclic iff its core is acyclic
(Section 1).  The implementation below is the classical fold-based algorithm:
repeatedly look for a retraction of the query body onto a proper subset of
its atoms that fixes the free variables, until no such retraction exists.

The search is exponential in the worst case (core computation is NP-hard),
which is acceptable: queries are small, and the paper itself relies on the
same observation ("this is not a major problem for real-life applications,
as the input (the CQ) is small").
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Set

from ..datamodel import Atom, Constant, Term, Variable, freeze_variable, is_frozen_constant, unfreeze_constant
from .cq import ConjunctiveQuery
from .homomorphism import Homomorphism, homomorphisms


def _retraction_onto(
    query: ConjunctiveQuery,
    kept_atoms: Set[Atom],
) -> Optional[Homomorphism]:
    """Find an endomorphism of ``query`` whose image lies within ``kept_atoms``.

    The endomorphism must be the identity on the free variables (otherwise
    the folded query would not be equivalent).  Returns the mapping, or
    ``None`` if no such fold exists.
    """
    # The homomorphism search works over ground targets, so the kept atoms
    # are frozen first and the found mapping is thawed back to variables.
    freezing: Dict[Term, Term] = {
        variable: freeze_variable(variable) for variable in query.variables()
    }
    target = [atom.apply(freezing) for atom in kept_atoms]
    seed: Dict[Term, Term] = {
        variable: freeze_variable(variable) for variable in query.head
    }
    for mapping in homomorphisms(query.body, target, seed=seed):
        thawed: Homomorphism = {}
        for source, image in mapping.items():
            if is_frozen_constant(image):
                thawed[source] = unfreeze_constant(image)
            else:
                thawed[source] = image
        return thawed
    return None


def fold_once(query: ConjunctiveQuery) -> Optional[ConjunctiveQuery]:
    """Try to fold the query onto a proper subset of its atoms.

    Returns the folded (strictly smaller) query, or ``None`` if the query is
    already a core.  The fold removes one atom at a time, which is sufficient:
    if the query retracts onto any proper subset it also retracts onto a
    subset missing a single atom.
    """
    atoms = set(query.body)
    for atom in sorted(atoms, key=str):
        candidate_atoms = atoms - {atom}
        if not candidate_atoms and query.head:
            continue
        mapping = _retraction_onto(query, candidate_atoms)
        if mapping is None:
            continue
        image_atoms = {a.apply(mapping) for a in query.body}
        return ConjunctiveQuery(query.head, sorted(image_atoms, key=str), name=query.name)
    return None


def core(query: ConjunctiveQuery) -> ConjunctiveQuery:
    """Return the core of ``query`` (a minimal equivalent CQ).

    The result is unique up to isomorphism; this function returns one
    concrete representative whose atoms are a subset of (an endomorphic image
    of) the original body.
    """
    current = query
    while True:
        folded = fold_once(current)
        if folded is None or len(folded) >= len(current):
            return current
        current = folded


def is_core(query: ConjunctiveQuery) -> bool:
    """Return ``True`` iff ``query`` admits no proper fold."""
    return fold_once(query) is None


def equivalent_queries(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Return ``True`` iff the two CQs are equivalent over all databases.

    Classical Chandra–Merlin test: ``left ⊆ right`` iff the frozen head of
    ``left`` is an answer of ``right`` over the canonical database of
    ``left``; equivalence is containment both ways.
    """
    return contained_in(left, right) and contained_in(right, left)


def contained_in(left: ConjunctiveQuery, right: ConjunctiveQuery) -> bool:
    """Return ``True`` iff ``left ⊆ right`` over all databases (no constraints)."""
    if len(left.head) != len(right.head):
        return False
    database, freezing = left.freeze()
    answer = tuple(freezing[v] for v in left.head)
    return right.holds_in(database, answer)


def is_semantically_acyclic_unconstrained(query: ConjunctiveQuery) -> bool:
    """Semantic acyclicity in the absence of constraints.

    A CQ is equivalent to an acyclic CQ over *all* databases iff its core is
    acyclic (Section 1); this check is NP-complete and is implemented exactly
    that way.
    """
    return core(query).is_acyclic()
