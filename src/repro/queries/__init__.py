"""Conjunctive queries, unions thereof, homomorphisms and minimisation."""

from .homomorphism import (
    Homomorphism,
    apply_homomorphism,
    compose,
    find_homomorphism,
    has_homomorphism,
    homomorphically_equivalent,
    homomorphisms,
    is_homomorphism,
)
from .cq import ConjunctiveQuery, boolean_query, query_from_instance
from .ucq import UCQ, UnionOfConjunctiveQueries
from .core_minimization import (
    contained_in,
    core,
    equivalent_queries,
    fold_once,
    is_core,
    is_semantically_acyclic_unconstrained,
)
from .gaifman import (
    connected_components,
    edge_count,
    gaifman_graph_of_atoms,
    gaifman_graph_of_instance,
    is_connected_graph,
    max_clique_lower_bound,
    treewidth_upper_bound,
)

__all__ = [
    "ConjunctiveQuery",
    "Homomorphism",
    "UCQ",
    "UnionOfConjunctiveQueries",
    "apply_homomorphism",
    "boolean_query",
    "compose",
    "connected_components",
    "contained_in",
    "core",
    "edge_count",
    "equivalent_queries",
    "find_homomorphism",
    "fold_once",
    "gaifman_graph_of_atoms",
    "gaifman_graph_of_instance",
    "has_homomorphism",
    "homomorphically_equivalent",
    "homomorphisms",
    "is_connected_graph",
    "is_core",
    "is_homomorphism",
    "is_semantically_acyclic_unconstrained",
    "max_clique_lower_bound",
    "query_from_instance",
    "treewidth_upper_bound",
    "equivalent_queries",
]
