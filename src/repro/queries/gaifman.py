"""Gaifman graphs of queries and instances, plus a treewidth upper bound.

The Gaifman graph of a CQ has the query variables as nodes, with an edge
between two variables iff they co-occur in some atom (Section 3.2).  Besides
connectivity (used by Proposition 5), the benchmarks use the Gaifman graph to
demonstrate how the chase can destroy structural properties: Example 2 turns
an acyclic query into an n-clique and Example 5 produces an n×n grid, so the
treewidth (estimated here with the classical min-fill elimination heuristic,
which yields an upper bound) grows with n.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set, Tuple

from ..datamodel import Atom, Instance


AdjacencyGraph = Dict[Hashable, Set[Hashable]]


def gaifman_graph_of_atoms(atoms: Iterable[Atom], use_all_terms: bool = False) -> AdjacencyGraph:
    """Build the Gaifman graph of a set of atoms.

    Args:
        atoms: the atoms (of a query body or an instance).
        use_all_terms: if ``True`` all terms are nodes; otherwise only
            variables (for query bodies) — for ground instances pass
            ``True`` so that constants/nulls become the nodes.
    """
    graph: AdjacencyGraph = {}
    for atom in atoms:
        if use_all_terms:
            nodes = list(dict.fromkeys(atom.terms))
        else:
            nodes = sorted(atom.variables(), key=str)
        for node in nodes:
            graph.setdefault(node, set())
        for i, left in enumerate(nodes):
            for right in nodes[i + 1:]:
                if left != right:
                    graph[left].add(right)
                    graph[right].add(left)
    return graph


def gaifman_graph_of_instance(instance: Instance) -> AdjacencyGraph:
    """Gaifman graph of an instance: nodes are all terms of the active domain."""
    return gaifman_graph_of_atoms(instance, use_all_terms=True)


def is_connected_graph(graph: AdjacencyGraph) -> bool:
    """Return ``True`` iff ``graph`` has at most one connected component."""
    return len(connected_components(graph)) <= 1


def connected_components(graph: AdjacencyGraph) -> List[Set[Hashable]]:
    """Return the connected components of an adjacency graph."""
    remaining = set(graph)
    components: List[Set[Hashable]] = []
    while remaining:
        start = remaining.pop()
        component = {start}
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for neighbour in graph[node]:
                if neighbour not in component:
                    component.add(neighbour)
                    frontier.append(neighbour)
        remaining -= component
        components.append(component)
    return components


def edge_count(graph: AdjacencyGraph) -> int:
    """Number of undirected edges of the graph."""
    return sum(len(neighbours) for neighbours in graph.values()) // 2


def max_clique_lower_bound(graph: AdjacencyGraph) -> int:
    """A cheap greedy lower bound on the clique number of the graph.

    Used by the Example 2 benchmark to certify that the chased query really
    contains a large clique without paying for exact clique computation.
    """
    best = 0
    for node in graph:
        clique = {node}
        candidates = set(graph[node])
        while candidates:
            next_node = max(candidates, key=lambda n: len(graph[n] & candidates))
            clique.add(next_node)
            candidates &= graph[next_node]
        best = max(best, len(clique))
    return best


def treewidth_upper_bound(graph: AdjacencyGraph) -> int:
    """Upper bound on the treewidth via min-fill elimination.

    The heuristic eliminates, at each step, the vertex whose neighbourhood
    needs the fewest fill-in edges, records the size of the bag it creates
    and returns (max bag size) - 1.  For trees the bound is exact (1); for
    n-cliques it is n - 1; for n×n grids it is close to n.
    """
    working: Dict[Hashable, Set[Hashable]] = {
        node: set(neighbours) for node, neighbours in graph.items()
    }
    width = 0
    while working:
        def fill_in(node: Hashable) -> int:
            neighbours = list(working[node])
            missing = 0
            for i, left in enumerate(neighbours):
                for right in neighbours[i + 1:]:
                    if right not in working[left]:
                        missing += 1
            return missing

        node = min(sorted(working, key=str), key=fill_in)
        neighbours = list(working[node])
        width = max(width, len(neighbours))
        for i, left in enumerate(neighbours):
            for right in neighbours[i + 1:]:
                working[left].add(right)
                working[right].add(left)
        for neighbour in neighbours:
            working[neighbour].discard(node)
        del working[node]
    return max(width, 0)
