"""Conjunctive queries (CQs).

A CQ has the shape ``q(x̄) :- ∃ȳ (R1(v̄1) ∧ ... ∧ Rm(v̄m))`` (Section 2).  The
class below stores the tuple of free (answer) variables ``x̄`` and the body
atoms, and provides the operations the rest of the library needs:

* evaluation over an instance (via homomorphism search);
* the canonical database / frozen instance used by Lemma 1;
* structural inspection: variables, Gaifman graph connectivity, acyclicity
  (via the hypergraph machinery), joins with other CQs;
* substitution and renaming helpers.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import (
    Atom,
    Constant,
    Database,
    Instance,
    Predicate,
    Schema,
    Term,
    Variable,
    atoms_constants,
    atoms_predicates,
    atoms_variables,
    freeze_variable,
)
from .homomorphism import Homomorphism, find_homomorphism, homomorphisms


class ConjunctiveQuery:
    """A conjunctive query with free variables ``head`` and body ``atoms``."""

    def __init__(
        self,
        head: Sequence[Variable] = (),
        body: Iterable[Atom] = (),
        name: str = "q",
    ) -> None:
        self._head: Tuple[Variable, ...] = tuple(head)
        self._body: Tuple[Atom, ...] = tuple(body)
        self.name = name
        self._validate()

    def _validate(self) -> None:
        body_variables = atoms_variables(self._body)
        for variable in self._head:
            if not isinstance(variable, Variable):
                raise ValueError(
                    f"head terms must be variables, got {variable!r}"
                )
            if variable not in body_variables:
                raise ValueError(
                    f"unsafe query: head variable {variable} does not occur "
                    f"in the body"
                )
        for atom in self._body:
            if atom.nulls():
                raise ValueError(f"query atoms must not contain nulls: {atom}")

    # ------------------------------------------------------------------
    # Basic accessors
    # ------------------------------------------------------------------
    @property
    def head(self) -> Tuple[Variable, ...]:
        """The tuple of free (answer) variables ``x̄``."""
        return self._head

    @property
    def body(self) -> Tuple[Atom, ...]:
        """The body atoms, in the order they were given."""
        return self._body

    @property
    def atoms(self) -> Tuple[Atom, ...]:
        """Alias for :attr:`body`."""
        return self._body

    def __len__(self) -> int:
        """Number of body atoms (the size measure ``|q|`` used in the paper)."""
        return len(self._body)

    def __iter__(self) -> Iterator[Atom]:
        return iter(self._body)

    def is_boolean(self) -> bool:
        """Return ``True`` iff the query has no free variables."""
        return not self._head

    def variables(self) -> Set[Variable]:
        """All variables occurring in the query."""
        return atoms_variables(self._body)

    def existential_variables(self) -> Set[Variable]:
        """Variables of the body that are not free."""
        return self.variables() - set(self._head)

    def constants(self) -> Set[Constant]:
        """Constants occurring in the body."""
        return atoms_constants(self._body)

    def predicates(self) -> Set[Predicate]:
        """Predicates occurring in the body."""
        return atoms_predicates(self._body)

    def schema(self) -> Schema:
        """The schema induced by the body."""
        return Schema(self.predicates())

    def terms(self) -> Set[Term]:
        """All terms (variables and constants) occurring in the body."""
        result: Set[Term] = set()
        for atom in self._body:
            result.update(atom.terms)
        return result

    # ------------------------------------------------------------------
    # Structural notions
    # ------------------------------------------------------------------
    def gaifman_edges(self) -> Set[FrozenSet[Variable]]:
        """Edges of the Gaifman graph: pairs of variables sharing an atom."""
        edges: Set[FrozenSet[Variable]] = set()
        for atom in self._body:
            atom_variables = sorted(atom.variables(), key=str)
            for left, right in itertools.combinations(atom_variables, 2):
                edges.add(frozenset((left, right)))
        return edges

    def is_connected(self) -> bool:
        """Return ``True`` iff the Gaifman graph of the query is connected.

        Queries with no variables at all (ground bodies) and single-atom
        queries count as connected.
        """
        return len(self.connected_components()) <= 1

    def connected_components(self) -> List["ConjunctiveQuery"]:
        """Return the maximally connected subqueries of this query.

        Two atoms are in the same component when they share a variable
        (ground atoms each form their own component).  Free variables are
        distributed to the component that contains them.
        """
        parent: Dict[int, int] = {i: i for i in range(len(self._body))}

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            parent[find(i)] = find(j)

        variable_to_atoms: Dict[Variable, List[int]] = {}
        for index, atom in enumerate(self._body):
            for variable in atom.variables():
                variable_to_atoms.setdefault(variable, []).append(index)
        for indices in variable_to_atoms.values():
            for other in indices[1:]:
                union(indices[0], other)

        groups: Dict[int, List[Atom]] = {}
        for index, atom in enumerate(self._body):
            groups.setdefault(find(index), []).append(atom)

        components: List[ConjunctiveQuery] = []
        for atoms in groups.values():
            component_variables = atoms_variables(atoms)
            head = tuple(v for v in self._head if v in component_variables)
            components.append(
                ConjunctiveQuery(head, atoms, name=f"{self.name}_component")
            )
        return components

    def is_acyclic(self) -> bool:
        """Return ``True`` iff the query hypergraph is (alpha-)acyclic.

        Acyclicity is decided with the GYO reduction on the hypergraph whose
        vertices are the query variables and whose hyperedges are the
        variable sets of the atoms (constants are ignored, mirroring the
        definition that freezes variables into nulls).
        """
        from ..hypergraph import is_acyclic_atoms

        return is_acyclic_atoms(self._body)

    # ------------------------------------------------------------------
    # Canonical database (freezing)
    # ------------------------------------------------------------------
    def freeze(self) -> Tuple[Database, Dict[Variable, Constant]]:
        """Return the canonical database of the query plus the freezing map.

        Each variable ``x`` is replaced by the frozen constant ``c(x)``;
        constants stay as they are (Lemma 1).
        """
        mapping: Dict[Variable, Constant] = {
            variable: freeze_variable(variable) for variable in self.variables()
        }
        database = Database(atom.apply(mapping) for atom in self._body)
        return database, mapping

    def canonical_database(self) -> Database:
        """Return just the canonical database of the query."""
        database, _ = self.freeze()
        return database

    def frozen_head(self) -> Tuple[Constant, ...]:
        """Return the tuple ``c(x̄)`` of frozen head constants."""
        return tuple(freeze_variable(variable) for variable in self._head)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, instance: object) -> Set[Tuple[Term, ...]]:
        """Return ``q(I)``: the set of answer tuples of the query over ``instance``."""
        answers: Set[Tuple[Term, ...]] = set()
        for mapping in homomorphisms(self._body, instance):
            answers.add(tuple(mapping[v] for v in self._head))
        return answers

    def holds_in(self, instance: object, answer: Optional[Sequence[Term]] = None) -> bool:
        """Return ``True`` iff the query has some answer (or the given one) in ``instance``.

        Args:
            instance: the instance to evaluate over.
            answer: if given, check membership of this specific tuple in
                ``q(I)`` instead of mere satisfiability.
        """
        seed: Optional[Dict[Term, Term]] = None
        if answer is not None:
            if len(answer) != len(self._head):
                raise ValueError(
                    f"answer tuple has arity {len(answer)}, query has "
                    f"{len(self._head)} free variables"
                )
            seed = {}
            for variable, value in zip(self._head, answer):
                existing = seed.get(variable)
                if existing is not None and existing != value:
                    return False
                seed[variable] = value
        return find_homomorphism(self._body, instance, seed=seed) is not None

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------
    def apply(self, mapping: Mapping[Term, Term], name: Optional[str] = None) -> "ConjunctiveQuery":
        """Return the query obtained by substituting variables via ``mapping``.

        Head variables must be mapped to variables (or left untouched).
        """
        new_body = [atom.apply(mapping) for atom in self._body]
        new_head: List[Variable] = []
        for variable in self._head:
            image = mapping.get(variable, variable)
            if not isinstance(image, Variable):
                raise ValueError(
                    f"cannot map free variable {variable} to non-variable {image}"
                )
            new_head.append(image)
        return ConjunctiveQuery(new_head, new_body, name=name or self.name)

    def rename_apart(self, taken: Iterable[Variable], suffix: str = "_r") -> "ConjunctiveQuery":
        """Return a variant of the query whose variables avoid ``taken``."""
        taken_names = {variable.name for variable in taken}
        mapping: Dict[Term, Term] = {}
        for variable in sorted(self.variables(), key=str):
            if variable.name in taken_names:
                candidate = variable.name + suffix
                counter = 0
                while candidate in taken_names:
                    counter += 1
                    candidate = f"{variable.name}{suffix}{counter}"
                taken_names.add(candidate)
                mapping[variable] = Variable(candidate)
        return self.apply(mapping) if mapping else self

    def conjoin(self, other: "ConjunctiveQuery", name: str = "conjunction") -> "ConjunctiveQuery":
        """Return the conjunction ``q ∧ q'`` of two queries.

        The head is the concatenation of the two heads (duplicates removed,
        order preserved).  Variables are *not* renamed apart; callers that
        need disjoint variables should call :meth:`rename_apart` first, as
        Proposition 5 does.
        """
        seen: Set[Variable] = set()
        head: List[Variable] = []
        for variable in tuple(self._head) + tuple(other._head):
            if variable not in seen:
                seen.add(variable)
                head.append(variable)
        return ConjunctiveQuery(head, self._body + other._body, name=name)

    def subquery(self, atoms: Iterable[Atom], name: Optional[str] = None) -> "ConjunctiveQuery":
        """Return the subquery induced by a subset of the body atoms.

        Head variables that no longer occur in the chosen atoms are dropped
        (this is what taking subqueries of Boolean queries or of frozen
        candidates requires).
        """
        atom_list = list(atoms)
        available = atoms_variables(atom_list)
        head = tuple(v for v in self._head if v in available)
        return ConjunctiveQuery(head, atom_list, name=name or f"{self.name}_sub")

    # ------------------------------------------------------------------
    # Equality and hashing are syntactic (same head, same set of atoms).
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self._head == other._head and set(self._body) == set(other._body)

    def __hash__(self) -> int:
        return hash((self._head, frozenset(self._body)))

    def __str__(self) -> str:
        head = ", ".join(str(v) for v in self._head)
        body = " ∧ ".join(str(a) for a in self._body) or "⊤"
        return f"{self.name}({head}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery(head={self._head!r}, body={len(self._body)} atoms)"


def boolean_query(atoms: Iterable[Atom], name: str = "q") -> ConjunctiveQuery:
    """Convenience constructor for a Boolean CQ."""
    return ConjunctiveQuery((), atoms, name=name)


def query_from_instance(
    instance: Instance,
    answer_terms: Sequence[Term] = (),
    name: str = "q",
) -> ConjunctiveQuery:
    """Turn an instance into a CQ by viewing nulls/constants as variables.

    Every term of the instance becomes a distinct variable; the terms listed
    in ``answer_terms`` become the free variables (in that order).  This is
    the inverse of freezing and is used by Lemma 9 (turning an acyclic
    sub-instance of a join tree back into an acyclic query) and by the
    rewriting machinery.
    """
    renaming: Dict[Term, Variable] = {}
    for index, term in enumerate(sorted(instance.active_domain(), key=str)):
        renaming[term] = Variable(f"V{index}_{term}")
    body = [atom.map_terms(lambda t: renaming[t]) for atom in instance]
    head = tuple(renaming[t] for t in answer_terms)
    return ConjunctiveQuery(head, body, name=name)
