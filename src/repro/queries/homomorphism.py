"""Homomorphism search between sets of atoms and instances.

Homomorphisms are the work-horse of the whole library: query evaluation,
query containment (via Lemma 1), core computation, the chase applicability
test and the existential 1-cover game are all phrased in terms of finding a
mapping ``h`` that is the identity on constants and sends every atom of the
source into the target.

The search is a straightforward backtracking join with two standard
optimisations that keep it fast on the instance sizes used here:

* atoms are processed most-constrained-first (fewest unbound terms, rarest
  predicate first), recomputed greedily as the partial assignment grows;
* candidate target atoms are looked up through the per-predicate index of
  :class:`repro.datamodel.Instance`.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Constant, Instance, Term, Variable


#: A homomorphism is represented as a dictionary from terms to terms.  It is
#: always the identity on constants (this is enforced, never stored).
Homomorphism = Dict[Term, Term]


def _as_instance(target: object) -> Instance:
    if isinstance(target, Instance):
        return target
    return Instance(target)  # type: ignore[arg-type]


def _candidate_atoms(atom: Atom, target: Instance, assignment: Mapping[Term, Term]) -> Iterable[Atom]:
    """Return target atoms that could be the image of ``atom`` under the partial assignment."""
    candidates = target.atoms_with_predicate(atom.predicate)
    # Narrow down using any already-bound term (pick the most selective index).
    best: Optional[frozenset] = None
    for term in atom.terms:
        image: Optional[Term] = None
        if isinstance(term, Constant):
            image = term
        elif term in assignment:
            image = assignment[term]
        if image is not None:
            narrowed = target.atoms_with_term(image)  # type: ignore[arg-type]
            if best is None or len(narrowed) < len(best):
                best = narrowed
    if best is not None:
        candidates = candidates & best
    return candidates


def _bind(atom: Atom, image: Atom, assignment: Homomorphism) -> Optional[List[Term]]:
    """Extend ``assignment`` in place so that ``atom`` maps onto ``image``.

    Returns the *undo trail* — the source terms newly bound by this call —
    or ``None`` (with ``assignment`` left unchanged) when the atoms are
    incompatible.  Mutating a single shared dict and unbinding on backtrack
    avoids the per-candidate dict copy that used to dominate the search.
    """
    trail: List[Term] = []
    for source_term, target_term in zip(atom.terms, image.terms):
        if isinstance(source_term, Constant):
            if source_term != target_term:
                break
            continue
        bound = assignment.get(source_term)
        if bound is None:
            assignment[source_term] = target_term
            trail.append(source_term)
        elif bound != target_term:
            break
    else:
        return trail
    for term in trail:
        del assignment[term]
    return None


def _unbind(trail: List[Term], assignment: Homomorphism) -> None:
    """Undo a successful :func:`_bind` (pop the trailed bindings)."""
    for term in trail:
        del assignment[term]


def _order_atoms(atoms: Sequence[Atom], target: Instance) -> List[Atom]:
    """Static ordering: rarest predicate and most constants first."""
    def key(atom: Atom) -> Tuple[int, int]:
        fanout = len(target.atoms_with_predicate(atom.predicate))
        unbound = sum(1 for t in atom.terms if not isinstance(t, Constant))
        return (fanout, unbound)

    return sorted(atoms, key=key)


def homomorphisms(
    source: Iterable[Atom],
    target: object,
    seed: Optional[Mapping[Term, Term]] = None,
) -> Iterator[Homomorphism]:
    """Yield every homomorphism from ``source`` into ``target``.

    Args:
        source: atoms (may contain variables, constants and nulls; nulls on
            the source side are treated like variables, as in homomorphic
            embeddings of chase results).
        target: an :class:`Instance` or any iterable of ground atoms.
        seed: a partial mapping that every returned homomorphism must extend
            (used e.g. to pin the free variables of a query to a candidate
            answer tuple).

    Yields:
        dictionaries mapping the non-constant terms of ``source`` to terms of
        ``target``.  Constants are implicitly mapped to themselves.
    """
    target_instance = _as_instance(target)
    source_atoms = list(source)
    initial: Homomorphism = {}
    if seed:
        for key, value in seed.items():
            if isinstance(key, Constant):
                if key != value:
                    return
                continue
            initial[key] = value

    if not source_atoms:
        yield dict(initial)
        return

    ordered = _order_atoms(source_atoms, target_instance)

    def search(index: int, assignment: Homomorphism) -> Iterator[Homomorphism]:
        if index == len(ordered):
            yield dict(assignment)
            return
        atom = ordered[index]
        for image in _candidate_atoms(atom, target_instance, assignment):
            trail = _bind(atom, image, assignment)
            if trail is not None:
                try:
                    yield from search(index + 1, assignment)
                finally:
                    # Unbind even when the consumer abandons the generator
                    # mid-search, so the shared dict never leaks bindings.
                    _unbind(trail, assignment)

    yield from search(0, initial)


def find_homomorphism(
    source: Iterable[Atom],
    target: object,
    seed: Optional[Mapping[Term, Term]] = None,
) -> Optional[Homomorphism]:
    """Return some homomorphism from ``source`` into ``target`` or ``None``."""
    for mapping in homomorphisms(source, target, seed=seed):
        return mapping
    return None


def has_homomorphism(
    source: Iterable[Atom],
    target: object,
    seed: Optional[Mapping[Term, Term]] = None,
) -> bool:
    """Return ``True`` iff a homomorphism from ``source`` into ``target`` exists."""
    return find_homomorphism(source, target, seed=seed) is not None


def apply_homomorphism(mapping: Mapping[Term, Term], atoms: Iterable[Atom]) -> List[Atom]:
    """Return the image of ``atoms`` under ``mapping`` (identity where unbound)."""
    return [atom.apply(mapping) for atom in atoms]


def compose(first: Mapping[Term, Term], second: Mapping[Term, Term]) -> Homomorphism:
    """Return the composition ``second ∘ first`` restricted to ``first``'s domain.

    Keys of ``first`` whose image is not in the domain of ``second`` keep
    their ``first`` image (``second`` acts as the identity there), matching
    the usual convention for composing partial homomorphisms.
    """
    result: Homomorphism = {}
    for key, value in first.items():
        result[key] = second.get(value, value)
    for key, value in second.items():
        result.setdefault(key, value)
    return result


def is_homomorphism(
    mapping: Mapping[Term, Term],
    source: Iterable[Atom],
    target: object,
) -> bool:
    """Check that ``mapping`` really is a homomorphism from ``source`` to ``target``."""
    target_instance = _as_instance(target)
    for key, value in mapping.items():
        if isinstance(key, Constant) and key != value:
            return False
    for atom in source:
        if atom.apply(dict(mapping)) not in target_instance:
            return False
    return True


def homomorphically_equivalent(left: Iterable[Atom], right: Iterable[Atom]) -> bool:
    """Return ``True`` iff the two sets of atoms map homomorphically into each other."""
    left_atoms = list(left)
    right_atoms = list(right)
    return has_homomorphism(left_atoms, right_atoms) and has_homomorphism(
        right_atoms, left_atoms
    )
