"""Named PCP instance families for the Theorem 7 reduction.

The undecidability proof of Theorem 7 reduces the Post Correspondence
Problem to semantic acyclicity under full tgds.  The reduction itself lives
in :mod:`repro.core.pcp`; this module supplies the *instances* that the tests
and the benchmark feed into it:

* small named instances with known status (solvable / unsolvable), including
  the classical textbook instance whose shortest solution has length 4;
* scalable families used by the benchmark to grow the reduction's query and
  tgd sizes in a controlled way;
* a seeded random-instance generator together with a helper that classifies
  instances by bounded search (the only kind of classification an
  undecidable problem admits).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from ..core.pcp import PCPInstance


# ----------------------------------------------------------------------
# Named instances with known status
# ----------------------------------------------------------------------
def trivially_solvable() -> PCPInstance:
    """Both lists share a pair with identical words; the solution has length 1."""
    return PCPInstance(top=("ab", "ba"), bottom=("ab", "aa"))


def short_solvable() -> PCPInstance:
    """A solvable instance whose shortest solution uses two different indices.

    Indices ``(0, 1)`` spell ``a·bb = ab·b = abb`` on both sides.
    """
    return PCPInstance(top=("a", "bb"), bottom=("ab", "b"))


def classic_solvable() -> PCPInstance:
    """The classical textbook instance with shortest solution ``(2, 1, 2, 0)``.

    ``top = (a, ab, bba)``, ``bottom = (baa, aa, bb)``; the solution spells
    ``bba·ab·bba·a = bb·aa·bb·baa = bbaabbbaa``.
    """
    return PCPInstance(top=("a", "ab", "bba"), bottom=("baa", "aa", "bb"))


def unsolvable_length_mismatch() -> PCPInstance:
    """Unsolvable: every top word is strictly longer than its bottom word."""
    return PCPInstance(top=("aa", "aba"), bottom=("a", "ab"))


def unsolvable_letter_mismatch() -> PCPInstance:
    """Unsolvable: top words start with ``a``, bottom words start with ``b``."""
    return PCPInstance(top=("ab", "aa"), bottom=("ba", "bb"))


def unsolvable_parity() -> PCPInstance:
    """Unsolvable: top words have even length, bottom words odd length."""
    return PCPInstance(top=("aa", "bb"), bottom=("a", "b"))


def named_instances() -> Dict[str, Tuple[PCPInstance, bool]]:
    """Every named instance together with its known solvability status."""
    return {
        "trivially_solvable": (trivially_solvable(), True),
        "short_solvable": (short_solvable(), True),
        "classic_solvable": (classic_solvable(), True),
        "unsolvable_length_mismatch": (unsolvable_length_mismatch(), False),
        "unsolvable_letter_mismatch": (unsolvable_letter_mismatch(), False),
        "unsolvable_parity": (unsolvable_parity(), False),
    }


# ----------------------------------------------------------------------
# Scalable families for the benchmark
# ----------------------------------------------------------------------
def scaled_solvable(word_length: int) -> PCPInstance:
    """A solvable instance whose words (and thus the tgd bodies) grow with ``word_length``.

    Both lists contain the same single word of the requested length, so the
    instance is solvable with one index but the synchronization rules of the
    reduction have bodies of size ``Θ(word_length)``.
    """
    if word_length < 1:
        raise ValueError("word_length must be positive")
    word = ("ab" * word_length)[:word_length]
    return PCPInstance(top=(word,), bottom=(word,))


def scaled_unsolvable(pairs: int) -> PCPInstance:
    """An unsolvable instance with ``pairs`` pairs (grows the number of tgds).

    Every top word is one letter longer than the corresponding bottom word,
    so no concatenation can ever have equal length on both sides.
    """
    if pairs < 1:
        raise ValueError("pairs must be positive")
    top = tuple("a" * (i + 2) for i in range(pairs))
    bottom = tuple("a" * (i + 1) for i in range(pairs))
    return PCPInstance(top=top, bottom=bottom)


# ----------------------------------------------------------------------
# Random instances
# ----------------------------------------------------------------------
def random_instance(
    seed=0,
    pairs: int = 3,
    max_word_length: int = 3,
) -> PCPInstance:
    """A random PCP instance (status unknown until classified)."""
    rng = seed if isinstance(seed, random.Random) else random.Random(seed)
    def word() -> str:
        length = rng.randint(1, max_word_length)
        return "".join(rng.choice("ab") for _ in range(length))

    return PCPInstance(
        top=tuple(word() for _ in range(pairs)),
        bottom=tuple(word() for _ in range(pairs)),
    )


def classify_bounded(
    instance: PCPInstance, max_indices: int = 5
) -> Tuple[Optional[Tuple[int, ...]], bool]:
    """Classify an instance by bounded search.

    Returns ``(solution, definitely_unsolvable)``: the solution if one of
    length ≤ ``max_indices`` exists, and a flag that is ``True`` only when a
    cheap certificate rules out *any* solution (length or first-letter
    mismatch on every pair), mirroring how the unsolvable named instances are
    built.  When both components are falsy the status is genuinely unknown —
    exactly the situation Theorem 7 exploits.
    """
    solution = instance.has_solution_bounded(max_indices)
    if solution is not None:
        return solution, False

    top_longer = all(len(t) > len(b) for t, b in zip(instance.top, instance.bottom))
    bottom_longer = all(len(b) > len(t) for t, b in zip(instance.top, instance.bottom))
    first_letter_clash = all(t[0] != b[0] for t, b in zip(instance.top, instance.bottom))
    definitely_unsolvable = top_longer or bottom_longer or first_letter_clash
    return None, definitely_unsolvable
