"""Every worked example of the paper as ready-made objects.

The objects below are used by the tests (to validate the library against the
paper's own claims) and by the benchmark harness (each experiment of
EXPERIMENTS.md regenerates one of these constructions).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..datamodel import Atom, Constant, Predicate, Variable
from ..dependencies.egd import EGD
from ..dependencies.fd import FunctionalDependency, key
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery


# ----------------------------------------------------------------------
# Example 1 — the music-store reformulation
# ----------------------------------------------------------------------
INTEREST = Predicate("Interest", 2)
CLASS = Predicate("Class", 2)
OWNS = Predicate("Owns", 2)


def example1_query() -> ConjunctiveQuery:
    """``q(x, y) = ∃z (Interest(x, z) ∧ Class(y, z) ∧ Owns(x, y))``."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery(
        (x, y),
        [Atom(INTEREST, (x, z)), Atom(CLASS, (y, z)), Atom(OWNS, (x, y))],
        name="music_store",
    )


def example1_tgd() -> TGD:
    """``τ = Interest(x, z), Class(y, z) → Owns(x, y)`` (compulsive collectors)."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return TGD(
        [Atom(INTEREST, (x, z)), Atom(CLASS, (y, z))],
        [Atom(OWNS, (x, y))],
        label="compulsive_collector",
    )


def example1_acyclic_reformulation() -> ConjunctiveQuery:
    """``q'(x, y) = ∃z (Interest(x, z) ∧ Class(y, z))`` — the paper's reformulation."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return ConjunctiveQuery(
        (x, y),
        [Atom(INTEREST, (x, z)), Atom(CLASS, (y, z))],
        name="music_store_acyclic",
    )


# ----------------------------------------------------------------------
# Figure 1 — stickiness and the marking procedure
# ----------------------------------------------------------------------
FIG1_T = Predicate("T", 3)
FIG1_S = Predicate("S", 2)
FIG1_R = Predicate("R", 2)
FIG1_P = Predicate("P", 2)


def figure1_second_rule() -> TGD:
    """``R(x, y), P(y, z) → ∃w T(x, y, w)`` (shared by both sets of Figure 1)."""
    x, y, z, w = (Variable(n) for n in ("x", "y", "z", "w"))
    return TGD(
        [Atom(FIG1_R, (x, y)), Atom(FIG1_P, (y, z))],
        [Atom(FIG1_T, (x, y, w))],
        label="fig1_second",
    )


def figure1_sticky_set() -> List[TGD]:
    """The sticky set of Figure 1: first rule ``T(x, y, z) → ∃w S(y, w)``.

    The join variable ``y`` of the second rule is propagated to every
    inferred atom, so the marking procedure leaves it unmarked.
    """
    x, y, z, w = (Variable(n) for n in ("x", "y", "z", "w"))
    first = TGD(
        [Atom(FIG1_T, (x, y, z))],
        [Atom(FIG1_S, (y, w))],
        label="fig1_first_sticky",
    )
    return [first, figure1_second_rule()]


def figure1_non_sticky_set() -> List[TGD]:
    """The non-sticky set of Figure 1: first rule ``T(x, y, z) → ∃w S(x, w)``.

    Here the join variable ``y`` of the second rule is dropped by ``S``, the
    marking reaches it and the set fails the stickiness test.
    """
    x, y, z, w = (Variable(n) for n in ("x", "y", "z", "w"))
    first = TGD(
        [Atom(FIG1_T, (x, y, z))],
        [Atom(FIG1_S, (x, w))],
        label="fig1_first_non_sticky",
    )
    return [first, figure1_second_rule()]


# ----------------------------------------------------------------------
# Example 2 — non-recursive / sticky sets destroy acyclicity
# ----------------------------------------------------------------------
EX2_P = Predicate("P", 1)
EX2_R = Predicate("R", 2)


def example2_query(n: int) -> ConjunctiveQuery:
    """``q = ∃x̄ (P(x_1) ∧ ... ∧ P(x_n))`` — trivially acyclic."""
    if n < 1:
        raise ValueError("n must be at least 1")
    variables = [Variable(f"x{i}") for i in range(1, n + 1)]
    return ConjunctiveQuery((), [Atom(EX2_P, (v,)) for v in variables], name=f"ex2_{n}")


def example2_tgd() -> TGD:
    """``τ = P(x), P(y) → R(x, y)`` — non-recursive and sticky, not guarded."""
    x, y = Variable("x"), Variable("y")
    return TGD([Atom(EX2_P, (x,)), Atom(EX2_P, (y,))], [Atom(EX2_R, (x, y))], label="ex2")


# ----------------------------------------------------------------------
# Example 3 — exponential UCQ rewritings for sticky sets
# ----------------------------------------------------------------------
def example3_predicates(n: int) -> List[Predicate]:
    """The predicates ``P_0, ..., P_n``, each of arity ``n + 2``."""
    return [Predicate(f"P{i}", n + 2) for i in range(n + 1)]


def example3_tgds(n: int) -> List[TGD]:
    """The sticky set of Example 3.

    For each ``i ∈ {1, ..., n}``:
    ``P_i(x_1..x_{i-1}, Z, x_{i+1}..x_n, Z, O), P_i(x_1..x_{i-1}, O, x_{i+1}..x_n, Z, O)
    → P_{i-1}(x_1..x_{i-1}, Z, x_{i+1}..x_n, Z, O)``.
    """
    predicates = example3_predicates(n)
    tgds: List[TGD] = []
    zero, one = Variable("Z"), Variable("O")
    for i in range(1, n + 1):
        others = [Variable(f"x{j}") for j in range(1, n + 1)]

        def tuple_with(value_at_i: Variable) -> Tuple[Variable, ...]:
            positions: List[Variable] = []
            for j in range(1, n + 1):
                positions.append(value_at_i if j == i else others[j - 1])
            return tuple(positions) + (zero, one)

        body = [
            Atom(predicates[i], tuple_with(zero)),
            Atom(predicates[i], tuple_with(one)),
        ]
        head = [Atom(predicates[i - 1], tuple_with(zero))]
        tgds.append(TGD(body, head, label=f"ex3_{i}"))
    return tgds


def example3_query(n: int) -> ConjunctiveQuery:
    """The Boolean CQ ``P_0(0, ..., 0, 0, 1)`` of Example 3."""
    predicates = example3_predicates(n)
    zero, one = Constant(0), Constant(1)
    terms = tuple([zero] * n + [zero, one])
    return ConjunctiveQuery((), [Atom(predicates[0], terms)], name=f"ex3_q_{n}")


# ----------------------------------------------------------------------
# Example 4 — a key over a binary + ternary schema destroying acyclicity
# ----------------------------------------------------------------------
EX4_R = Predicate("R", 2)
EX4_S = Predicate("S", 3)


def example4_query() -> ConjunctiveQuery:
    """``R(x,y) ∧ S(x,y,z) ∧ S(x,z,w) ∧ S(x,w,v) ∧ R(x,v)`` — acyclic."""
    x, y, z, w, v = (Variable(n) for n in ("x", "y", "z", "w", "v"))
    return ConjunctiveQuery(
        (),
        [
            Atom(EX4_R, (x, y)),
            Atom(EX4_S, (x, y, z)),
            Atom(EX4_S, (x, z, w)),
            Atom(EX4_S, (x, w, v)),
            Atom(EX4_R, (x, v)),
        ],
        name="ex4",
    )


def example4_key() -> EGD:
    """``R(x, y), R(x, z) → y = z`` — the first attribute of ``R`` is a key."""
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    return EGD([Atom(EX4_R, (x, y)), Atom(EX4_R, (x, z))], y, z, label="ex4_key")


def example4_chased_shape() -> ConjunctiveQuery:
    """The cyclic query the paper reports after applying the key to Example 4."""
    x, y, z, w = (Variable(n) for n in ("x", "y", "z", "w"))
    return ConjunctiveQuery(
        (),
        [
            Atom(EX4_R, (x, y)),
            Atom(EX4_S, (x, y, z)),
            Atom(EX4_S, (x, z, w)),
            Atom(EX4_S, (x, w, y)),
        ],
        name="ex4_chased",
    )


def example4_scaled_query(n: int) -> ConjunctiveQuery:
    """The length-``n`` generalisation of Example 4 (used by the benchmark).

    ``R(x, y_0) ∧ S(x, y_0, y_1) ∧ ... ∧ S(x, y_{n-1}, y_n) ∧ R(x, y_n)`` —
    acyclic, but chasing with the key of Example 4 closes a cycle of length
    ``n`` through the hub ``x``.
    """
    if n < 2:
        raise ValueError("n must be at least 2")
    x = Variable("x")
    ys = [Variable(f"y{i}") for i in range(n + 1)]
    atoms: List[Atom] = [Atom(EX4_R, (x, ys[0]))]
    for i in range(n):
        atoms.append(Atom(EX4_S, (x, ys[i], ys[i + 1])))
    atoms.append(Atom(EX4_R, (x, ys[n])))
    return ConjunctiveQuery((), atoms, name=f"ex4_scaled_{n}")


# ----------------------------------------------------------------------
# Example 5 (reconstruction) — cascading key merges on higher-arity schemas
# ----------------------------------------------------------------------
EX5_R = Predicate("R4", 4)
EX5_H = Predicate("H", 2)


def example5_keys() -> List[EGD]:
    """The two keys of Example 5.

    ``ǫ1 = R(x,y,z,w), R(x,y,z,w') → w = w'`` and
    ``ǫ2 = H(x,y), H(x,z) → y = z``.
    """
    x, y, z, w, w2 = (Variable(n) for n in ("x", "y", "z", "w", "w2"))
    first = EGD(
        [Atom(EX5_R, (x, y, z, w)), Atom(EX5_R, (x, y, z, w2))], w, w2, label="ex5_e1"
    )
    a, b, c = Variable("a"), Variable("b"), Variable("c")
    second = EGD([Atom(EX5_H, (a, b)), Atom(EX5_H, (a, c))], b, c, label="ex5_e2")
    return [first, second]


def example5_ring_query(n: int) -> ConjunctiveQuery:
    """A scalable acyclic query for the keys of Example 5 (reconstruction).

    Figure 4's exact n×n-grid query cannot be recovered from the paper text
    alone (the figure does not survive the extraction), so this family
    reconstructs the *mechanism* the example illustrates: an acyclic query
    over the 4-ary predicate ``R`` whose chase under the key ``ǫ1`` becomes
    cyclic, with the length of the created cycle growing linearly in ``n``
    (and hence with unboundedly growing Gaifman-cycle structure), in contrast
    with the unary/binary keys of Proposition 22 which can never do this.

    Shape: a hub ``h`` carries a chain ``R(h, y_{i-1}, y_i, d_i)`` plus the
    two "book-end" atoms ``R(h, h, h, y_0)`` and ``R(h, h, h, y_n)``; the key
    on the first three positions of ``R`` merges ``y_0`` with ``y_n`` and
    closes the chain into a ring through the hub.
    """
    if n < 3:
        raise ValueError("n must be at least 3 for the chased ring to be cyclic")
    hub = Variable("h")
    ys = [Variable(f"y{i}") for i in range(n + 1)]
    atoms: List[Atom] = [Atom(EX5_R, (hub, hub, hub, ys[0]))]
    for i in range(1, n + 1):
        atoms.append(Atom(EX5_R, (hub, ys[i - 1], ys[i], Variable(f"d{i}"))))
    atoms.append(Atom(EX5_R, (hub, hub, hub, ys[n])))
    return ConjunctiveQuery((), atoms, name=f"ex5_ring_{n}")


# ----------------------------------------------------------------------
# Guarded running example used across tests and benchmarks
# ----------------------------------------------------------------------
GUARDED_E = Predicate("E", 2)
GUARDED_A = Predicate("A", 1)


def guarded_triangle_example() -> Tuple[ConjunctiveQuery, List[TGD]]:
    """A cyclic CQ that becomes semantically acyclic under linear (guarded) tgds.

    The query asks for a directed triangle ``E(x,y), E(y,z), E(z,x)`` — a
    core, hence not semantically acyclic in the absence of constraints.  The
    two linear tgds ``E(x,y) → A(x)`` and ``A(x) → E(x,x)`` make every
    ``E``-edge produce a self-loop at its source, so on every instance that
    satisfies them the triangle query is equivalent to the acyclic query
    ``∃x∃y E(x, y)`` (and to ``∃x A(x)``).
    """
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = ConjunctiveQuery(
        (),
        [
            Atom(GUARDED_E, (x, y)),
            Atom(GUARDED_E, (y, z)),
            Atom(GUARDED_E, (z, x)),
        ],
        name="guarded_triangle",
    )
    gx, gy = Variable("gx"), Variable("gy")
    edge_to_mark = TGD([Atom(GUARDED_E, (gx, gy))], [Atom(GUARDED_A, (gx,))], label="edge_to_mark")
    hx = Variable("hx")
    mark_to_loop = TGD([Atom(GUARDED_A, (hx,))], [Atom(GUARDED_E, (hx, hx))], label="mark_to_loop")
    return query, [edge_to_mark, mark_to_loop]


def guarded_triangle_reformulation() -> ConjunctiveQuery:
    """An acyclic reformulation of :func:`guarded_triangle_example`: ``∃x,y E(x,y)``."""
    x, y = Variable("x"), Variable("y")
    return ConjunctiveQuery((), [Atom(GUARDED_E, (x, y))], name="guarded_triangle_acyclic")


def k2_collapse_example() -> Tuple[ConjunctiveQuery, List[EGD]]:
    """A cyclic CQ over binary predicates that a key makes semantically acyclic.

    ``q = A(x, y) ∧ A(x, z) ∧ B(y, z)`` is cyclic (triangle on ``x, y, z``);
    the key "the first attribute of ``A`` determines the second" merges ``y``
    and ``z``, after which the query is equivalent to the acyclic
    ``A(x, y) ∧ B(y, y)``.
    """
    a_pred, b_pred = Predicate("A", 2), Predicate("B", 2)
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    query = ConjunctiveQuery(
        (),
        [Atom(a_pred, (x, y)), Atom(a_pred, (x, z)), Atom(b_pred, (y, z))],
        name="k2_collapse",
    )
    kx, ky, kz = Variable("kx"), Variable("ky"), Variable("kz")
    egd = EGD([Atom(a_pred, (kx, ky)), Atom(a_pred, (kx, kz))], ky, kz, label="A_key")
    return query, [egd]
