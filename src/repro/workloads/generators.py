"""Random and scalable workload generators for tests and benchmarks.

The generators are deliberately seeded (every function takes an explicit
``random.Random`` or a seed) so that benchmark runs are reproducible.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence, Tuple

from ..chase.tgd_chase import chase
from ..datamodel import Atom, Constant, Database, Instance, Predicate, Schema, Variable
from ..dependencies.egd import EGD
from ..dependencies.fd import FunctionalDependency, key
from ..dependencies.tgd import TGD
from ..queries.cq import ConjunctiveQuery


def _rng(seed_or_rng) -> random.Random:
    if isinstance(seed_or_rng, random.Random):
        return seed_or_rng
    return random.Random(seed_or_rng)


# ----------------------------------------------------------------------
# Schemas
# ----------------------------------------------------------------------
def random_schema(
    seed=0,
    predicate_count: int = 4,
    max_arity: int = 3,
    prefix: str = "R",
) -> Schema:
    """A schema with ``predicate_count`` predicates of random arity ≤ ``max_arity``."""
    rng = _rng(seed)
    return Schema(
        Predicate(f"{prefix}{i}", rng.randint(1, max_arity))
        for i in range(predicate_count)
    )


# ----------------------------------------------------------------------
# Queries
# ----------------------------------------------------------------------
def random_acyclic_query(
    seed=0,
    schema: Optional[Schema] = None,
    atom_count: int = 5,
    free_variables: int = 0,
    name: str = "acyclic",
) -> ConjunctiveQuery:
    """Generate a random acyclic CQ by growing a join tree atom by atom.

    Each new atom reuses a random subset of the variables of one existing
    atom (its parent in the join tree) and adds fresh variables for the other
    positions, which guarantees acyclicity by construction.
    """
    rng = _rng(seed)
    schema = schema or random_schema(rng)
    predicates = list(schema.predicates())
    atoms: List[Atom] = []
    variable_counter = 0

    def fresh() -> Variable:
        nonlocal variable_counter
        variable_counter += 1
        return Variable(f"v{variable_counter}")

    first_predicate = rng.choice(predicates)
    atoms.append(Atom(first_predicate, tuple(fresh() for _ in range(first_predicate.arity))))
    for _ in range(atom_count - 1):
        parent = rng.choice(atoms)
        parent_variables = sorted(parent.variables(), key=str)
        predicate = rng.choice(predicates)
        shared_count = rng.randint(0, min(len(parent_variables), predicate.arity))
        shared = rng.sample(parent_variables, shared_count) if shared_count else []
        terms: List[Variable] = []
        for position in range(predicate.arity):
            if position < len(shared):
                terms.append(shared[position])
            else:
                terms.append(fresh())
        rng.shuffle(terms)
        atoms.append(Atom(predicate, tuple(terms)))

    all_variables = sorted({v for atom in atoms for v in atom.variables()}, key=str)
    head = tuple(rng.sample(all_variables, min(free_variables, len(all_variables))))
    return ConjunctiveQuery(head, atoms, name=name)


def cycle_query(length: int, predicate: Optional[Predicate] = None) -> ConjunctiveQuery:
    """The Boolean ``length``-cycle query ``E(x_1,x_2) ∧ ... ∧ E(x_n,x_1)`` (cyclic for n ≥ 3)."""
    if length < 2:
        raise ValueError("a cycle needs at least 2 atoms")
    predicate = predicate or Predicate("E", 2)
    variables = [Variable(f"c{i}") for i in range(length)]
    atoms = [
        Atom(predicate, (variables[i], variables[(i + 1) % length]))
        for i in range(length)
    ]
    return ConjunctiveQuery((), atoms, name=f"cycle_{length}")


def path_query(length: int, predicate: Optional[Predicate] = None, free_ends: bool = False) -> ConjunctiveQuery:
    """The ``length``-edge path query (acyclic)."""
    if length < 1:
        raise ValueError("a path needs at least 1 atom")
    predicate = predicate or Predicate("E", 2)
    variables = [Variable(f"p{i}") for i in range(length + 1)]
    atoms = [Atom(predicate, (variables[i], variables[i + 1])) for i in range(length)]
    head = (variables[0], variables[-1]) if free_ends else ()
    return ConjunctiveQuery(head, atoms, name=f"path_{length}")


def star_query(rays: int, predicate: Optional[Predicate] = None) -> ConjunctiveQuery:
    """The star query with ``rays`` edges out of a shared centre (acyclic)."""
    predicate = predicate or Predicate("E", 2)
    centre = Variable("c")
    atoms = [Atom(predicate, (centre, Variable(f"s{i}"))) for i in range(rays)]
    return ConjunctiveQuery((), atoms, name=f"star_{rays}")


# ----------------------------------------------------------------------
# Dependencies
# ----------------------------------------------------------------------
def random_guarded_tgds(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
    max_head_atoms: int = 1,
) -> List[TGD]:
    """Random guarded tgds: a guard atom over all body variables plus extras.

    Heads default to a single atom: the acyclicity-preservation results for
    guarded sets (Proposition 12) are about single-atom-head tgds — a
    multi-atom head whose atoms share an existential variable can already
    destroy acyclicity — so the generator stays within that normal form
    unless the caller asks otherwise.
    """
    rng = _rng(seed)
    schema = schema or random_schema(rng)
    predicates = list(schema.predicates())
    tgds: List[TGD] = []
    for index in range(count):
        guard_predicate = rng.choice([p for p in predicates if p.arity >= 1])
        body_variables = [Variable(f"g{index}_{i}") for i in range(guard_predicate.arity)]
        guard = Atom(guard_predicate, tuple(body_variables))
        body = [guard]
        # Optionally add a side atom over a subset of the guard variables.
        if rng.random() < 0.5:
            side_predicate = rng.choice(predicates)
            side_terms = tuple(
                rng.choice(body_variables) for _ in range(side_predicate.arity)
            )
            body.append(Atom(side_predicate, side_terms))
        head: List[Atom] = []
        existential_counter = 0
        for _ in range(rng.randint(1, max_head_atoms)):
            head_predicate = rng.choice(predicates)
            terms: List[Variable] = []
            for _ in range(head_predicate.arity):
                if body_variables and rng.random() < 0.7:
                    terms.append(rng.choice(body_variables))
                else:
                    terms.append(Variable(f"z{index}_{existential_counter}"))
                    existential_counter += 1
            head.append(Atom(head_predicate, tuple(terms)))
        tgds.append(TGD(body, head, label=f"guarded_{index}"))
    return tgds


def random_inclusion_dependencies(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
) -> List[TGD]:
    """Random inclusion dependencies (projections between predicates)."""
    rng = _rng(seed)
    schema = schema or random_schema(rng)
    predicates = list(schema.predicates())
    tgds: List[TGD] = []
    for index in range(count):
        source = rng.choice(predicates)
        target = rng.choice(predicates)
        body_variables = [Variable(f"i{index}_{i}") for i in range(source.arity)]
        shared = rng.sample(body_variables, min(len(body_variables), target.arity))
        head_terms: List[Variable] = []
        existential_counter = 0
        for position in range(target.arity):
            if position < len(shared):
                head_terms.append(shared[position])
            else:
                head_terms.append(Variable(f"iz{index}_{existential_counter}"))
                existential_counter += 1
        tgds.append(
            TGD(
                [Atom(source, tuple(body_variables))],
                [Atom(target, tuple(head_terms))],
                label=f"id_{index}",
            )
        )
    return tgds


def chain_non_recursive_tgds(depth: int, arity: int = 2) -> List[TGD]:
    """A non-recursive chain ``L_0 → L_1 → ... → L_depth`` of linear tgds."""
    predicates = [Predicate(f"L{i}", arity) for i in range(depth + 1)]
    tgds: List[TGD] = []
    for i in range(depth):
        variables = [Variable(f"x{j}") for j in range(arity)]
        tgds.append(
            TGD(
                [Atom(predicates[i], tuple(variables))],
                [Atom(predicates[i + 1], tuple(variables))],
                label=f"chain_{i}",
            )
        )
    return tgds


def random_full_tgds(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
    max_body_atoms: int = 2,
) -> List[TGD]:
    """Random *full* tgds: heads reuse body variables only (no existentials).

    Full tgds are the class for which SemAc is undecidable (Theorem 7); the
    generator feeds the best-effort search and the chase-termination
    benchmarks (the chase under full tgds always terminates).
    """
    rng = _rng(seed)
    schema = schema or random_schema(rng)
    predicates = list(schema.predicates())
    tgds: List[TGD] = []
    for index in range(count):
        body: List[Atom] = []
        body_variables: List[Variable] = []
        for atom_index in range(rng.randint(1, max_body_atoms)):
            predicate = rng.choice(predicates)
            terms: List[Variable] = []
            for position in range(predicate.arity):
                if body_variables and rng.random() < 0.4:
                    terms.append(rng.choice(body_variables))
                else:
                    variable = Variable(f"f{index}_{atom_index}_{position}")
                    body_variables.append(variable)
                    terms.append(variable)
            body.append(Atom(predicate, tuple(terms)))
        head_predicate = rng.choice(predicates)
        head_terms = tuple(
            rng.choice(body_variables) for _ in range(head_predicate.arity)
        )
        tgds.append(
            TGD(body, [Atom(head_predicate, head_terms)], label=f"full_{index}")
        )
    return tgds


def random_non_recursive_tgds(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
) -> List[TGD]:
    """Random non-recursive tgds: head predicates strictly later in a fixed order.

    A total order over the schema's predicates is fixed and every generated
    tgd uses body predicates strictly below its head predicate, which makes
    the predicate graph acyclic by construction.
    """
    rng = _rng(seed)
    schema = schema or random_schema(rng, predicate_count=5)
    ordered = list(schema.predicates())
    if len(ordered) < 2:
        raise ValueError("non-recursive generation needs at least two predicates")
    tgds: List[TGD] = []
    for index in range(count):
        head_position = rng.randint(1, len(ordered) - 1)
        head_predicate = ordered[head_position]
        body_pool = ordered[:head_position]
        body: List[Atom] = []
        body_variables: List[Variable] = []
        for atom_index in range(rng.randint(1, 2)):
            predicate = rng.choice(body_pool)
            terms: List[Variable] = []
            for position in range(predicate.arity):
                if body_variables and rng.random() < 0.4:
                    terms.append(rng.choice(body_variables))
                else:
                    variable = Variable(f"n{index}_{atom_index}_{position}")
                    body_variables.append(variable)
                    terms.append(variable)
            body.append(Atom(predicate, tuple(terms)))
        head_terms: List[Variable] = []
        existential_counter = 0
        for _ in range(head_predicate.arity):
            if body_variables and rng.random() < 0.7:
                head_terms.append(rng.choice(body_variables))
            else:
                head_terms.append(Variable(f"nz{index}_{existential_counter}"))
                existential_counter += 1
        tgds.append(
            TGD(body, [Atom(head_predicate, tuple(head_terms))], label=f"nr_{index}")
        )
    return tgds


def random_sticky_tgds(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
    max_attempts: int = 200,
) -> List[TGD]:
    """Random sticky tgds (rejection sampling against the marking procedure).

    Candidate tgds (with joins, so the result is not trivially linear) are
    generated and the whole set is kept only if it passes
    :func:`repro.dependencies.is_sticky_set`; otherwise the offending tgd is
    re-drawn.  The fallback after ``max_attempts`` is a set of join-free
    linear tgds, which is sticky by construction.
    """
    from ..dependencies.classification import is_sticky_set

    rng = _rng(seed)
    schema = schema or random_schema(rng, predicate_count=4, max_arity=3)
    predicates = list(schema.predicates())

    def draw(index: int) -> TGD:
        body_predicate = rng.choice(predicates)
        other_predicate = rng.choice(predicates)
        shared = Variable(f"s{index}_j")
        body: List[Atom] = []
        first_terms = [
            shared if position == 0 else Variable(f"s{index}_a{position}")
            for position in range(body_predicate.arity)
        ]
        body.append(Atom(body_predicate, tuple(first_terms)))
        if rng.random() < 0.6:
            second_terms = [
                shared if position == 0 else Variable(f"s{index}_b{position}")
                for position in range(other_predicate.arity)
            ]
            body.append(Atom(other_predicate, tuple(second_terms)))
        head_predicate = rng.choice(predicates)
        head_terms = tuple(
            shared if position == 0 else Variable(f"s{index}_z{position}")
            for position in range(head_predicate.arity)
        )
        return TGD(body, [Atom(head_predicate, head_terms)], label=f"sticky_{index}")

    tgds = [draw(index) for index in range(count)]
    attempts = 0
    while not is_sticky_set(tgds) and attempts < max_attempts:
        attempts += 1
        tgds[rng.randrange(count)] = draw(rng.randrange(1_000_000))
    if not is_sticky_set(tgds):
        tgds = []
        for index in range(count):
            predicate = rng.choice(predicates)
            variables = [Variable(f"l{index}_{i}") for i in range(predicate.arity)]
            target = rng.choice(predicates)
            head_terms = tuple(
                variables[i] if i < len(variables) else Variable(f"lz{index}_{i}")
                for i in range(target.arity)
            )
            tgds.append(
                TGD(
                    [Atom(predicate, tuple(variables))],
                    [Atom(target, head_terms)],
                    label=f"sticky_fallback_{index}",
                )
            )
    return tgds


def random_functional_dependencies(
    seed=0,
    schema: Optional[Schema] = None,
    count: int = 3,
    unary_only: bool = False,
) -> List[FunctionalDependency]:
    """Random functional dependencies over predicates of arity ≥ 2."""
    rng = _rng(seed)
    schema = schema or random_schema(rng, predicate_count=4, max_arity=3)
    eligible = [p for p in schema.predicates() if p.arity >= 2]
    if not eligible:
        raise ValueError("the schema has no predicate of arity ≥ 2")
    fds: List[FunctionalDependency] = []
    for _ in range(count):
        predicate = rng.choice(eligible)
        positions = list(range(1, predicate.arity + 1))
        if unary_only:
            determinant = {rng.choice(positions)}
        else:
            determinant = set(
                rng.sample(positions, rng.randint(1, max(1, predicate.arity - 1)))
            )
        remaining = [p for p in positions if p not in determinant]
        if not remaining:
            remaining = [rng.choice(positions)]
        dependent = set(rng.sample(remaining, rng.randint(1, len(remaining))))
        fds.append(FunctionalDependency.of(predicate, determinant, dependent))
    return fds


def random_keys(
    seed=0,
    schema: Optional[Schema] = None,
    max_arity: Optional[int] = None,
) -> List[FunctionalDependency]:
    """One random key per eligible predicate of the schema.

    With ``max_arity=2`` the result is a ``K2`` set (keys over unary/binary
    predicates only), the class of Theorem 23.
    """
    rng = _rng(seed)
    schema = schema or random_schema(rng, predicate_count=4, max_arity=3)
    keys: List[FunctionalDependency] = []
    for predicate in schema.predicates():
        if predicate.arity < 2:
            continue
        if max_arity is not None and predicate.arity > max_arity:
            continue
        key_size = rng.randint(1, predicate.arity - 1)
        key_positions = rng.sample(range(1, predicate.arity + 1), key_size)
        keys.append(key(predicate, key_positions))
    return keys


def binary_keys(schema: Schema) -> List[EGD]:
    """One key (first attribute) per binary predicate of ``schema`` (a K2 set)."""
    egds: List[EGD] = []
    for predicate in schema.predicates():
        if predicate.arity != 2:
            continue
        x, y, z = Variable("kx"), Variable("ky"), Variable("kz")
        egds.append(
            EGD(
                [Atom(predicate, (x, y)), Atom(predicate, (x, z))],
                y,
                z,
                label=f"key_{predicate.name}",
            )
        )
    return egds


# ----------------------------------------------------------------------
# Databases
# ----------------------------------------------------------------------
def random_database(
    seed=0,
    schema: Optional[Schema] = None,
    facts_per_predicate: int = 30,
    domain_size: int = 20,
) -> Database:
    """A random database over ``schema`` with the given number of facts."""
    rng = _rng(seed)
    schema = schema or random_schema(rng)
    database = Database()
    domain = [Constant(f"a{i}") for i in range(domain_size)]
    for predicate in schema.predicates():
        for _ in range(facts_per_predicate):
            database.add(
                Atom(predicate, tuple(rng.choice(domain) for _ in range(predicate.arity)))
            )
    return database


def database_satisfying(
    tgds: Sequence[TGD],
    seed=0,
    schema: Optional[Schema] = None,
    facts_per_predicate: int = 20,
    domain_size: int = 15,
    max_steps: int = 20_000,
) -> Database:
    """A random database completed by the chase so that it satisfies ``tgds``.

    The chase of a finite database under arbitrary tgds may not terminate;
    the function raises ``ValueError`` when the step budget is exhausted so
    that benchmarks never silently use an inconsistent database.
    """
    base = random_database(
        seed, schema=schema, facts_per_predicate=facts_per_predicate, domain_size=domain_size
    )
    result = chase(base, list(tgds), max_steps=max_steps)
    if not result.terminated:
        raise ValueError("the chase of the random database did not terminate in budget")
    database = Database()
    database.add_all(result.instance)
    return database


def path_database(length: int, predicate: Optional[Predicate] = None) -> Database:
    """A directed path with ``length`` edges (plus its edge relation only)."""
    predicate = predicate or Predicate("E", 2)
    database = Database()
    for i in range(length):
        database.add(Atom(predicate, (Constant(f"n{i}"), Constant(f"n{i + 1}"))))
    return database


def layered_chain_database(
    layers: int,
    width: int,
    fanout: int = 2,
    seed=0,
    predicate_prefix: str = "S",
) -> Database:
    """A layered join workload: ``layers`` binary relations chained in series.

    Relation ``S{i}`` connects layer ``i-1`` to layer ``i``; each layer has
    ``width`` nodes and each relation ``width · fanout`` edges (a diagonal
    "spine" guaranteeing answers, plus seeded random edges that the
    semi-join passes must prune).  The total database size is
    ``layers · width · fanout`` facts, so the workload scales linearly in
    ``width`` while the answer count of the matching chain query stays
    ``O(width)`` for fixed ``layers``/``fanout`` — exactly the regime where
    a linear-time evaluator should scale linearly and a quadratic one
    visibly cannot.
    """
    if layers < 1 or width < 1 or fanout < 1:
        raise ValueError("layers, width and fanout must all be positive")
    rng = _rng(seed)
    database = Database()
    for layer in range(1, layers + 1):
        predicate = Predicate(f"{predicate_prefix}{layer}", 2)
        sources = [Constant(f"L{layer - 1}_{i}") for i in range(width)]
        targets = [Constant(f"L{layer}_{i}") for i in range(width)]
        for i in range(width):
            database.add(Atom(predicate, (sources[i], targets[i])))
        for _ in range(width * (fanout - 1)):
            database.add(Atom(predicate, (rng.choice(sources), rng.choice(targets))))
    return database


def layered_chain_query(
    layers: int,
    predicate_prefix: str = "S",
    free_ends: bool = True,
) -> ConjunctiveQuery:
    """The chain query matching :func:`layered_chain_database` (acyclic)."""
    if layers < 1:
        raise ValueError("a chain needs at least 1 atom")
    variables = [Variable(f"x{i}") for i in range(layers + 1)]
    atoms = [
        Atom(Predicate(f"{predicate_prefix}{i + 1}", 2), (variables[i], variables[i + 1]))
        for i in range(layers)
    ]
    head = (variables[0], variables[-1]) if free_ends else ()
    return ConjunctiveQuery(head, atoms, name=f"chain_{layers}")


def layered_decoy_database(
    layers: int,
    width: int,
    fanout: int = 2,
    decoy_width: Optional[int] = None,
    seed=0,
    predicate_prefix: str = "S",
) -> Database:
    """A layered chain database with dead-ending decoy chains per layer.

    On top of :func:`layered_chain_database` (spine plus seeded random
    edges), every intermediate layer ``1 ≤ i < layers`` gets ``decoy_width``
    decoy nodes: relation ``S1`` feeds each first-layer decoy from a random
    real source, and each later relation extends the decoy chains in
    lockstep — but the final relation ``S{layers}`` never leaves a decoy, so
    every decoy chain is a dead end.  In the existential 1-cover game this
    is the propagation stress case: the images riding a decoy chain only die
    when the deletion initiated at the chain's tip has cascaded all the way
    back, which costs the round-based fixpoint one full re-scan per layer
    while the worklist engine pays O(1) per support pair.  The spine
    guarantees the duplicator still wins on the pure chain query, so the
    fixpoint always runs to completion instead of exiting on an empty set.
    """
    if layers < 2:
        raise ValueError("decoy chains need at least 2 layers")
    if decoy_width is None:
        decoy_width = width
    rng = _rng(seed)
    database = layered_chain_database(
        layers, width, fanout=fanout, seed=rng.random(), predicate_prefix=predicate_prefix
    )
    real_sources = [Constant(f"L0_{i}") for i in range(width)]
    for k in range(decoy_width):
        database.add(
            Atom(
                Predicate(f"{predicate_prefix}1", 2),
                (rng.choice(real_sources), Constant(f"D1_{k}")),
            )
        )
        for layer in range(2, layers):
            database.add(
                Atom(
                    Predicate(f"{predicate_prefix}{layer}", 2),
                    (Constant(f"D{layer - 1}_{k}"), Constant(f"D{layer}_{k}")),
                )
            )
    return database


def cover_game_scaling_workload(
    size: int,
    layers: int = 4,
    fanout: int = 2,
    seed=0,
) -> Tuple[ConjunctiveQuery, Database]:
    """A (query, database) pair with ``≈ size`` facts for cover-game scaling.

    The query is the Boolean chain over the layered relations; the database
    is :func:`layered_decoy_database` sized so that doubling ``size``
    doubles every relation (real and decoy part alike).  Used by
    ``benchmarks/bench_cover_game_scaling.py`` to demonstrate that the
    worklist cover-game engine grows ≈ linearly per database doubling while
    the round-based fixpoint re-scans every support pair each round.
    """
    # Facts per unit width: ``fanout`` real edges per layer plus one decoy
    # edge per intermediate layer.
    width = max(1, size // (layers * fanout + layers - 1))
    query = layered_chain_query(layers, free_ends=False)
    database = layered_decoy_database(layers, width, fanout=fanout, seed=seed)
    return query, database


def shared_predicate_batch_workload(
    batch_size: int,
    size: int = 2000,
    predicate_count: int = 6,
    anchor_pool: int = 4,
    max_rays: int = 3,
    domain_size: int = 60,
    seed=0,
) -> Tuple[List[ConjunctiveQuery], Database]:
    """``batch_size`` anchored star CQs over a shared predicate pool + one DB.

    The database has ``predicate_count`` binary predicates with
    ``≈ size / predicate_count`` random facts each over one shared domain.
    Every query is an *anchored star*: 1..``max_rays`` atoms
    ``P(a, x)`` sharing one centre variable ``x`` (the head), with each
    anchor constant ``a`` drawn from a pool of ``anchor_pool`` domain
    constants and each predicate from the shared pool — the "point lookups
    joined on a shared key" shape of a serving workload.

    The batch is built so that scan signatures (predicate plus constant
    pattern, see :func:`repro.evaluation.batch.atom_signature`) repeat
    heavily: the number of distinct signatures is bounded by
    ``predicate_count · (anchor_pool + 1)`` no matter how large the batch,
    while one-at-a-time evaluation pays a full ``O(|R|)`` scan per atom per
    query.  Because *every* atom is constant-selected, the per-query join
    work after phase 1 is only the size of the selected buckets
    (``≈ facts / domain_size``), so the shared scans and partitions of
    :class:`repro.evaluation.batch.ScanCache` dominate the sequential cost —
    the regime ``benchmarks/bench_batch_eval.py`` measures, where the
    batched advantage keeps growing as the batch doubles.
    """
    if batch_size < 1:
        raise ValueError("a batch needs at least one query")
    rng = _rng(seed)
    predicates = [Predicate(f"B{i}", 2) for i in range(predicate_count)]
    domain = [Constant(f"d{i}") for i in range(domain_size)]
    anchors = domain[: max(1, anchor_pool)]

    database = Database()
    facts_per_predicate = max(1, size // predicate_count)
    for predicate in predicates:
        # Guarantee every anchor has at least one outgoing edge so anchored
        # atoms are satisfiable, then fill with random pairs.
        for anchor in anchors:
            database.add(Atom(predicate, (anchor, rng.choice(domain))))
        for _ in range(facts_per_predicate):
            database.add(Atom(predicate, (rng.choice(domain), rng.choice(domain))))

    queries: List[ConjunctiveQuery] = []
    for index in range(batch_size):
        centre = Variable(f"x{index}")
        atoms = [
            Atom(rng.choice(predicates), (rng.choice(anchors), centre))
            for _ in range(rng.randint(1, max_rays))
        ]
        queries.append(ConjunctiveQuery((centre,), atoms, name=f"batch_q{index}"))
    return queries, database


def wide_output_workload(
    rays: int,
    width: int = 24,
    decoys: Optional[int] = None,
    seed=0,
    predicate_prefix: str = "W",
) -> Tuple[ConjunctiveQuery, Database]:
    """A free-star CQ whose output is huge relative to its database.

    The query is ``q(x_1, …, x_rays) :- W1(c, x_1), …, Wrays(c, x_rays)``
    (acyclic: a star joined on the centre variable ``c``).  The database has
    one *hub* constant with ``width`` outgoing edges per ray predicate, so
    the answer set is the full cross product of the rays — exactly
    ``width ** rays`` tuples out of only ``rays · width`` hub facts.  Each
    ray additionally gets ``decoys`` (default ``width``) edges out of decoy
    centres that are missing from the *other* rays, so the semi-join passes
    have genuine pruning work and only the hub survives.

    This is the wide-output regime the streaming enumerator exists for: a
    materialising phase 4 pays for all ``width ** rays`` answers before
    returning the first one, while
    :meth:`~repro.evaluation.yannakakis.YannakakisEvaluator.iter_answers`
    produces the first answer after the (linear) reduction passes plus
    O(rays) bucket probes — see ``benchmarks/bench_enumeration.py``.
    Growing ``rays`` at fixed ``width`` scales the output geometrically
    while the database stays essentially constant.
    """
    if rays < 2:
        raise ValueError("a wide-output star needs at least 2 rays")
    if width < 1:
        raise ValueError("width must be positive")
    if decoys is None:
        decoys = width
    rng = _rng(seed)
    hub = Constant("hub")
    database = Database()
    predicates = [Predicate(f"{predicate_prefix}{i + 1}", 2) for i in range(rays)]
    for ray, predicate in enumerate(predicates):
        for j in range(width):
            database.add(Atom(predicate, (hub, Constant(f"t{ray}_{j}"))))
        # Decoy centres appear in this ray only, so they die in the
        # semi-join with any other ray.
        for k in range(decoys):
            database.add(
                Atom(
                    predicate,
                    (Constant(f"decoy{ray}_{k}"), Constant(f"u{ray}_{rng.randrange(width)}")),
                )
            )
    centre = Variable("c")
    head = tuple(Variable(f"x{i + 1}") for i in range(rays))
    body = [
        Atom(predicate, (centre, variable))
        for predicate, variable in zip(predicates, head)
    ]
    return ConjunctiveQuery(head, body, name=f"wide_{rays}x{width}"), database


def yannakakis_scaling_workload(
    size: int,
    layers: int = 4,
    fanout: int = 2,
    seed=0,
    free_ends: bool = True,
) -> Tuple[ConjunctiveQuery, Database]:
    """A (query, database) pair with ``≈ size`` facts for scaling benchmarks.

    ``size`` is the target total fact count; the layer width is derived so
    that doubling ``size`` doubles every relation.  Used by
    ``benchmarks/bench_yannakakis_scaling.py`` to demonstrate that the
    hash-relation Yannakakis evaluator grows linearly in ``|D|`` where the
    assignment-dict implementation grows quadratically.
    """
    width = max(1, size // (layers * fanout))
    query = layered_chain_query(layers, free_ends=free_ends)
    database = layered_chain_database(layers, width, fanout=fanout, seed=seed)
    return query, database


def skewed_chain_database(
    layers: int,
    width: int,
    fanout: int = 2,
    skew: float = 1.1,
    seed=0,
    predicate_prefix: str = "S",
) -> Database:
    """A layered chain whose random edges follow a Zipf-like distribution.

    Identical in shape to :func:`layered_chain_database` (diagonal spine
    plus ``width · (fanout - 1)`` extra edges per relation), but the extra
    edges pick their endpoints with probability ``∝ 1/rank^skew`` instead
    of uniformly: a handful of "hub" nodes receive most of the fan-in.
    Under the morsel-driven parallel kernels this makes the hash shards
    deliberately *imbalanced* — the skew panel of
    ``benchmarks/bench_yannakakis_scaling.py`` uses it to show per-worker
    shard sizes and that the merge stays answer-identical under skew.
    ``skew=0`` degenerates to the uniform layered chain.
    """
    if layers < 1 or width < 1 or fanout < 1:
        raise ValueError("layers, width and fanout must all be positive")
    if skew < 0:
        raise ValueError("skew must be non-negative")
    rng = _rng(seed)
    weights = [1.0 / (rank + 1) ** skew for rank in range(width)]
    cumulative = []
    total = 0.0
    for weight in weights:
        total += weight
        cumulative.append(total)
    database = Database()
    for layer in range(1, layers + 1):
        predicate = Predicate(f"{predicate_prefix}{layer}", 2)
        sources = [Constant(f"L{layer - 1}_{i}") for i in range(width)]
        targets = [Constant(f"L{layer}_{i}") for i in range(width)]
        for i in range(width):
            database.add(Atom(predicate, (sources[i], targets[i])))
        extra = width * (fanout - 1)
        if extra:
            picked_sources = rng.choices(sources, cum_weights=cumulative, k=extra)
            picked_targets = rng.choices(targets, cum_weights=cumulative, k=extra)
            for source, target in zip(picked_sources, picked_targets):
                database.add(Atom(predicate, (source, target)))
    return database


def skewed_scaling_workload(
    size: int,
    layers: int = 4,
    fanout: int = 2,
    skew: float = 1.1,
    seed=0,
    free_ends: bool = True,
) -> Tuple[ConjunctiveQuery, Database]:
    """The skewed counterpart of :func:`yannakakis_scaling_workload`.

    Same chain query and ``≈ size`` total facts, but the database comes
    from :func:`skewed_chain_database`, so join-key frequencies are
    Zipf-distributed.  Exercises the worst case of hash sharding: most
    probe rows land in the shards of a few hub keys.
    """
    width = max(1, size // (layers * fanout))
    query = layered_chain_query(layers, free_ends=free_ends)
    database = skewed_chain_database(
        layers, width, fanout=fanout, skew=skew, seed=seed
    )
    return query, database


def plan_quality_workload(
    size: int,
    seed=0,
    owners: Optional[int] = None,
) -> Tuple[ConjunctiveQuery, Database]:
    """A (query, database) pair on which blind constant selectivities misplan.

    Three relations over ``size`` entities:

    * ``Status(x, s)`` — every entity, with only **two** distinct status
      values (half the entities are ``'active'``);
    * ``Owner(x, u)`` — ≈ ``1.25 · size`` facts over ``owners`` distinct
      owners (default ``size // 8``), so anchoring at one owner keeps only
      a handful of rows;
    * ``Link(x, y)`` — ``2 · size`` random entity pairs.

    The query anchors both constants::

        q(x, y) :- Status(x, 'active'), Owner(x, 'u0'), Link(x, y)

    The legacy 1/10-per-constraint heuristic scores ``Status(x,'active')``
    (really: half the database) *below* ``Owner(x,'u0')`` (really: a few
    rows) because ``Status`` has fewer facts, so the heuristic greedy plan
    starts from the non-selective anchor and drags an O(size) intermediate
    through the join.  The statistics-calibrated model reads the distinct
    counts — 2 status values vs ``owners`` owner values — and starts from
    the selective anchor instead; ``benchmarks/bench_plan_quality.py``
    measures the gap, which grows linearly with ``size``.
    """
    if size < 8:
        raise ValueError("the plan-quality workload needs at least 8 entities")
    if owners is None:
        owners = max(2, size // 8)
    rng = _rng(seed)
    status = Predicate("Status", 2)
    owner = Predicate("Owner", 2)
    link = Predicate("Link", 2)
    entities = [Constant(f"e{i}") for i in range(size)]
    database = Database()
    for index, entity in enumerate(entities):
        database.add(
            Atom(status, (entity, Constant("active" if index % 2 == 0 else "inactive")))
        )
        database.add(Atom(owner, (entity, Constant(f"u{index % owners}"))))
        # Every fourth entity has a second owner, so |Owner| > |Status| and
        # the fact-count heuristic ranks the Owner anchor as the *more*
        # expensive of the two.
        if index % 4 == 0:
            database.add(Atom(owner, (entity, Constant(f"u{rng.randrange(owners)}"))))
    for _ in range(2 * size):
        database.add(Atom(link, (rng.choice(entities), rng.choice(entities))))
    x, y = Variable("x"), Variable("y")
    query = ConjunctiveQuery(
        (x, y),
        [
            Atom(status, (x, Constant("active"))),
            Atom(owner, (x, Constant("u0"))),
            Atom(link, (x, y)),
        ],
        name=f"plan_quality_{size}",
    )
    return query, database


def fanout_cycles_workload(
    size: int,
    fanout: Optional[int] = None,
) -> Tuple[ConjunctiveQuery, Database]:
    """A cyclic (query, database) pair on which every left-deep order blows up.

    The query is two triangles sharing the variable ``z``::

        q(x, u) :- A(x, y), B(y, z), C(z, x), F1(z, u), F2(u, v), F3(v, z)

    The database holds ``size`` disjoint instances.  Each triangle has one
    cheap "middle" edge away from ``z`` (``A(x, y)`` and ``F2(u, v)``, one
    fact per instance) while both edges adjacent to ``z`` carry ``fanout``
    entries per ``z``-value of which only one closes the triangle (default
    ``max(2, size // 4)``, so the fan grows with the database).

    A left-deep (linear) order can enter only one triangle through its
    cheap middle edge; the other triangle is reachable solely through a
    fan edge with nothing but ``z`` bound, so the order pays an
    ``Θ(size · fanout)`` intermediate before the middle edge prunes it.
    A bushy plan — or the decomposition route, which materialises the two
    triangles as separate bags and joins them on ``z`` after semijoin
    reduction — keeps every intermediate ``Θ(size)``.
    ``benchmarks/bench_plan_quality.py`` measures the gap.
    """
    if fanout is None:
        fanout = max(2, size // 4)
    a, b, c = Predicate("A", 2), Predicate("B", 2), Predicate("C", 2)
    f1, f2, f3 = Predicate("F1", 2), Predicate("F2", 2), Predicate("F3", 2)
    database = Database()
    for i in range(size):
        xi, yi, zi = Constant(f"x{i}"), Constant(f"y{i}"), Constant(f"z{i}")
        ui, vi = Constant(f"u{i}"), Constant(f"v{i}")
        database.add(Atom(a, (xi, yi)))
        database.add(Atom(b, (yi, zi)))
        database.add(Atom(c, (zi, xi)))
        database.add(Atom(f1, (zi, ui)))
        database.add(Atom(f2, (ui, vi)))
        database.add(Atom(f3, (vi, zi)))
        # Fan entries adjacent to z that never close their triangle.
        for k in range(fanout - 1):
            database.add(Atom(b, (Constant(f"yf{i}_{k}"), zi)))
            database.add(Atom(c, (zi, Constant(f"xf{i}_{k}"))))
            database.add(Atom(f1, (zi, Constant(f"uf{i}_{k}"))))
            database.add(Atom(f3, (Constant(f"vf{i}_{k}"), zi)))
    x, y, z = Variable("x"), Variable("y"), Variable("z")
    u, v = Variable("u"), Variable("v")
    query = ConjunctiveQuery(
        (x, u),
        [
            Atom(a, (x, y)),
            Atom(b, (y, z)),
            Atom(c, (z, x)),
            Atom(f1, (z, u)),
            Atom(f2, (u, v)),
            Atom(f3, (v, z)),
        ],
        name=f"fanout_cycles_{size}",
    )
    return query, database


def grid_database(rows: int, columns: int, predicate: Optional[Predicate] = None) -> Database:
    """A ``rows × columns`` grid over one edge relation (both directions of adjacency)."""
    predicate = predicate or Predicate("E", 2)
    database = Database()

    def node(i: int, j: int) -> Constant:
        return Constant(f"g{i}_{j}")

    for i in range(rows):
        for j in range(columns):
            if j + 1 < columns:
                database.add(Atom(predicate, (node(i, j), node(i, j + 1))))
            if i + 1 < rows:
                database.add(Atom(predicate, (node(i, j), node(i + 1, j))))
    return database


def music_store_database(
    seed=0,
    customers: int = 30,
    records: int = 40,
    styles: int = 8,
    interests_per_customer: int = 3,
    closed_under_collector_rule: bool = True,
) -> Database:
    """A database for the Example 1 schema (Interest / Class / Owns).

    When ``closed_under_collector_rule`` is set, the ``Owns`` relation is
    completed so that the database satisfies the tgd of Example 1.
    """
    from .paper_examples import CLASS, INTEREST, OWNS

    rng = _rng(seed)
    database = Database()
    style_constants = [Constant(f"style{i}") for i in range(styles)]
    record_constants = [Constant(f"record{i}") for i in range(records)]
    customer_constants = [Constant(f"cust{i}") for i in range(customers)]

    record_styles: Dict[Constant, Constant] = {}
    for record in record_constants:
        style = rng.choice(style_constants)
        record_styles[record] = style
        database.add(Atom(CLASS, (record, style)))

    for customer in customer_constants:
        liked = rng.sample(style_constants, min(interests_per_customer, styles))
        for style in liked:
            database.add(Atom(INTEREST, (customer, style)))
        # A few arbitrary purchases.
        for record in rng.sample(record_constants, 2):
            database.add(Atom(OWNS, (customer, record)))
        if closed_under_collector_rule:
            for record, style in record_styles.items():
                if style in liked:
                    database.add(Atom(OWNS, (customer, record)))
    return database
