"""Planner v2: Selinger dynamic programming over bushy join trees.

:func:`plan_dp` replaces the greedy planner as the default join-order
search (see :func:`repro.evaluation.join_plans.resolve_planner`).  It is
the textbook Selinger dynamic program, generalised from left-deep chains
to bushy trees and restricted to *connected* subproblems:

    best[S] = min over connected splits S = S1 ⊎ S2 of
              best[S1] + best[S2] + rows(join(S1, S2))

where ``S`` ranges over the connected subsets of the query's atoms (atoms
are adjacent when they share a variable) and ``rows`` is the
statistics-calibrated estimate of
:class:`~repro.evaluation.operators.CostModel` — including the
correlation-aware pair sketches, so deep chains are not priced under the
independence assumption.  Cross products are pruned structurally: a
split of a connected subset into two connected halves always shares a
variable across the cut, so no disconnected intermediate is ever
enumerated.  Queries whose join graph is disconnected are planned one
connected component at a time; the component trees are then chained by
ascending estimated size (the unavoidable cross products come last and
smallest-first).

The chosen tree is attached to the plan (:attr:`JoinPlan.tree`), so
:func:`~repro.evaluation.join_plans.compile_plan` emits the bushy
operator DAG the DP costed.  The plan's *steps* mirror the compiled
order — step 0 is the leftmost leaf's scan, step ``i>0`` the ``i``-th
join in post-order, represented by the leftmost leaf of its right
subtree — which keeps ``estimated_intermediate_sizes`` aligned with the
executor's per-operator observations for the calibration tests.

Beyond :data:`DP_ATOM_LIMIT` atoms the subset table would be exponential,
so the planner falls back to :func:`plan_greedy` (left-deep, no tree).

This module also hosts the decomposition-guided evaluator for cyclic
queries (:class:`DecompositionEvaluator`): a min-fill tree decomposition
of the query's Gaifman graph is compiled bag by bag into
``HashJoin``/``Project`` sub-DAGs, and the Yannakakis semijoin machinery
runs unchanged over the resulting bag tree — the FPT evaluation the
source paper promises for bounded-width cyclic queries.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from ..datamodel import Atom, Instance, Predicate, Variable
from ..hypergraph import (
    JoinTree,
    JoinTreeNode,
    TreeDecomposition,
    tree_decomposition_min_fill,
)
from ..queries.cq import ConjunctiveQuery
from ..queries.gaifman import gaifman_graph_of_atoms
from .operators import (
    CardinalityEstimate,
    CostModel,
    HashJoin,
    Operator,
    Project,
    Scan,
    Statistics,
    BagNode,
)
from .join_plans import (
    JoinPlan,
    PlanStep,
    PlanTree,
    _cost_model,
    _plan_from_order,
    plan_greedy,
)
from .relation import ScanProvider
from .yannakakis import YannakakisEvaluator

#: Above this many atoms the 3^n subset enumeration stops paying for
#: itself; :func:`plan_dp` falls back to the greedy left-deep planner.
DP_ATOM_LIMIT = 11


def plan_dp(
    query: ConjunctiveQuery,
    database: Instance,
    *,
    scans: Optional[ScanProvider] = None,
    statistics: Optional[Statistics] = None,
    backend: Optional[str] = None,
    linear: bool = False,
) -> JoinPlan:
    """Selinger DP plan: optimal bushy join tree over connected subsets.

    Minimises the sum of estimated join-output sizes (scan costs are
    identical across orders and cancel) under the calibrated cost model;
    ties break on the rendered tree so plans are deterministic.  Falls
    back to :func:`~repro.evaluation.join_plans.plan_greedy` above
    :data:`DP_ATOM_LIMIT` atoms.

    ``linear=True`` restricts the search to left-deep orders (the classic
    Selinger space) and returns an ordinary chain plan without a tree —
    the shape the streaming face needs, where every hash-join build side
    must be a base scan whose partition comes from the cache (see
    :func:`plan_dp_linear`).
    """
    del backend
    model = _cost_model(database, scans, statistics)
    body = list(query.body)
    if not body:
        return JoinPlan(query)
    if len(body) > DP_ATOM_LIMIT:
        return plan_greedy(query, database, scans=scans, statistics=model.statistics)

    tree = _dp_tree(body, model, linear=linear)
    if linear:
        return _plan_from_order(query, tree.leaves(), model)
    tree = _orient_cheapest_leaf_left(tree, model)
    return JoinPlan(query=query, steps=_steps_from_tree(tree, model), tree=tree)


def plan_dp_linear(
    query: ConjunctiveQuery,
    database: Instance,
    *,
    scans: Optional[ScanProvider] = None,
    statistics: Optional[Statistics] = None,
    backend: Optional[str] = None,
) -> JoinPlan:
    """The DP planner restricted to left-deep orders (streaming default).

    The pipelined streaming face probes each hash join's build side as a
    cached base-scan partition; a bushy build side would have to be
    materialised before the first answer, destroying the O(chain) probes
    first-answer bound.  ``resolve_planner(streaming=True)`` therefore
    resolves the default planner to this restriction — still the DP's
    optimal order over *left-deep* connected plans.
    """
    return plan_dp(
        query,
        database,
        scans=scans,
        statistics=statistics,
        backend=backend,
        linear=True,
    )


# ----------------------------------------------------------------------
# The dynamic program
# ----------------------------------------------------------------------
def _dp_tree(body: Sequence[Atom], model: CostModel, *, linear: bool = False) -> PlanTree:
    n = len(body)
    variables = [atom.variables() for atom in body]
    adjacency = [0] * n
    for i in range(n):
        for j in range(i + 1, n):
            if variables[i] & variables[j]:
                adjacency[i] |= 1 << j
                adjacency[j] |= 1 << i

    # (cost, tiebreak, estimate, tree) per connected subset mask.
    best: Dict[int, Tuple[float, str, CardinalityEstimate, PlanTree]] = {}
    for i, atom in enumerate(body):
        leaf = PlanTree(atom=atom)
        best[1 << i] = (0.0, leaf.render(), model.scan_estimate(atom), leaf)

    full = (1 << n) - 1
    for mask in range(1, full + 1):
        if mask in best or mask & (mask - 1) == 0:
            continue  # singletons are seeded; skip revisits
        if not _is_connected(mask, adjacency):
            continue
        candidate: Optional[Tuple[float, str, CardinalityEstimate, PlanTree]] = None
        # Canonical splits: the half holding the lowest set bit is `left`.
        # In linear mode only splits whose right half is a single atom are
        # admitted (and the low-bit canonicalisation is dropped — the order
        # itself is the shape), so `best` holds only left-deep chains.
        low = mask & -mask
        sub = (mask - 1) & mask
        while sub:
            rest = mask ^ sub
            admissible = (
                rest & (rest - 1) == 0 if linear else bool(sub & low)
            )
            if admissible:
                left_entry = best.get(sub)
                right_entry = best.get(rest)
                # Both halves connected <=> both in the table; the cut
                # then shares a variable because `mask` is connected.
                if left_entry is not None and right_entry is not None:
                    estimate = model.join_estimate(left_entry[2], right_entry[2])
                    cost = left_entry[0] + right_entry[0] + estimate.rows
                    tree = PlanTree(left=left_entry[3], right=right_entry[3])
                    key = (cost, tree.render())
                    if candidate is None or key < (candidate[0], candidate[1]):
                        candidate = (cost, tree.render(), estimate, tree)
            sub = (sub - 1) & mask
        if candidate is not None:
            best[mask] = candidate

    if full in best:
        return best[full][3]

    # Disconnected join graph: plan each connected component, then chain
    # the component trees by ascending estimated size (cross products
    # last and smallest-first, matching the greedy planner's policy).
    components = sorted(
        (best[component] for component in _components(n, adjacency)),
        key=lambda entry: (entry[2].rows, entry[1]),
    )
    tree = components[0][3]
    estimate = components[0][2]
    for entry in components[1:]:
        tree = PlanTree(left=tree, right=entry[3])
        estimate = model.join_estimate(estimate, entry[2])
    return tree


def _is_connected(mask: int, adjacency: List[int]) -> bool:
    start = mask & -mask
    seen = start
    frontier = start
    while frontier:
        index = frontier & -frontier
        frontier ^= index
        reach = adjacency[index.bit_length() - 1] & mask & ~seen
        seen |= reach
        frontier |= reach
    return seen == mask


def _components(n: int, adjacency: List[int]) -> List[int]:
    remaining = (1 << n) - 1
    components: List[int] = []
    while remaining:
        start = remaining & -remaining
        seen = start
        frontier = start
        while frontier:
            index = frontier & -frontier
            frontier ^= index
            reach = adjacency[index.bit_length() - 1] & remaining & ~seen
            seen |= reach
            frontier |= reach
        components.append(seen)
        remaining &= ~seen
    return components


def _orient_cheapest_leaf_left(tree: PlanTree, model: CostModel) -> PlanTree:
    """Swap join children so the cheapest-estimated leaf streams first.

    Join estimates are symmetric, so the rotation is cost-neutral; it
    pins the same convention as the left-deep planners (the cheapest scan
    opens the pipeline), which keeps DP step estimates directly
    comparable with greedy's.
    """
    if tree.atom is not None:
        return tree
    leaves = tree.leaves()
    target = min(
        leaves, key=lambda atom: (model.scan_estimate(atom).rows, str(atom))
    )

    def orient(node: PlanTree) -> PlanTree:
        if node.atom is not None:
            return node
        assert node.left is not None and node.right is not None
        left, right = node.left, node.right
        if target in right.leaves() and target not in left.leaves():
            left, right = right, left
        if target in left.leaves():
            left = orient(left)
        return PlanTree(left=left, right=right)

    return orient(tree)


def _steps_from_tree(tree: PlanTree, model: CostModel) -> List[PlanStep]:
    """Steps mirroring the compiled operator order of a tree plan.

    Step 0 is the leftmost leaf's scan; each join step is represented by
    the leftmost leaf of its right subtree (every non-leftmost leaf is
    that of exactly one join, so steps and atoms stay in bijection).
    """
    first = tree.leftmost_atom()
    first_scan = model.scan_estimate(first)
    steps = [
        PlanStep(
            atom=first,
            estimated_cardinality=int(round(first_scan.rows)),
            shares_variables_with_prefix=False,
            estimated_intermediate_rows=int(round(first_scan.rows)),
        )
    ]

    def walk(node: PlanTree) -> CardinalityEstimate:
        if node.atom is not None:
            return model.scan_estimate(node.atom)
        assert node.left is not None and node.right is not None
        left = walk(node.left)
        right = walk(node.right)
        estimate = model.join_estimate(left, right)
        representative = node.right.leftmost_atom()
        steps.append(
            PlanStep(
                atom=representative,
                estimated_cardinality=int(
                    round(model.scan_estimate(representative).rows)
                ),
                shares_variables_with_prefix=bool(
                    node.left.variables() & node.right.variables()
                ),
                estimated_intermediate_rows=int(round(estimate.rows)),
            )
        )
        return estimate

    walk(tree)
    return steps


# ----------------------------------------------------------------------
# Decomposition-guided evaluation for cyclic queries
# ----------------------------------------------------------------------
def _bag_predicate(node_id: int, arity: int) -> Predicate:
    return Predicate(f"__bag{node_id}", arity)


def _pruned_decomposition(decomposition: TreeDecomposition) -> TreeDecomposition:
    """Absorb bags contained in a neighbour (smaller, equivalent tree)."""
    bags = {node: frozenset(decomposition.bag(node)) for node in decomposition.nodes()}
    neighbours = {
        node: set(decomposition.neighbours(node)) for node in decomposition.nodes()
    }
    changed = True
    while changed and len(bags) > 1:
        changed = False
        for node in sorted(bags):
            host = next(
                (
                    other
                    for other in sorted(neighbours[node])
                    if bags[node] <= bags[other]
                ),
                None,
            )
            if host is None:
                continue
            for other in neighbours[node]:
                if other != host:
                    neighbours[other].discard(node)
                    neighbours[other].add(host)
                    neighbours[host].add(other)
            neighbours[host].discard(node)
            del bags[node]
            del neighbours[node]
            changed = True
            break
    edges = sorted(
        (node, other)
        for node in bags
        for other in neighbours[node]
        if node < other
    )
    return TreeDecomposition({node: set(bag) for node, bag in bags.items()}, edges)


class DecompositionEvaluator(YannakakisEvaluator):
    """FPT evaluation of cyclic queries via a min-fill tree decomposition.

    The query's Gaifman graph is decomposed (``tree_decomposition_min_fill``,
    subset bags pruned into their neighbours); each bag becomes a virtual
    atom ``__bag<i>`` over *all* the bag's variables, materialised as a
    ``HashJoin``/``Project`` sub-DAG over the query atoms covering the bag,
    and wrapped in a :class:`~repro.evaluation.operators.BagNode` marker so
    EXPLAIN and the static verifier see the bag boundary.  Because every
    bag relation carries the full bag, the bag tree has the running
    intersection property — a valid join tree — and the inherited
    Yannakakis semijoin reduction, assembly and streaming faces run over
    it unchanged, on both backends.  The cost is the standard hypertree
    bound: materialising a bag is polynomial for fixed width, everything
    after is Yannakakis.
    """

    def __init__(self, query, scans=None, *, backend=None, parallel=None):
        atoms = list(query.body)
        graph = gaifman_graph_of_atoms(atoms)
        decomposition = _pruned_decomposition(tree_decomposition_min_fill(graph))
        self.decomposition = decomposition
        self._bag_atoms: Dict[int, Atom] = {}
        self._bag_cover: Dict[int, List[Atom]] = {}

        assigned: Set[int] = set()
        for node in decomposition.nodes():
            bag = frozenset(decomposition.bag(node))
            ordered_bag = tuple(sorted(bag, key=str))
            self._bag_atoms[node] = Atom(
                _bag_predicate(node, len(ordered_bag)), ordered_bag
            )
            # Every atom whose variables all fall in the bag is enforced
            # here (an atom's variables form a Gaifman clique, so every
            # atom lands fully inside at least one bag).
            cover: List[Atom] = []
            covered: Set[Variable] = set()
            for index, atom in enumerate(atoms):
                if atom.variables() <= bag:
                    assigned.add(index)
                    cover.append(atom)
                    covered |= atom.variables()
            # Bag variables connected only by fill-in edges may not be hit
            # by any contained atom; greedy guards (joined in full, then
            # projected back to the bag) supply the missing columns.
            missing = set(bag) - covered
            while missing:
                guard = max(
                    atoms,
                    key=lambda atom: (len(atom.variables() & missing), str(atom)),
                )
                if not guard.variables() & missing:  # pragma: no cover
                    raise ValueError(f"bag variables unreachable: {missing}")
                cover.append(guard)
                missing -= guard.variables()
            self._bag_cover[node] = cover
        uncovered = [atoms[i] for i in range(len(atoms)) if i not in assigned]
        if uncovered:  # pragma: no cover — decomposition validity rules this out
            raise ValueError(f"tree decomposition left atoms uncovered: {uncovered}")

        tree = self._build_bag_tree()
        super().__init__(
            query, scans, backend=backend, parallel=parallel, join_tree=tree
        )

    def _build_bag_tree(self) -> JoinTree:
        nodes = {
            node: JoinTreeNode(
                identifier=node,
                atom=self._bag_atoms[node],
                vertices=frozenset(self._bag_atoms[node].terms),
            )
            for node in self.decomposition.nodes()
        }
        root = min(self.decomposition.nodes())
        parent: Dict[int, Optional[int]] = {root: None}
        for parent_id, child_id in self._bag_tree_edges():
            parent[child_id] = parent_id
        return JoinTree(nodes, parent)

    def _bag_tree_edges(self) -> List[Tuple[int, int]]:
        """The decomposition's edges, oriented away from the min-id root."""
        adjacency: Dict[int, List[int]] = {
            node: [] for node in self.decomposition.nodes()
        }
        for left, right in self.decomposition.edges():
            adjacency[left].append(right)
            adjacency[right].append(left)
        root = min(self.decomposition.nodes())
        oriented: List[Tuple[int, int]] = []
        seen = {root}
        frontier = [root]
        while frontier:
            parent = frontier.pop(0)
            for child in sorted(adjacency[parent]):
                if child not in seen:
                    seen.add(child)
                    oriented.append((parent, child))
                    frontier.append(child)
        return oriented

    def _leaf_op(self, node) -> Operator:
        """Materialise one bag: joins over its cover, projected to the bag."""
        cover = self._bag_cover[node.identifier]
        bag_atom = self._bag_atoms[node.identifier]
        ordered = _connected_order(cover)
        op: Operator = Scan(ordered[0])
        for atom in ordered[1:]:
            op = HashJoin(op, Scan(atom))
        op = Project(op, tuple(bag_atom.terms))
        return BagNode(op, bag_atom.variables(), node.identifier)


def _connected_order(atoms: Sequence[Atom]) -> List[Atom]:
    """Order a bag's cover so each atom shares a variable with its prefix."""
    remaining = sorted(atoms, key=str)
    ordered = [remaining.pop(0)]
    bound = set(ordered[0].variables())
    while remaining:
        index = next(
            (
                i
                for i, atom in enumerate(remaining)
                if atom.variables() & bound
            ),
            0,
        )
        atom = remaining.pop(index)
        ordered.append(atom)
        bound |= atom.variables()
    return ordered
