"""The original round-based implementation of the existential 1-cover fixpoint.

This module preserves the first-generation arc-consistency computation of
Lemma 28: starting from all candidate images per left atom, it repeatedly
re-derives every atom's surviving image set from scratch — for each atom,
each image, and each neighbouring atom, a nested ``any(...)`` scan looks for
one agreeing image — until a full round changes nothing.  Every round
re-touches each (image, neighbour, neighbour-image) triple, so a cascade of
deletions costs ``O(rounds · Σ |images|²)`` where the worklist engine of
:mod:`repro.evaluation.cover_game` touches each support pair O(1) times.

The naive implementation is kept for two purposes only (mirroring the
dict-Yannakakis oracle in ``tests/helpers/yannakakis_dict.py``):

* it is the *performance baseline* of ``benchmarks/bench_cover_game_scaling``
  (the benchmark demonstrates the growth-rate gap per database doubling);
* it is an independent *oracle* for the differential tests — the two engines
  share no propagation code, so their agreement on randomized workloads is
  strong evidence for both.  In particular the naive engine keeps the
  pairwise assignment-merging agreement check (:func:`_agree_on_shared`)
  that the worklist engine replaces with shared-key projections.

One genuine bug of the original has been fixed here as well (and in the
worklist engine): constants in left atoms are now forced pebbles — a
homomorphism is the identity on constants (Section 2), so ``q() :- R(x, 3)``
must not be "covered" by ``D = {R(a, 5)}``.  Frozen variables (the ``c(x)``
constants of Lemma 1) keep mapping freely.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set

from ..datamodel import Atom, Constant, Instance, Term, is_frozen_constant
from .cover_game import CoverGameResult


def _position_constraints_naive(
    atom_terms: Sequence[Term],
    left_tuple: Sequence[Term],
    right_tuple: Sequence[Term],
) -> Optional[List[Optional[Term]]]:
    """For each position of ``atom_terms``: the forced image, if any.

    A position is forced when its term equals some component of ``left_tuple``
    (then the image must be the corresponding component of ``right_tuple``)
    or when its term is a genuine (non-frozen) constant, which must map to
    itself.  If a term is forced to two different images, the atom has no
    valid image at all and ``None`` is returned by the caller's filter.
    """
    forced: List[Optional[Term]] = []
    for term in atom_terms:
        images = {
            right_tuple[index]
            for index, left_term in enumerate(left_tuple)
            if left_term == term
        }
        if isinstance(term, Constant) and not is_frozen_constant(term):
            images.add(term)
        if len(images) > 1:
            return None
        forced.append(next(iter(images)) if images else None)
    return forced


def _candidate_images_naive(
    atom: Atom,
    right: Instance,
    left_tuple: Sequence[Term],
    right_tuple: Sequence[Term],
) -> Set[Atom]:
    """Initial candidate images of ``atom``: same predicate, respecting pebbles
    and the functional reading of the atom (equal terms map to equal terms)."""
    forced = _position_constraints_naive(atom.terms, left_tuple, right_tuple)
    if forced is None:
        return set()
    candidates: Set[Atom] = set()
    for fact in right.atoms_with_predicate(atom.predicate):
        mapping: Dict[Term, Term] = {}
        ok = True
        for index, (source, target) in enumerate(zip(atom.terms, fact.terms)):
            if forced[index] is not None and target != forced[index]:
                ok = False
                break
            bound = mapping.get(source)
            if bound is None:
                mapping[source] = target
            elif bound != target:
                ok = False
                break
        if ok:
            candidates.add(fact)
    return candidates


def _agree_on_shared(
    left_a: Atom, image_a: Atom, left_b: Atom, image_b: Atom
) -> bool:
    """Do the two images agree on every term shared by the two left atoms?"""
    assignment: Dict[Term, Term] = {}
    for source, target in zip(left_a.terms, image_a.terms):
        existing = assignment.get(source)
        if existing is not None and existing != target:
            return False
        assignment[source] = target
    for source, target in zip(left_b.terms, image_b.terms):
        existing = assignment.get(source)
        if existing is not None and existing != target:
            return False
        assignment[source] = target
    return True


def existential_one_cover_naive(
    left: Instance,
    left_tuple: Sequence[Term],
    right: Instance,
    right_tuple: Sequence[Term],
) -> CoverGameResult:
    """Decide ``(left, left_tuple) ≡∃1c (right, right_tuple)`` (Lemma 28),
    by the classical round-based arc-consistency fixpoint."""
    if len(left_tuple) != len(right_tuple):
        raise ValueError("the two distinguished tuples must have the same length")

    left_atoms = left.sorted_atoms()
    strategy: Dict[Atom, Set[Atom]] = {
        atom: _candidate_images_naive(atom, right, left_tuple, right_tuple)
        for atom in left_atoms
    }
    if any(not images for images in strategy.values()):
        return CoverGameResult(False, strategy)

    # Only atom pairs that share a term constrain each other.
    def shares_terms(a: Atom, b: Atom) -> bool:
        return bool(set(a.terms) & set(b.terms))

    neighbours: Dict[Atom, List[Atom]] = {
        atom: [other for other in left_atoms if other is not atom and shares_terms(atom, other)]
        for atom in left_atoms
    }

    changed = True
    while changed:
        changed = False
        for atom in left_atoms:
            surviving: Set[Atom] = set()
            for image in strategy[atom]:
                supported = True
                for other in neighbours[atom]:
                    if not any(
                        _agree_on_shared(atom, image, other, other_image)
                        for other_image in strategy[other]
                    ):
                        supported = False
                        break
                if supported:
                    surviving.add(image)
            if surviving != strategy[atom]:
                strategy[atom] = surviving
                changed = True
                if not surviving:
                    return CoverGameResult(False, strategy)
    return CoverGameResult(True, strategy)
